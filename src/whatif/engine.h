#ifndef HYPER_WHATIF_ENGINE_H_
#define HYPER_WHATIF_ENGINE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "causal/graph.h"
#include "common/governance.h"
#include "common/status.h"
#include "learn/estimator.h"
#include "learn/forest.h"
#include "sql/ast.h"
#include "storage/column.h"
#include "storage/database.h"
#include "whatif/compile.h"

namespace hyper::whatif {

// ---------------------------------------------------------------------------
// Staged prepare pipeline. Prepare() is a pipeline of four independently
// fingerprinted stages, each keyed by only the inputs that can change its
// output, so near-identical queries (an intervention sweep, a scenario
// branch with a sparse delta) rebuild only the stages their difference
// actually reaches:
//
//   ScopeStage   relevant view + columnar image
//                key: data snapshot x Use clause x update relation
//   CausalStage  backdoor plan + ground blocks
//                key: + update attrs, For/Output shape, backdoor mode
//                (data-independent for table views without cross-tuple
//                edges: value-only deltas reuse it across branches)
//   LearnStage   encoders + binned training matrix + the trained
//                pattern-estimator cache
//                key: + estimator config + the delta fingerprint restricted
//                to the attributes training actually reads (features,
//                adjustment set, For/Output references, psi links) — a
//                branch whose delta touches none of them reuses the
//                parent's LearnStage outright
//   QueryStage   compiled residual (hole) plan + per-row constants (When
//                mask, output values)
//                key: + When text + the full data snapshot
//
// Stage payloads are opaque to callers (defined in engine.cc); downstream
// stages hold shared_ptr references upstream, so evicting an upstream cache
// entry never invalidates a live downstream stage or an assembled plan.
// ---------------------------------------------------------------------------

enum class StageKind { kScope = 0, kCausal, kLearn, kQuery };

const char* StageKindName(StageKind kind);

/// Per-stage cache consulted by the staged Prepare pipeline. Implemented by
/// service::StageCache (LRU + single-flight per stage); the engine only
/// needs get-or-build and a non-building peek (for delta patching).
class StageProvider {
 public:
  using StagePtr = std::shared_ptr<const void>;
  using StageFactory = std::function<Result<StagePtr>()>;

  virtual ~StageProvider() = default;

  /// Returns the cached stage or runs `build` and caches the result.
  /// Single-flight per key; `hit` reports whether this caller built.
  virtual Result<StagePtr> GetOrBuild(StageKind kind, const std::string& key,
                                      const StageFactory& build,
                                      bool* hit) = 0;

  /// Returns the cached stage or nullptr. Never builds, never counts
  /// hit/miss stats (used to locate a patch base, not to serve a query).
  virtual StagePtr Peek(StageKind kind, const std::string& key) = 0;
};

/// Everything the staged pipeline needs to know about the data snapshot it
/// is preparing against. Supplied by the scenario service; standalone
/// callers may leave it out (Prepare then builds every stage fresh).
struct StageContext {
  /// Stage cache; null disables stage caching (fresh builds).
  StageProvider* stages = nullptr;
  /// Full data-snapshot id (e.g. generation + branch delta fingerprint).
  /// Keys every value-sensitive stage.
  std::string data_scope;
  /// Snapshot id stable across value-only changes (e.g. the generation
  /// alone): keys stages that depend on data shape but not cell values.
  /// Empty = fall back to data_scope.
  std::string shape_scope;
  /// data_scope of the unpatched base world this snapshot's overrides are
  /// relative to; empty disables delta patching of the columnar image.
  std::string base_scope;
  /// Sparse cell overrides of this snapshot vs base_scope, per relation
  /// (base-table coordinates). Not owned; must outlive the Prepare call.
  const std::map<std::string, TableCellOverrides>* overrides = nullptr;
  /// Returns a scope id for the delta restricted to `attrs` of `relation`
  /// (same format contract as data_scope: equal ids => equal cell values on
  /// those attributes). Null = fall back to data_scope, which disables
  /// cross-branch LearnStage reuse but stays correct.
  std::function<std::string(const std::string& relation,
                            const std::vector<std::string>& attrs)>
      restricted;
};

/// How the engine picks the adjustment set C of Equation (1).
enum class BackdoorMode {
  /// Minimal backdoor set from the causal graph (§A.2 greedy). This is
  /// "HypeR" in the paper's experiments.
  kGraph = 0,
  /// No background knowledge: every attribute joins the adjustment set
  /// ("HypeR-NB", §2.2 canonical model).
  kAllAttributes,
  /// No adjustment at all: condition on the update attribute only. This is
  /// the correlational "Indep" baseline of §5.1 — it ignores confounding
  /// and cross-attribute dependencies.
  kUpdateOnly,
};

const char* BackdoorModeName(BackdoorMode mode);

struct WhatIfOptions;

/// Injective text encoding of every option that can change what estimator
/// training produces (estimator kind, smoothing, forest hyperparameters,
/// sample size, seed). Shared by the plan-cache key and the LearnStage key
/// so the two can never drift apart.
std::string EstimatorConfigKey(const WhatIfOptions& options);

struct WhatIfOptions {
  learn::EstimatorKind estimator = learn::EstimatorKind::kForest;
  learn::ForestOptions forest = {};
  /// Shrinkage pseudo-count for the frequency estimator (0 = exact
  /// empirical conditionals; ~5-20 stabilizes sparse cells when continuous
  /// attributes are bucketized).
  double frequency_smoothing = 0.0;
  BackdoorMode backdoor = BackdoorMode::kGraph;
  /// Training-sample cap for the estimators; 0 = use every view row
  /// ("HypeR"), >0 = "HypeR-sampled" with this many rows (§5.2).
  size_t sample_size = 0;
  /// Compute per block of the block-independent decomposition (§3.3). Off
  /// switches to a single block — same value, used by the ablation bench.
  bool use_blocks = true;
  uint64_t seed = 7;
  /// Route the tuple scans through the columnar substrate with compiled
  /// expressions (default). Off = the legacy row-store interpreter path,
  /// kept for A/B benchmarking; both paths return identical answers.
  bool use_columnar = true;
  /// Worker threads for the independent-block loop (columnar path only):
  /// 1 = single-threaded, anything else = the process-wide hardware-sized
  /// pool (0 is the default). Blocks are evaluated on separate accumulators
  /// and merged in block order, so the answer is bit-for-bit identical for
  /// every setting. Also the forest trainer's thread budget (unless
  /// forest.num_threads overrides it).
  size_t num_threads = 0;
  /// Batched estimator inference in Evaluate (default): affected tuples are
  /// grouped per residual pattern and predicted with one PredictBatch call
  /// per estimator instead of a virtual Predict per tuple. Off = the legacy
  /// per-row prediction loop, kept for A/B benchmarking; both paths return
  /// bit-for-bit identical answers.
  bool batched_inference = true;
  /// Vectorized execution (default): per-row constant loops (When masks,
  /// output values, psi baselines, training targets, exact-pattern
  /// indicators) go through the SIMD-dispatched column kernels of
  /// relational::ColumnBoundExpr when the expression tree is eligible. Off =
  /// the per-row scalar loops, kept for A/B benchmarking; both paths return
  /// bit-for-bit identical answers (the kernels reproduce the scalar
  /// evaluator exactly), so this flag is not part of any cache key.
  bool vectorized_exec = true;
  /// Staged prepare (default): Prepare consults the per-stage cache of the
  /// StageContext it was given, sharing Scope/Causal/Learn/Query stages
  /// across plans whose keys agree (and patching branch deltas into a cached
  /// columnar image instead of re-encoding). Off = the monolithic path:
  /// every Prepare builds all four stages fresh and only whole plans are
  /// cached, kept for A/B benchmarking; answers are bit-for-bit identical
  /// either way (stages are pure functions of their keyed inputs).
  bool staged_prepare = true;
  // --- resource governance (per-request; never part of any cache key) ---
  /// Wall-clock / row / byte limits for each engine call. The default
  /// (all-zero) budget is ungoverned and costs nothing. An abort returns
  /// kDeadlineExceeded / kResourceExhausted and never stores a partial
  /// stage or plan in any cache — a retry with a larger budget hits the
  /// same cache keys and answers bit-identically.
  QueryBudget budget;
  /// Cooperative cancellation; detached (default) tokens never cancel.
  /// Polled at every stage boundary and inside the hot loops; an abort
  /// returns kCancelled with the same no-partial-entries guarantee.
  CancelToken cancel_token;
  /// Pre-armed governance state. When set, Prepare/Evaluate/Run check
  /// against *this* guard instead of arming a fresh one from
  /// budget/cancel_token — the scenario service uses it to stretch one
  /// request deadline across parse + prepare + evaluate. Leave null to let
  /// each engine entry point arm its own.
  governance::ExecGuardPtr exec_guard;
};

struct WhatIfResult {
  /// valwhatif(Q, D) — Definition 5.
  double value = 0.0;
  size_t view_rows = 0;
  size_t updated_rows = 0;   // |S|
  size_t num_blocks = 1;
  size_t num_patterns = 0;   // distinct post-residual formulas this query used
  std::vector<std::string> backdoor;  // adjustment set (causal names)
  /// Estimator training actually incurred by this call (0 when every needed
  /// pattern estimator was already trained on the shared plan).
  double train_seconds = 0.0;
  double total_seconds = 0.0;
  /// Plan construction (view + backdoor + encode + training matrix) charged
  /// to this call; ~0 when the plan came from a cache.
  double prepare_seconds = 0.0;
  /// Per-intervention evaluation time (includes lazy pattern training).
  double eval_seconds = 0.0;
  /// True when a ScenarioService / PlanCache served the prepared plan.
  bool plan_cache_hit = false;
  /// Pattern estimators this query needed that were already trained on the
  /// shared plan (by an earlier query or batch sibling).
  size_t pattern_cache_hits = 0;
};

/// A prepared what-if plan: the relevant view (columnar image), the backdoor
/// adjustment set, fitted encoders, the training matrix, the compiled hole
/// plan for residual folding, and a lazily-grown cache of trained pattern
/// estimators. Preparation is the expensive, intervention-independent part
/// of a what-if run; `WhatIfEngine::Evaluate` answers any intervention over
/// the same (view, update attributes, When, For, Output) shape against it.
///
/// Concurrency contract (audited for the parallel how-to scorer and the
/// scenario service, which share one PreparedWhatIf — and, staged, whole
/// stages — across threads): a prepared plan is immutable after Prepare()
/// except for three lazily-grown caches — the residual-entry list and the
/// hole-value -> entry map (QueryStage, one mutex) and the
/// pattern-estimator map (LearnStage, its own mutex; shared by every plan
/// assembled on that stage). The two locks are never held together.
/// Concurrent Evaluate calls are safe:
///   - entries are unique_ptr-owned (stable addresses across list growth)
///     and individually immutable once published under the lock;
///   - a pattern estimator is trained by exactly the one caller that first
///     needs it, under the lock, so concurrent evaluations never duplicate
///     training (they observe the trained estimator as a cache hit);
///   - the pattern map is node-based, so estimator addresses survive rehash
///     and evaluations snapshot raw pointers, then predict lock-free
///     (Predict/PredictBatch are const and touch no shared mutable state).
/// Trained estimators are a pure function of (training matrix, pattern,
/// options), so answers are bit-for-bit identical to fresh single-query
/// runs no matter which caller happened to train first.
class PreparedWhatIf {
 public:
  ~PreparedWhatIf();
  PreparedWhatIf(const PreparedWhatIf&) = delete;
  PreparedWhatIf& operator=(const PreparedWhatIf&) = delete;

  /// Update attributes (in statement order) an intervention must target.
  const std::vector<std::string>& update_attributes() const {
    return update_attributes_;
  }
  const std::vector<std::string>& backdoor() const { return backdoor_; }
  size_t view_rows() const { return view_rows_; }
  size_t updated_rows() const { return updated_rows_; }
  double prepare_seconds() const { return prepare_seconds_; }

  /// Opaque internals (defined in engine.cc).
  struct Impl;

 private:
  friend class WhatIfEngine;
  PreparedWhatIf();

  std::unique_ptr<Impl> impl_;
  std::vector<std::string> update_attributes_;
  std::vector<std::string> backdoor_;
  size_t view_rows_ = 0;
  size_t updated_rows_ = 0;
  double prepare_seconds_ = 0.0;
};

/// The HypeR what-if engine (§3.3): builds the relevant view, interprets the
/// update as an intervention, and estimates the post-update aggregate with
/// the backdoor-adjusted estimator, decomposed over independent blocks.
class WhatIfEngine {
 public:
  /// `graph` may be null: the engine then behaves as if BackdoorMode were
  /// kAllAttributes (no background knowledge).
  WhatIfEngine(const Database* db, const causal::CausalGraph* graph,
               WhatIfOptions options = {});

  /// Runs a parsed what-if statement. On the columnar path this is exactly
  /// Prepare + Evaluate, so cached plans reproduce Run bit-for-bit.
  Result<WhatIfResult> Run(const sql::WhatIfStmt& stmt) const;

  /// Parses and runs query text (must be a what-if statement).
  Result<WhatIfResult> RunSql(const std::string& text) const;

  /// Builds the intervention-independent plan for `stmt`: relevant view,
  /// adjustment set, encoders, training matrix, residual hole plan. The
  /// update constants/functions of `stmt` are ignored — only the update
  /// attribute list matters. Returns Unimplemented when the statement needs
  /// the legacy row path (callers should fall back to Run).
  ///
  /// With a StageContext (and options().staged_prepare), the plan is
  /// assembled from the four-stage pipeline: each stage is looked up in the
  /// context's stage cache under its own key and only missing stages are
  /// built — so a plan differing from a cached one only in its When clause
  /// rebuilds just the QueryStage, and a scenario branch whose delta touches
  /// no training-relevant attribute reuses the parent's LearnStage (trained
  /// estimators included). Assembled plans are bit-identical to fresh ones.
  Result<std::shared_ptr<const PreparedWhatIf>> Prepare(
      const sql::WhatIfStmt& stmt, const StageContext* context = nullptr) const;

  /// Evaluates one intervention against a prepared plan. `updates` must
  /// target the plan's update attributes in order; constants and update
  /// functions are free. Thread-safe; answers are bit-for-bit identical to
  /// a fresh Run of the corresponding statement.
  Result<WhatIfResult> Evaluate(const PreparedWhatIf& plan,
                                const std::vector<UpdateSpec>& updates) const;

  /// Evaluates N interventions against one prepared plan in a single sharded
  /// pass over the worker pool. results[i] corresponds to interventions[i]
  /// and is identical to Evaluate(plan, interventions[i]).
  ///
  /// Error handling: with `statuses == nullptr` the first failing
  /// intervention (in index order) fails the whole call. With a non-null
  /// `statuses`, the call succeeds, statuses->at(i) carries each
  /// intervention's own status (e.g. Avg over a zero-probability qualifying
  /// set), and results[i] is meaningful iff statuses->at(i).ok() — one bad
  /// intervention no longer aborts the rest of a sweep.
  Result<std::vector<WhatIfResult>> EvaluateBatch(
      const PreparedWhatIf& plan,
      const std::vector<std::vector<UpdateSpec>>& interventions,
      std::vector<Status>* statuses = nullptr) const;

  /// Human-readable execution plan: relevant-view shape, When selectivity,
  /// update interpretation, target attributes and the adjustment set the
  /// configured backdoor mode would use. No estimators are trained.
  Result<std::string> Explain(const sql::WhatIfStmt& stmt) const;
  Result<std::string> ExplainSql(const std::string& text) const;

  const WhatIfOptions& options() const { return options_; }

 private:
  /// Legacy interpreter: row store + per-row Env lookups.
  Result<WhatIfResult> RunRows(const sql::WhatIfStmt& stmt) const;

  const Database* db_;
  const causal::CausalGraph* graph_;  // nullable
  WhatIfOptions options_;
};

}  // namespace hyper::whatif

#endif  // HYPER_WHATIF_ENGINE_H_
