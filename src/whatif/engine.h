#ifndef HYPER_WHATIF_ENGINE_H_
#define HYPER_WHATIF_ENGINE_H_

#include <string>
#include <vector>

#include "causal/graph.h"
#include "common/status.h"
#include "learn/estimator.h"
#include "learn/forest.h"
#include "sql/ast.h"
#include "storage/database.h"
#include "whatif/compile.h"

namespace hyper::whatif {

/// How the engine picks the adjustment set C of Equation (1).
enum class BackdoorMode {
  /// Minimal backdoor set from the causal graph (§A.2 greedy). This is
  /// "HypeR" in the paper's experiments.
  kGraph = 0,
  /// No background knowledge: every attribute joins the adjustment set
  /// ("HypeR-NB", §2.2 canonical model).
  kAllAttributes,
  /// No adjustment at all: condition on the update attribute only. This is
  /// the correlational "Indep" baseline of §5.1 — it ignores confounding
  /// and cross-attribute dependencies.
  kUpdateOnly,
};

const char* BackdoorModeName(BackdoorMode mode);

struct WhatIfOptions {
  learn::EstimatorKind estimator = learn::EstimatorKind::kForest;
  learn::ForestOptions forest = {};
  /// Shrinkage pseudo-count for the frequency estimator (0 = exact
  /// empirical conditionals; ~5-20 stabilizes sparse cells when continuous
  /// attributes are bucketized).
  double frequency_smoothing = 0.0;
  BackdoorMode backdoor = BackdoorMode::kGraph;
  /// Training-sample cap for the estimators; 0 = use every view row
  /// ("HypeR"), >0 = "HypeR-sampled" with this many rows (§5.2).
  size_t sample_size = 0;
  /// Compute per block of the block-independent decomposition (§3.3). Off
  /// switches to a single block — same value, used by the ablation bench.
  bool use_blocks = true;
  uint64_t seed = 7;
  /// Route the tuple scans through the columnar substrate with compiled
  /// expressions (default). Off = the legacy row-store interpreter path,
  /// kept for A/B benchmarking; both paths return identical answers.
  bool use_columnar = true;
  /// Worker threads for the independent-block loop (columnar path only):
  /// 1 = single-threaded, anything else = the process-wide hardware-sized
  /// pool (0 is the default). Blocks are evaluated on separate accumulators
  /// and merged in block order, so the answer is bit-for-bit identical for
  /// every setting.
  size_t num_threads = 0;
};

struct WhatIfResult {
  /// valwhatif(Q, D) — Definition 5.
  double value = 0.0;
  size_t view_rows = 0;
  size_t updated_rows = 0;   // |S|
  size_t num_blocks = 1;
  size_t num_patterns = 0;   // distinct post-residual formulas estimated
  std::vector<std::string> backdoor;  // adjustment set (causal names)
  double train_seconds = 0.0;
  double total_seconds = 0.0;
};

/// The HypeR what-if engine (§3.3): builds the relevant view, interprets the
/// update as an intervention, and estimates the post-update aggregate with
/// the backdoor-adjusted estimator, decomposed over independent blocks.
class WhatIfEngine {
 public:
  /// `graph` may be null: the engine then behaves as if BackdoorMode were
  /// kAllAttributes (no background knowledge).
  WhatIfEngine(const Database* db, const causal::CausalGraph* graph,
               WhatIfOptions options = {});

  /// Runs a parsed what-if statement.
  Result<WhatIfResult> Run(const sql::WhatIfStmt& stmt) const;

  /// Parses and runs query text (must be a what-if statement).
  Result<WhatIfResult> RunSql(const std::string& text) const;

  /// Human-readable execution plan: relevant-view shape, When selectivity,
  /// update interpretation, target attributes and the adjustment set the
  /// configured backdoor mode would use. No estimators are trained.
  Result<std::string> Explain(const sql::WhatIfStmt& stmt) const;
  Result<std::string> ExplainSql(const std::string& text) const;

  const WhatIfOptions& options() const { return options_; }

 private:
  /// Legacy interpreter: row store + per-row Env lookups.
  Result<WhatIfResult> RunRows(const sql::WhatIfStmt& stmt) const;
  /// Columnar path: dictionary-encoded columns, compiled expressions,
  /// memoized residual folding and a parallel block loop.
  Result<WhatIfResult> RunColumnar(const sql::WhatIfStmt& stmt) const;

  const Database* db_;
  const causal::CausalGraph* graph_;  // nullable
  WhatIfOptions options_;
};

}  // namespace hyper::whatif

#endif  // HYPER_WHATIF_ENGINE_H_
