#include "whatif/engine.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <optional>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "causal/ground.h"
#include "common/hash.h"
#include "common/mutex.h"
#include "common/rng.h"
#include "common/simd.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "learn/dataset.h"
#include "learn/discretizer.h"
#include "learn/frequency.h"
#include "prob/aggregates.h"
#include "relational/compiled.h"
#include "relational/eval.h"
#include "sql/parser.h"
#include "storage/column.h"

namespace hyper::whatif {

using relational::Env;
using relational::EvalExpr;
using relational::EvalPredicate;
using sql::AggKind;
using sql::Expr;
using sql::ExprKind;
using sql::ExprPtr;

const char* BackdoorModeName(BackdoorMode mode) {
  switch (mode) {
    case BackdoorMode::kGraph: return "graph";
    case BackdoorMode::kAllAttributes: return "all-attributes";
    case BackdoorMode::kUpdateOnly: return "update-only";
  }
  return "?";
}

const char* StageKindName(StageKind kind) {
  switch (kind) {
    case StageKind::kScope: return "scope";
    case StageKind::kCausal: return "causal";
    case StageKind::kLearn: return "learn";
    case StageKind::kQuery: return "query";
  }
  return "?";
}

std::string EstimatorConfigKey(const WhatIfOptions& options) {
  std::string key = StrFormat(
      "|est=%d|smooth=%.17g|sample=%zu|seed=%llu",
      static_cast<int>(options.estimator), options.frequency_smoothing,
      options.sample_size, static_cast<unsigned long long>(options.seed));
  const learn::ForestOptions& f = options.forest;
  key += StrFormat(
      "|forest=%zu,%.17g,%d,%llu,%d,%zu,%zu,%zu,%d,%zu", f.num_trees,
      f.subsample, f.sqrt_features ? 1 : 0,
      static_cast<unsigned long long>(f.seed), f.tree.max_depth,
      f.tree.min_samples_leaf, f.tree.max_features, f.tree.max_thresholds,
      f.tree.use_histograms ? 1 : 0, f.tree.max_bins);
  return key;
}

namespace {

using governance::ExecGuard;
using governance::ExecGuardPtr;
using governance::LoopCheck;

/// The request's guard: a pre-armed one injected by the caller (the service
/// arms per request so one deadline spans parse + prepare + evaluate), else
/// a fresh arm from the options' budget and token. Null when ungoverned —
/// every checkpoint below then reduces to one pointer test.
ExecGuardPtr GuardFor(const WhatIfOptions& options) {
  if (options.exec_guard != nullptr) return options.exec_guard;
  return ExecGuard::Arm(options.budget, options.cancel_token);
}

// ---------------------------------------------------------------------------
// For-predicate folding (§A.2): per tuple, every subexpression whose value
// is already determined (pre-update values, immutable attributes, the
// deterministic post-update value of the update attribute itself) is folded
// to a literal; what remains — the residual — references only genuinely
// random post-update attributes and is handled by the estimator.
// ---------------------------------------------------------------------------

/// True when `expr` (inside or outside Post) transitively references a
/// random column through a Post(...) wrapper.
bool ContainsRandomPost(const Expr& expr,
                        const std::set<std::string>& random_cols) {
  if (expr.kind == ExprKind::kPost) {
    std::vector<std::string> cols;
    sql::CollectColumnRefs(*expr.children[0], &cols);
    for (const std::string& col : cols) {
      if (random_cols.count(col) > 0) return true;
    }
    return false;
  }
  for (const auto& child : expr.children) {
    if (ContainsRandomPost(*child, random_cols)) return true;
  }
  return false;
}

/// Collects columns referenced inside Post(...) wrappers — the outcome
/// attributes of the query, as opposed to pre-update conditioning columns.
void CollectPostColumnRefs(const Expr& expr, std::vector<std::string>* out) {
  if (expr.kind == ExprKind::kPost) {
    sql::CollectColumnRefs(*expr.children[0], out);
    return;
  }
  for (const auto& child : expr.children) {
    CollectPostColumnRefs(*child, out);
  }
}

bool IsBoolLiteral(const Expr& expr, bool* value) {
  if (expr.kind != ExprKind::kLiteral) return false;
  auto b = expr.literal.AsBool();
  if (!b.ok()) return false;
  *value = *b;
  return true;
}

/// Folds `expr` for one tuple. `env` binds the tuple with its deterministic
/// post image (update attributes set to f(b), everything else pre).
Result<ExprPtr> FoldExpr(const Expr& expr, const Env& env,
                         const std::set<std::string>& random_cols) {
  if (!ContainsRandomPost(expr, random_cols)) {
    HYPER_ASSIGN_OR_RETURN(Value v, EvalExpr(expr, env));
    return sql::MakeLiteral(std::move(v));
  }
  switch (expr.kind) {
    case ExprKind::kBinary:
      if (expr.op == sql::BinaryOp::kAnd || expr.op == sql::BinaryOp::kOr) {
        HYPER_ASSIGN_OR_RETURN(ExprPtr lhs,
                               FoldExpr(*expr.children[0], env, random_cols));
        HYPER_ASSIGN_OR_RETURN(ExprPtr rhs,
                               FoldExpr(*expr.children[1], env, random_cols));
        bool lit = false;
        const bool is_and = expr.op == sql::BinaryOp::kAnd;
        if (IsBoolLiteral(*lhs, &lit)) {
          if (is_and) return lit ? std::move(rhs) : sql::MakeLiteral(Value::Bool(false));
          return lit ? sql::MakeLiteral(Value::Bool(true)) : std::move(rhs);
        }
        if (IsBoolLiteral(*rhs, &lit)) {
          if (is_and) return lit ? std::move(lhs) : sql::MakeLiteral(Value::Bool(false));
          return lit ? sql::MakeLiteral(Value::Bool(true)) : std::move(lhs);
        }
        return sql::MakeBinary(expr.op, std::move(lhs), std::move(rhs));
      }
      break;
    case ExprKind::kNot: {
      HYPER_ASSIGN_OR_RETURN(ExprPtr inner,
                             FoldExpr(*expr.children[0], env, random_cols));
      bool lit = false;
      if (IsBoolLiteral(*inner, &lit)) {
        return sql::MakeLiteral(Value::Bool(!lit));
      }
      return sql::MakeNot(std::move(inner));
    }
    case ExprKind::kPost:
      // A random Post reference: keep verbatim for the estimator.
      return expr.Clone();
    default:
      break;
  }
  // A mixed atom (comparison/arithmetic/in-list containing a random Post
  // plus determined parts): fold the determined children to literals — this
  // is the Proposition 6 grounding, e.g. Post(A) > Pre(A) becomes
  // "Post(A) > 5" for a tuple whose A is 5.
  auto out = std::make_unique<Expr>();
  out->kind = expr.kind;
  out->literal = expr.literal;
  out->qualifier = expr.qualifier;
  out->name = expr.name;
  out->op = expr.op;
  for (const auto& child : expr.children) {
    HYPER_ASSIGN_OR_RETURN(ExprPtr folded,
                           FoldExpr(*child, env, random_cols));
    out->children.push_back(std::move(folded));
  }
  return out;
}

/// Estimators trained for one residual pattern.
struct PatternEstimators {
  bool literal = false;
  bool literal_value = false;  // valid when literal
  std::unique_ptr<learn::ConditionalMeanEstimator> weight;  // Pr(residual)
  std::unique_ptr<learn::ConditionalMeanEstimator> value;   // E[Y * 1{res}]
};

std::unique_ptr<learn::ConditionalMeanEstimator> MakeEstimator(
    const WhatIfOptions& options) {
  if (options.estimator == learn::EstimatorKind::kFrequency) {
    return std::make_unique<learn::FrequencyEstimator>(
        /*backoff=*/true, options.frequency_smoothing);
  }
  learn::ForestOptions fo = options.forest;
  fo.seed = options.seed * 2654435761u + 17;
  // The engine's thread budget (--threads at the service/shell layer) is
  // also the forest trainer's budget, unless the forest was configured with
  // its own. Training results are identical for every setting.
  if (fo.num_threads == 0) fo.num_threads = options.num_threads;
  return std::make_unique<learn::RandomForestRegressor>(fo);
}

/// Trains a freshly-made pattern estimator, routing forests through the
/// plan-shared pre-binned matrix when one is available (binning is a pure
/// function of the training matrix, so sharing it never changes the trees).
Status FitPatternEstimator(learn::ConditionalMeanEstimator* est,
                           const WhatIfOptions& options,
                           const learn::FeatureMatrix& x,
                           const learn::BinnedMatrix* binned,
                           const std::vector<double>& y) {
  if (binned != nullptr &&
      options.estimator == learn::EstimatorKind::kForest &&
      options.forest.tree.use_histograms) {
    return static_cast<learn::RandomForestRegressor*>(est)->FitPreBinned(
        x, *binned, y);
  }
  return est->Fit(x, y);
}

double Clamp01(double v) { return std::min(1.0, std::max(0.0, v)); }

// ---------------------------------------------------------------------------
// Query planning shared by the row and columnar execution paths: everything
// derivable from the compiled query + causal graph without scanning a single
// row. Keeping this in one place is what makes "both paths return identical
// answers" a structural property instead of a test-enforced hope.
// ---------------------------------------------------------------------------

struct WhatIfPlan {
  BackdoorMode mode = BackdoorMode::kAllAttributes;
  std::vector<size_t> update_cols;      // view column of each update
  /// Mutable view columns an update can actually move.
  std::set<std::string> random_cols;
  /// Random columns mentioned under Post(...) in For / Output.
  std::set<std::string> target_cols;
  /// psi cross-tuple summary features (§2.2 / §A.3.2).
  struct PsiSpec {
    size_t update_index;  // into q.updates
    size_t link_col;      // view column of the link attribute
    std::string name;
  };
  std::vector<PsiSpec> psi_specs;
  /// Adjustment set C (Equation 1): view columns, sorted, plus the causal
  /// names reported in WhatIfResult.
  std::vector<std::string> backdoor_cols;
  std::vector<std::string> backdoor_causal;
  /// Feature layout: update attributes, then backdoor columns, then For
  /// conditioning columns (psi features are appended at encode time).
  std::vector<std::string> feature_cols;
};

Result<WhatIfPlan> BuildWhatIfPlan(const CompiledWhatIf& q,
                                   const causal::CausalGraph* graph,
                                   BackdoorMode requested_mode) {
  const Schema& vschema = q.view_info->view->schema();
  WhatIfPlan plan;
  plan.mode = graph == nullptr ? BackdoorMode::kAllAttributes : requested_mode;
  const BackdoorMode mode = plan.mode;

  // Causal name <-> view column maps.
  auto causal_of = [&](const std::string& col) -> std::string {
    auto it = q.view_info->causal_of_column.find(col);
    return it == q.view_info->causal_of_column.end() ? std::string()
                                                    : it->second;
  };
  std::unordered_map<std::string, std::string> column_of_causal;
  for (const auto& [col, attr] : q.view_info->causal_of_column) {
    column_of_causal.emplace(attr, col);
  }

  // Update columns. Multi-update soundness (§3.1): updated attributes must
  // be causally unrelated to each other.
  for (const UpdateSpec& u : q.updates) {
    HYPER_ASSIGN_OR_RETURN(size_t idx, vschema.IndexOf(u.attribute));
    plan.update_cols.push_back(idx);
  }
  if (mode == BackdoorMode::kGraph && q.updates.size() > 1) {
    for (size_t i = 0; i < q.updates.size(); ++i) {
      const std::string bi = causal_of(q.updates[i].attribute);
      if (!graph->HasNode(bi)) continue;
      const auto desc = graph->Descendants(bi);
      for (size_t j = 0; j < q.updates.size(); ++j) {
        if (i == j) continue;
        if (desc.count(causal_of(q.updates[j].attribute)) > 0) {
          return Status::InvalidArgument(
              "multi-attribute update requires causally unrelated "
              "attributes: '" + q.updates[i].attribute + "' affects '" +
              q.updates[j].attribute + "'");
        }
      }
    }
  }

  // Random columns: mutable view columns that an update can actually move.
  // With a causal graph these are the causal descendants of the update
  // attributes; without one, every mutable non-update attribute.
  {
    std::set<std::string> update_names;
    for (const UpdateSpec& u : q.updates) update_names.insert(u.attribute);
    if (mode == BackdoorMode::kGraph) {
      std::unordered_set<std::string> desc;
      for (const UpdateSpec& u : q.updates) {
        const std::string b = causal_of(u.attribute);
        if (!graph->HasNode(b)) continue;
        for (const std::string& d : graph->Descendants(b)) desc.insert(d);
      }
      for (const AttributeDef& attr : vschema.attributes()) {
        if (attr.mutability == Mutability::kImmutable) continue;
        if (update_names.count(attr.name) > 0) continue;
        if (desc.count(causal_of(attr.name)) > 0) {
          plan.random_cols.insert(attr.name);
        }
      }
    } else {
      for (const AttributeDef& attr : vschema.attributes()) {
        if (attr.mutability == Mutability::kImmutable) continue;
        if (update_names.count(attr.name) > 0) continue;
        plan.random_cols.insert(attr.name);
      }
    }
  }

  // Post-referenced target columns (for backdoor computation and feature
  // exclusion): random columns mentioned under Post(...) in For / Output.
  // Columns referenced only through Pre(...) are conditioning attributes,
  // not outcomes.
  {
    std::vector<std::string> cols;
    if (q.for_pred != nullptr) CollectPostColumnRefs(*q.for_pred, &cols);
    if (q.output_value != nullptr) {
      sql::CollectColumnRefs(*q.output_value, &cols);
    }
    for (const std::string& col : cols) {
      if (plan.random_cols.count(col) > 0) plan.target_cols.insert(col);
    }
  }

  // psi features: when the graph has a cross-tuple edge out of an update
  // attribute, the group mean of that attribute over the link group becomes
  // a feature, recomputed post-update.
  if (mode == BackdoorMode::kGraph) {
    for (size_t j = 0; j < q.updates.size(); ++j) {
      const std::string b = causal_of(q.updates[j].attribute);
      for (const causal::CausalEdge& e : graph->edges()) {
        if (!e.is_cross_tuple() || e.from != b) continue;
        auto link_col = column_of_causal.find(e.link_attribute);
        std::string link_name = link_col != column_of_causal.end()
                                    ? link_col->second
                                    : e.link_attribute;
        if (!vschema.Contains(link_name)) continue;
        WhatIfPlan::PsiSpec spec;
        spec.update_index = j;
        spec.link_col = vschema.IndexOf(link_name).value();
        spec.name = "psi_" + q.updates[j].attribute;
        plan.psi_specs.push_back(std::move(spec));
        break;  // one psi per update attribute
      }
    }
  }

  // Adjustment set C (Equation 1) per the backdoor mode.
  {
    std::set<std::string> chosen;  // causal names
    if (mode == BackdoorMode::kGraph) {
      for (const UpdateSpec& u : q.updates) {
        const std::string b = causal_of(u.attribute);
        if (!graph->HasNode(b)) continue;
        for (const std::string& target : plan.target_cols) {
          const std::string y = causal_of(target);
          if (!graph->HasNode(y)) continue;
          auto set = causal::MinimalBackdoorSet(*graph, b, y);
          if (!set.ok()) continue;  // disconnected: nothing to adjust
          for (const std::string& c : *set) chosen.insert(c);
        }
      }
    } else if (mode == BackdoorMode::kAllAttributes) {
      std::set<std::string> excluded = plan.target_cols;
      for (const UpdateSpec& u : q.updates) excluded.insert(u.attribute);
      for (const std::string& k : q.view_info->view_key_columns) {
        excluded.insert(k);
      }
      for (const AttributeDef& attr : vschema.attributes()) {
        if (excluded.count(attr.name) > 0) continue;
        chosen.insert(causal_of(attr.name).empty() ? attr.name
                                                   : causal_of(attr.name));
      }
    }  // kUpdateOnly: empty set
    for (const std::string& c : chosen) {
      auto it = column_of_causal.find(c);
      const std::string col = it != column_of_causal.end() ? it->second : c;
      if (vschema.Contains(col)) {
        plan.backdoor_cols.push_back(col);
        plan.backdoor_causal.push_back(c);
      }
    }
    std::sort(plan.backdoor_cols.begin(), plan.backdoor_cols.end());
    std::sort(plan.backdoor_causal.begin(), plan.backdoor_causal.end());
  }

  // Conditioning attributes from the For operator (§5.5, Figure 11a): the
  // estimation of Proposition 2 conditions on mu_For,Pre, so attributes
  // referenced by pre-update conditions join the regressor features. Only
  // non-descendants of the update attributes qualify — conditioning on a
  // mediator's pre-value would block part of the causal path. The Indep
  // baseline skips these (it conditions on nothing but the update).
  std::vector<std::string> conditioning_cols;
  if (q.for_pred != nullptr && mode != BackdoorMode::kUpdateOnly) {
    std::unordered_set<std::string> descendants_of_updates;
    if (mode == BackdoorMode::kGraph) {
      for (const UpdateSpec& u : q.updates) {
        const std::string b = causal_of(u.attribute);
        if (!graph->HasNode(b)) continue;
        for (const std::string& d : graph->Descendants(b)) {
          descendants_of_updates.insert(d);
        }
      }
    }
    std::set<std::string> existing(plan.backdoor_cols.begin(),
                                   plan.backdoor_cols.end());
    for (const UpdateSpec& u : q.updates) existing.insert(u.attribute);
    for (const std::string& k : q.view_info->view_key_columns) {
      existing.insert(k);
    }
    std::vector<std::string> refs;
    sql::CollectColumnRefs(*q.for_pred, &refs);
    for (const std::string& col : refs) {
      if (existing.count(col) > 0) continue;
      if (plan.target_cols.count(col) > 0) continue;
      if (plan.random_cols.count(col) > 0) continue;  // mutable descendants
      if (mode == BackdoorMode::kGraph &&
          descendants_of_updates.count(causal_of(col)) > 0) {
        continue;
      }
      if (!vschema.Contains(col)) continue;
      conditioning_cols.push_back(col);
      existing.insert(col);
    }
  }

  for (const UpdateSpec& u : q.updates) plan.feature_cols.push_back(u.attribute);
  for (const std::string& c : plan.backdoor_cols) plan.feature_cols.push_back(c);
  for (const std::string& c : conditioning_cols) plan.feature_cols.push_back(c);
  return plan;
}

/// Block-independent decomposition (§3.3), shared by both paths: view rows
/// grouped by the ground-graph component of their base tuple (a single
/// block when decomposition is off or unavailable).
std::vector<std::vector<size_t>> BuildBlockRows(
    const CompiledWhatIf& q, const Database& db,
    const causal::CausalGraph* graph, bool use_blocks, size_t n) {
  std::vector<std::vector<size_t>> block_rows;
  if (use_blocks && graph != nullptr) {
    // Without cross-tuple edges the ground graph never connects two tuples:
    // every base tuple is its own component, so the blocks are the view
    // rows grouped by base tid — no need to materialize the ground graph.
    // (Partials fold with g = Sum, so any refinement of the block partition
    // produces the same value bit for bit.)
    bool any_cross_tuple = false;
    for (const causal::CausalEdge& e : graph->edges()) {
      if (e.is_cross_tuple()) {
        any_cross_tuple = true;
        break;
      }
    }
    if (!any_cross_tuple) {
      std::unordered_map<size_t, size_t> block_index;
      for (size_t r = 0; r < n; ++r) {
        const size_t tid = q.view_info->view_row_to_tid[r];
        auto [it, inserted] = block_index.emplace(tid, block_rows.size());
        if (inserted) block_rows.emplace_back();
        block_rows[it->second].push_back(r);
      }
      return block_rows;
    }
    auto components = causal::TupleComponents::Build(*graph, db);
    if (components.ok()) {
      std::unordered_map<size_t, size_t> block_index;
      for (size_t r = 0; r < n; ++r) {
        auto block = components->BlockOf(causal::TupleId{
            q.view_info->update_relation, q.view_info->view_row_to_tid[r]});
        const size_t b = block.ok() ? *block : 0;
        auto [it, inserted] = block_index.emplace(b, block_rows.size());
        if (inserted) block_rows.emplace_back();
        block_rows[it->second].push_back(r);
      }
    }
  }
  if (block_rows.empty()) {
    block_rows.emplace_back();
    block_rows[0].resize(n);
    for (size_t r = 0; r < n; ++r) block_rows[0][r] = r;
  }
  return block_rows;
}

// ---------------------------------------------------------------------------
// Columnar fold machinery. FoldExpr's recursion structure is row-independent:
// which subtrees are "determined" depends only on random_cols. The columnar
// path therefore compiles every maximal determined subtree (a "hole") once,
// evaluates only the hole values per tuple, and caches the folded residual
// per distinct hole-value vector — the Proposition 6 grounding, memoized.
// ---------------------------------------------------------------------------

/// Marks every node that transitively contains a random Post(...) reference
/// (the nodes ContainsRandomPost is true for). Nodes inside a Post subtree
/// are never marked: FoldExpr keeps Post subtrees verbatim.
bool MarkRandom(const Expr& e, const std::set<std::string>& random_cols,
                std::unordered_set<const Expr*>* random) {
  if (e.kind == ExprKind::kPost) {
    std::vector<std::string> cols;
    sql::CollectColumnRefs(*e.children[0], &cols);
    for (const std::string& col : cols) {
      if (random_cols.count(col) > 0) {
        random->insert(&e);
        return true;
      }
    }
    return false;
  }
  bool any = false;
  for (const auto& child : e.children) {
    if (MarkRandom(*child, random_cols, random)) any = true;
  }
  if (any) random->insert(&e);
  return any;
}

/// Registers the maximal determined subtrees in FoldExpr evaluation order.
void CollectHoles(const Expr& e,
                  const std::unordered_set<const Expr*>& random,
                  std::vector<const Expr*>* holes,
                  std::unordered_map<const Expr*, size_t>* hole_of) {
  if (random.count(&e) == 0) {
    hole_of->emplace(&e, holes->size());
    holes->push_back(&e);
    return;
  }
  if (e.kind == ExprKind::kPost) return;  // kept verbatim by the fold
  for (const auto& child : e.children) {
    CollectHoles(*child, random, holes, hole_of);
  }
}

/// FoldExpr with the determined subtrees replaced by precomputed values.
/// Mirrors FoldExpr exactly, so the residual for a tuple is identical to
/// what the row path would fold.
ExprPtr FoldFromHoles(const Expr& expr,
                      const std::unordered_map<const Expr*, size_t>& hole_of,
                      const std::vector<Value>& hole_values) {
  auto it = hole_of.find(&expr);
  if (it != hole_of.end()) {
    return sql::MakeLiteral(hole_values[it->second]);
  }
  switch (expr.kind) {
    case ExprKind::kBinary:
      if (expr.op == sql::BinaryOp::kAnd || expr.op == sql::BinaryOp::kOr) {
        ExprPtr lhs = FoldFromHoles(*expr.children[0], hole_of, hole_values);
        ExprPtr rhs = FoldFromHoles(*expr.children[1], hole_of, hole_values);
        bool lit = false;
        const bool is_and = expr.op == sql::BinaryOp::kAnd;
        if (IsBoolLiteral(*lhs, &lit)) {
          if (is_and) {
            return lit ? std::move(rhs) : sql::MakeLiteral(Value::Bool(false));
          }
          return lit ? sql::MakeLiteral(Value::Bool(true)) : std::move(rhs);
        }
        if (IsBoolLiteral(*rhs, &lit)) {
          if (is_and) {
            return lit ? std::move(lhs) : sql::MakeLiteral(Value::Bool(false));
          }
          return lit ? sql::MakeLiteral(Value::Bool(true)) : std::move(lhs);
        }
        return sql::MakeBinary(expr.op, std::move(lhs), std::move(rhs));
      }
      break;
    case ExprKind::kNot: {
      ExprPtr inner = FoldFromHoles(*expr.children[0], hole_of, hole_values);
      bool lit = false;
      if (IsBoolLiteral(*inner, &lit)) {
        return sql::MakeLiteral(Value::Bool(!lit));
      }
      return sql::MakeNot(std::move(inner));
    }
    case ExprKind::kPost:
      return expr.Clone();
    default:
      break;
  }
  auto out = std::make_unique<Expr>();
  out->kind = expr.kind;
  out->literal = expr.literal;
  out->qualifier = expr.qualifier;
  out->name = expr.name;
  out->op = expr.op;
  for (const auto& child : expr.children) {
    out->children.push_back(FoldFromHoles(*child, hole_of, hole_values));
  }
  return out;
}

/// Dense first-seen group ids over one column, hashing dictionary codes /
/// raw machine words instead of Value objects. Falls back to Value keys for
/// columns carrying NULLs.
Result<std::vector<uint32_t>> GroupIdsForColumn(const ColumnTable& table,
                                                size_t attr,
                                                uint32_t* num_groups) {
  const Column& col = table.col(attr);
  const size_t n = table.num_rows();
  std::vector<uint32_t> gid(n);
  uint32_t next = 0;
  if (!col.has_nulls()) {
    switch (col.kind) {
      case ColumnKind::kCode: {
        std::vector<uint32_t> of_code(table.dict().size(), UINT32_MAX);
        for (size_t r = 0; r < n; ++r) {
          uint32_t& g = of_code[col.codes[r]];
          if (g == UINT32_MAX) g = next++;
          gid[r] = g;
        }
        *num_groups = next;
        return gid;
      }
      case ColumnKind::kInt64: {
        std::unordered_map<int64_t, uint32_t> of_key;
        of_key.reserve(n / 4 + 1);
        for (size_t r = 0; r < n; ++r) {
          auto [it, inserted] = of_key.emplace(col.i64[r], next);
          if (inserted) ++next;
          gid[r] = it->second;
        }
        *num_groups = next;
        return gid;
      }
      case ColumnKind::kDouble: {
        std::unordered_map<double, uint32_t> of_key;
        of_key.reserve(n / 4 + 1);
        for (size_t r = 0; r < n; ++r) {
          auto [it, inserted] = of_key.emplace(col.f64[r], next);
          if (inserted) ++next;
          gid[r] = it->second;
        }
        *num_groups = next;
        return gid;
      }
      case ColumnKind::kBool: {
        uint32_t of_bool[2] = {UINT32_MAX, UINT32_MAX};
        for (size_t r = 0; r < n; ++r) {
          uint32_t& g = of_bool[col.b8[r] != 0 ? 1 : 0];
          if (g == UINT32_MAX) g = next++;
          gid[r] = g;
        }
        *num_groups = next;
        return gid;
      }
    }
  }
  std::unordered_map<Value, uint32_t, ValueHash> of_value;
  for (size_t r = 0; r < n; ++r) {
    auto [it, inserted] = of_value.emplace(table.GetValue(r, attr), next);
    if (inserted) ++next;
    gid[r] = it->second;
  }
  *num_groups = next;
  return gid;
}

}  // namespace

WhatIfEngine::WhatIfEngine(const Database* db,
                           const causal::CausalGraph* graph,
                           WhatIfOptions options)
    : db_(db), graph_(graph), options_(options) {}

Result<WhatIfResult> WhatIfEngine::RunSql(const std::string& text) const {
  HYPER_ASSIGN_OR_RETURN(sql::Statement stmt, sql::ParseSql(text));
  if (stmt.whatif == nullptr) {
    return Status::InvalidArgument("expected a what-if statement");
  }
  return Run(*stmt.whatif);
}

Result<std::string> WhatIfEngine::ExplainSql(const std::string& text) const {
  HYPER_ASSIGN_OR_RETURN(sql::Statement stmt, sql::ParseSql(text));
  if (stmt.whatif == nullptr) {
    return Status::InvalidArgument("expected a what-if statement");
  }
  return Explain(*stmt.whatif);
}

Result<std::string> WhatIfEngine::Explain(const sql::WhatIfStmt& stmt) const {
  HYPER_ASSIGN_OR_RETURN(CompiledWhatIf q, CompileWhatIf(*db_, stmt));
  const Table& view = *q.view_info->view;
  const Schema& vschema = view.schema();
  const BackdoorMode mode =
      graph_ == nullptr ? BackdoorMode::kAllAttributes : options_.backdoor;

  std::string out;
  out += StrFormat("relevant view: %s over relation '%s' (%zu rows, %zu "
                   "attributes)\n",
                   vschema.relation_name().c_str(),
                   q.view_info->update_relation.c_str(), view.num_rows(),
                   vschema.num_attributes());

  size_t selected = view.num_rows();
  if (q.when != nullptr) {
    selected = 0;
    for (size_t r = 0; r < view.num_rows(); ++r) {
      Env env;
      env.Bind(vschema.relation_name(), &vschema, &view.row(r));
      HYPER_ASSIGN_OR_RETURN(bool sel, EvalPredicate(*q.when, env));
      if (sel) ++selected;
    }
    out += "when: " + q.when->ToString() +
           StrFormat("  -> S has %zu tuple(s)\n", selected);
  } else {
    out += StrFormat("when: (absent) -> S = all %zu tuples\n", selected);
  }
  for (const UpdateSpec& u : q.updates) {
    out += StrFormat("update: %s <- %s(%s)\n", u.attribute.c_str(),
                     sql::UpdateFuncKindName(u.func),
                     u.constant.ToString().c_str());
  }
  out += std::string("output: ") + sql::AggKindName(q.output_agg);
  if (q.output_value != nullptr) {
    out += " of " + q.output_value->ToString();
  }
  out += "\n";
  if (q.for_pred != nullptr) {
    out += "for: " + q.for_pred->ToString() + "\n";
  }

  out += std::string("backdoor mode: ") + BackdoorModeName(mode) + "\n";
  if (mode == BackdoorMode::kGraph) {
    std::vector<std::string> targets;
    if (q.for_pred != nullptr) CollectPostColumnRefs(*q.for_pred, &targets);
    if (q.output_value != nullptr) {
      sql::CollectColumnRefs(*q.output_value, &targets);
    }
    for (const UpdateSpec& u : q.updates) {
      auto it = q.view_info->causal_of_column.find(u.attribute);
      const std::string b =
          it != q.view_info->causal_of_column.end() ? it->second : u.attribute;
      if (!graph_->HasNode(b)) continue;
      for (const std::string& target : targets) {
        auto jt = q.view_info->causal_of_column.find(target);
        const std::string y =
            jt != q.view_info->causal_of_column.end() ? jt->second : target;
        if (!graph_->HasNode(y)) continue;
        auto set = causal::MinimalBackdoorSet(*graph_, b, y);
        if (!set.ok()) continue;
        out += "  adjust (" + b + " -> " + y + "): {";
        bool first = true;
        for (const std::string& c : *set) {
          if (!first) out += ", ";
          out += c;
          first = false;
        }
        out += "}\n";
      }
    }
  }
  out += std::string("estimator: ") +
         learn::EstimatorKindName(options_.estimator);
  if (options_.sample_size > 0) {
    out += StrFormat(" (training sample %zu)", options_.sample_size);
  }
  out += "\n";
  return out;
}

Result<WhatIfResult> WhatIfEngine::Run(const sql::WhatIfStmt& stmt) const {
  if (options_.exec_guard == nullptr) {
    ExecGuardPtr guard = ExecGuard::Arm(options_.budget, options_.cancel_token);
    if (guard != nullptr) {
      // Re-enter with the armed guard injected so Prepare, Evaluate and the
      // row fallback all observe one deadline and one pair of meters.
      WhatIfOptions governed = options_;
      governed.exec_guard = std::move(guard);
      return WhatIfEngine(db_, graph_, std::move(governed)).Run(stmt);
    }
  }
  if (!options_.use_columnar) return RunRows(stmt);
  Stopwatch total_timer;
  auto prepared = Prepare(stmt);
  if (!prepared.ok()) {
    // Shapes the columnar substrate cannot represent fall back to the row
    // interpreter, exactly as the pre-split engine did.
    if (prepared.status().code() == StatusCode::kUnimplemented) {
      return RunRows(stmt);
    }
    return prepared.status();
  }
  HYPER_ASSIGN_OR_RETURN(WhatIfResult result,
                         Evaluate(**prepared, SpecsOfStatement(stmt)));
  result.prepare_seconds = (*prepared)->prepare_seconds();
  result.total_seconds = total_timer.ElapsedSeconds();
  return result;
}

Result<WhatIfResult> WhatIfEngine::RunRows(const sql::WhatIfStmt& stmt) const {
  Stopwatch total_timer;
  WhatIfResult result;

  HYPER_ASSIGN_OR_RETURN(CompiledWhatIf q, CompileWhatIf(*db_, stmt));
  const Table& view = *q.view_info->view;
  const Schema& vschema = view.schema();
  const size_t n = view.num_rows();
  result.view_rows = n;
  if (n == 0) {
    return Status::InvalidArgument("relevant view is empty");
  }
  const ExecGuardPtr guard = GuardFor(options_);
  if (guard != nullptr) {
    HYPER_RETURN_NOT_OK(guard->ChargeRows(n, "whatif.run_rows"));
  }

  HYPER_ASSIGN_OR_RETURN(WhatIfPlan plan,
                         BuildWhatIfPlan(q, graph_, options_.backdoor));
  const std::vector<size_t>& update_cols = plan.update_cols;
  result.backdoor = plan.backdoor_causal;

  std::vector<bool> in_s(n, true);
  if (q.when != nullptr) {
    for (size_t r = 0; r < n; ++r) {
      Env env;
      env.Bind(vschema.relation_name(), &vschema, &view.row(r));
      HYPER_ASSIGN_OR_RETURN(bool sel, EvalPredicate(*q.when, env));
      in_s[r] = sel;
    }
  }
  // Deterministic post image per row: update attributes set to f(b) on S.
  std::vector<Row> post_rows(n);
  size_t updated = 0;
  for (size_t r = 0; r < n; ++r) {
    post_rows[r] = view.row(r);
    if (!in_s[r]) continue;
    ++updated;
    for (size_t j = 0; j < q.updates.size(); ++j) {
      HYPER_ASSIGN_OR_RETURN(
          Value post, q.updates[j].Apply(view.At(r, update_cols[j])));
      post_rows[r][update_cols[j]] = std::move(post);
    }
  }
  result.updated_rows = updated;

  const std::set<std::string>& random_cols = plan.random_cols;
  const std::vector<WhatIfPlan::PsiSpec>& psi_specs = plan.psi_specs;

  // Group means for psi features (pre and post).
  std::vector<std::vector<double>> psi_pre(psi_specs.size()),
      psi_post(psi_specs.size());
  std::vector<bool> psi_changed(n, false);
  for (size_t p = 0; p < psi_specs.size(); ++p) {
    const WhatIfPlan::PsiSpec& spec = psi_specs[p];
    const size_t bcol = update_cols[spec.update_index];
    std::unordered_map<Value, std::pair<double, double>, ValueHash> sums;
    std::unordered_map<Value, size_t, ValueHash> counts;
    for (size_t r = 0; r < n; ++r) {
      const Value& g = view.At(r, spec.link_col);
      HYPER_ASSIGN_OR_RETURN(double pre, view.At(r, bcol).AsDouble());
      HYPER_ASSIGN_OR_RETURN(double post, post_rows[r][bcol].AsDouble());
      sums[g].first += pre;
      sums[g].second += post;
      counts[g] += 1;
    }
    psi_pre[p].resize(n);
    psi_post[p].resize(n);
    for (size_t r = 0; r < n; ++r) {
      const Value& g = view.At(r, spec.link_col);
      const auto& s = sums.at(g);
      const double c = static_cast<double>(counts.at(g));
      psi_pre[p][r] = s.first / c;
      psi_post[p][r] = s.second / c;
      if (std::fabs(psi_pre[p][r] - psi_post[p][r]) > 1e-12) {
        psi_changed[r] = true;
      }
    }
  }

  // Feature layout from the shared plan: update attributes, then backdoor
  // columns, then For conditioning columns, then psi.
  const std::vector<std::string>& feature_cols = plan.feature_cols;
  HYPER_ASSIGN_OR_RETURN(learn::FeatureEncoder encoder,
                         learn::FeatureEncoder::Fit(view, feature_cols));

  // The frequency estimator needs a discrete feature space: bucketize
  // continuous feature columns into equal-count (quantile) cells, fitted
  // over pre- and post-update values so hypothetical points land inside the
  // range (the paper likewise bucketizes continuous attributes, §5.4).
  // Quantile cells keep the tails densely populated, so conditional
  // estimates stay stable at extreme candidate values.
  std::vector<std::optional<learn::QuantileDiscretizer>> feature_disc(
      feature_cols.size());
  if (options_.estimator == learn::EstimatorKind::kFrequency) {
    for (size_t j = 0; j < feature_cols.size(); ++j) {
      const size_t col = vschema.IndexOf(feature_cols[j]).value();
      if (vschema.attribute(col).type != ValueType::kDouble) continue;
      // Fit on the observed (pre-update) distribution only: the grid must
      // reflect where training data lives; hypothetical points clamp into
      // the nearest populated cell, which keeps candidate rankings monotone
      // without letting duplicated post-update constants distort the cells.
      std::vector<double> values;
      values.reserve(n);
      for (size_t r = 0; r < n; ++r) {
        auto pre = view.At(r, col).AsDouble();
        if (pre.ok()) values.push_back(*pre);
      }
      auto disc = learn::QuantileDiscretizer::FitToData(std::move(values), 16);
      if (disc.ok()) feature_disc[j] = *disc;
    }
  }
  auto snap_feature = [&](size_t j, double v) {
    return feature_disc[j].has_value()
               ? feature_disc[j]->Representative(feature_disc[j]->BucketOf(v))
               : v;
  };

  // Training rows (HypeR-sampled caps them).
  std::vector<size_t> train_rows;
  if (options_.sample_size > 0 && options_.sample_size < n) {
    Rng rng(options_.seed);
    train_rows = rng.SampleWithoutReplacement(n, options_.sample_size);
  } else {
    train_rows.resize(n);
    for (size_t r = 0; r < n; ++r) train_rows[r] = r;
  }

  Stopwatch train_timer;
  double train_seconds = 0.0;

  // Pre-encode training features (observed values + psi_pre).
  learn::FeatureMatrix train_x(train_rows.size(),
                               feature_cols.size() + psi_specs.size());
  for (size_t i = 0; i < train_rows.size(); ++i) {
    const size_t r = train_rows[i];
    HYPER_ASSIGN_OR_RETURN(std::vector<double> x, encoder.EncodeRow(view, r));
    double* row = train_x.mutable_row(i);
    for (size_t j = 0; j < x.size(); ++j) row[j] = snap_feature(j, x[j]);
    for (size_t p = 0; p < psi_specs.size(); ++p) {
      row[feature_cols.size() + p] = psi_pre[p][r];
    }
  }

  // Observed output values (Sum/Avg only).
  std::vector<double> y_obs;
  if (q.output_value != nullptr) {
    y_obs.resize(train_rows.size());
    for (size_t i = 0; i < train_rows.size(); ++i) {
      const size_t r = train_rows[i];
      Env env;
      env.Bind(vschema.relation_name(), &vschema, &view.row(r),
               &view.row(r));
      HYPER_ASSIGN_OR_RETURN(Value v, EvalExpr(*q.output_value, env));
      HYPER_ASSIGN_OR_RETURN(y_obs[i], v.AsDouble());
    }
  }

  // Residual-pattern estimator cache with lazy training.
  std::unordered_map<std::string, PatternEstimators> patterns;
  auto get_pattern = [&](const ExprPtr& residual,
                         const std::string& key) -> Result<PatternEstimators*> {
    auto it = patterns.find(key);
    if (it != patterns.end()) return &it->second;
    train_timer.Restart();
    PatternEstimators pat;
    bool lit = false;
    const bool is_literal = IsBoolLiteral(*residual, &lit);
    pat.literal = is_literal;
    pat.literal_value = lit;

    // Indicator targets 1{residual} evaluated observationally.
    std::vector<double> ind(train_rows.size(), 1.0);
    if (!is_literal) {
      for (size_t i = 0; i < train_rows.size(); ++i) {
        const size_t r = train_rows[i];
        Env env;
        env.Bind(vschema.relation_name(), &vschema, &view.row(r),
                 &view.row(r));
        HYPER_ASSIGN_OR_RETURN(bool b, EvalPredicate(*residual, env));
        ind[i] = b ? 1.0 : 0.0;
      }
      pat.weight = MakeEstimator(options_);
      HYPER_RETURN_NOT_OK(pat.weight->Fit(train_x, ind));
    }
    if (q.output_value != nullptr && !(is_literal && !lit)) {
      std::vector<double> value_target(train_rows.size());
      for (size_t i = 0; i < train_rows.size(); ++i) {
        value_target[i] = y_obs[i] * ind[i];
      }
      pat.value = MakeEstimator(options_);
      HYPER_RETURN_NOT_OK(pat.value->Fit(train_x, value_target));
    }
    train_seconds += train_timer.ElapsedSeconds();
    auto [ins, _] = patterns.emplace(key, std::move(pat));
    return &ins->second;
  };

  const std::vector<std::vector<size_t>> block_rows =
      BuildBlockRows(q, *db_, graph_, options_.use_blocks, n);
  result.num_blocks = block_rows.size();

  // Main evaluation loop.
  prob::BlockAccumulator acc(q.output_agg);
  ExprPtr literal_true = sql::MakeLiteral(Value::Bool(true));

  LoopCheck gov_loop(guard.get());
  for (const std::vector<size_t>& rows : block_rows) {
    acc.BeginBlock();
    for (size_t r : rows) {
      if (gov_loop.Due()) {
        HYPER_RETURN_NOT_OK(gov_loop.guard()->Check("whatif.run_rows"));
      }
      // Fold the For predicate against this tuple's deterministic values.
      Env fold_env;
      fold_env.Bind(vschema.relation_name(), &vschema, &view.row(r),
                    &post_rows[r]);
      ExprPtr residual;
      if (q.for_pred != nullptr) {
        HYPER_ASSIGN_OR_RETURN(residual,
                               FoldExpr(*q.for_pred, fold_env, random_cols));
      } else {
        residual = literal_true->Clone();
      }
      bool lit = false;
      if (IsBoolLiteral(*residual, &lit) && !lit) continue;  // disqualified

      const bool affected = in_s[r] || psi_changed[r];
      if (!affected) {
        // Unchanged tuple: post == pre, everything is exact.
        Env env;
        env.Bind(vschema.relation_name(), &vschema, &view.row(r),
                 &view.row(r));
        HYPER_ASSIGN_OR_RETURN(bool qualifies, EvalPredicate(*residual, env));
        if (!qualifies) continue;
        double value = 0.0;
        if (q.output_value != nullptr) {
          HYPER_ASSIGN_OR_RETURN(Value v, EvalExpr(*q.output_value, env));
          HYPER_ASSIGN_OR_RETURN(value, v.AsDouble());
        }
        acc.Add(1.0, value);
        continue;
      }

      // Affected tuple: estimate via the backdoor-adjusted estimator at the
      // post-update feature point.
      HYPER_ASSIGN_OR_RETURN(PatternEstimators * pat,
                             get_pattern(residual, residual->ToString()));
      std::vector<double> x;
      x.reserve(feature_cols.size() + psi_specs.size());
      for (size_t j = 0; j < q.updates.size(); ++j) {
        HYPER_ASSIGN_OR_RETURN(
            double f, encoder.EncodeValue(j, post_rows[r][update_cols[j]]));
        x.push_back(snap_feature(j, f));
      }
      for (size_t j = q.updates.size(); j < feature_cols.size(); ++j) {
        HYPER_ASSIGN_OR_RETURN(
            double f,
            encoder.EncodeValue(
                j, view.At(r, vschema.IndexOf(feature_cols[j]).value())));
        x.push_back(snap_feature(j, f));
      }
      for (size_t p = 0; p < psi_specs.size(); ++p) {
        x.push_back(psi_post[p][r]);
      }

      const double weight =
          pat->literal ? (pat->literal_value ? 1.0 : 0.0)
                       : Clamp01(pat->weight->Predict(x));
      if (weight <= 0.0) continue;
      double weighted_value = 0.0;
      if (pat->value != nullptr) {
        weighted_value = pat->value->Predict(x);
      }
      acc.Add(weight, weighted_value);
    }
    acc.EndBlock();
  }

  result.num_patterns = patterns.size();
  result.train_seconds = train_seconds;
  HYPER_ASSIGN_OR_RETURN(result.value, acc.Finish());
  result.total_seconds = total_timer.ElapsedSeconds();
  return result;
}

// ---------------------------------------------------------------------------
// Prepared plans, staged: the intervention-independent four-fifths of a
// columnar run split into four independently keyed, independently cacheable
// stages — Scope (view + columnar image), Causal (backdoor plan + blocks),
// Learn (encoders + training matrix + the trained pattern-estimator cache),
// Query (compiled hole plan + per-row constants). A PreparedWhatIf is just
// the composition of four stage handles; Evaluate() is the cheap
// per-intervention fifth. Every stage is a pure function of its key, so a
// plan assembled from cached stages is bit-identical to one built fresh.
// ---------------------------------------------------------------------------

namespace {

/// Typed numeric read with Value::AsDouble error semantics.
Result<double> ReadColumnDouble(const ColumnTable& cview, const Column& col,
                                size_t r) {
  if (col.is_null(r)) {
    return Status::InvalidArgument("cannot coerce NULL to a number");
  }
  switch (col.kind) {
    case ColumnKind::kInt64: return static_cast<double>(col.i64[r]);
    case ColumnKind::kDouble: return col.f64[r];
    case ColumnKind::kBool: return col.b8[r] != 0 ? 1.0 : 0.0;
    case ColumnKind::kCode:
      return Status::InvalidArgument("cannot coerce string '" +
                                     cview.dict().at(col.codes[r]) +
                                     "' to a number");
  }
  return Status::Internal("unhandled column kind");
}

}  // namespace

/// ScopeStage: the materialized relevant view and its columnar image. For a
/// scenario branch this is the only stage that must re-materialize data —
/// and when the base world's ScopeStage is cached, it is built by patching
/// the base image in place from the branch's sparse override cells
/// (ColumnTable::ApplyOverrides) instead of re-encoding the whole table.
struct ScopeStageData {
  std::shared_ptr<const ViewInfo> view_info;
  ColumnTable cview;
  /// Compile scope for expressions over the view (points into view_info's
  /// schema, which this stage keeps alive).
  std::vector<relational::ScopedTuple> scope;
};

/// CausalStage: everything derived from the causal graph + query shape
/// without reading a single cell value — the backdoor plan and the
/// block-independent decomposition.
struct CausalStageData {
  WhatIfPlan plan;
  std::vector<std::vector<size_t>> block_rows;
  /// True when block b is exactly {b} — every tuple its own block, in row
  /// order (the common single-table shape). The evaluate loop then takes a
  /// flat row-order pass instead of per-block accumulators: since g is Sum
  /// and partials merge in block order, the fold is bit-identical.
  bool identity_blocks = false;
};

/// LearnStage: fitted encoders, the (binned) training matrix, psi prep, and
/// the lazily-grown cache of trained pattern estimators. Keyed by the delta
/// fingerprint restricted to the attributes training reads, so branches
/// whose deltas miss that set share one LearnStage — estimators included.
struct LearnStageData {
  /// The scope this stage was built against. May differ from the scope a
  /// sharing plan evaluates over (a branch delta on a non-training
  /// attribute); training only reads attributes both scopes agree on.
  std::shared_ptr<const ScopeStageData> built_on;
  WhatIfOptions options;  // estimator-relevant engine options at build time
  bool has_output = false;

  /// Intervention-independent psi (cross-tuple feature) state: link groups,
  /// pre-update sums and the per-row pre group means.
  struct PsiPrep {
    std::vector<double> pre_b;
    std::vector<uint32_t> gid;
    std::vector<double> sum_pre;
    std::vector<size_t> counts;
    std::vector<double> psi_pre;  // per row
  };
  std::vector<PsiPrep> psi;

  std::optional<learn::FeatureEncoder> encoder;
  std::vector<std::optional<learn::QuantileDiscretizer>> feature_disc;
  std::vector<std::vector<double>> feat;  // encoded + snapped, per feature
  /// Rows grouped by the byte pattern of their non-update feature columns
  /// (same byte-equality the per-row dedup uses, so group == distinct
  /// post-update feature point whenever the update features and psi are
  /// row-constant). Lets a Set-update evaluation map affected rows to batch
  /// slots with one array read instead of hashing the point per row.
  /// Computed only under vectorized_exec; empty otherwise.
  std::vector<uint32_t> residual_gid;
  uint32_t residual_groups = 0;
  std::vector<size_t> train_rows;
  learn::FeatureMatrix train_x;
  /// Quantile-binned image of train_x for histogram forest training,
  /// computed once per stage and shared across every pattern estimator and
  /// every tree (absent for other estimator configs).
  std::optional<learn::BinnedMatrix> train_binned;
  std::vector<double> y_obs;

  double SnapFeature(size_t j, double v) const {
    return feature_disc[j].has_value()
               ? feature_disc[j]->Representative(feature_disc[j]->BucketOf(v))
               : v;
  }

  /// The pattern-estimator cache, guarded by mu. Pattern estimators depend
  /// only on the residual pattern and this stage's training matrix, so one
  /// trained estimator serves every plan sharing the stage — an
  /// intervention sweep, every When-variant of a query, and every branch
  /// whose delta misses the training attributes.
  mutable Mutex mu;
  mutable std::unordered_map<std::string, PatternEstimators> patterns
      GUARDED_BY(mu);

  /// Trains (or fetches) the pattern estimators for one residual pattern.
  /// `exact` is the caller's compiled residual (bound to the caller's own
  /// cview — identical indicator values on every scope sharing this stage,
  /// by the stage key's restricted-fingerprint contract). `was_cached`
  /// reports whether training was skipped; `train_seconds` accrues the cost
  /// actually incurred by this call. Thread-safe; a pattern is trained by
  /// exactly the first caller that needs it.
  Result<const PatternEstimators*> EnsurePattern(
      const std::string& key, bool is_literal, bool literal_value,
      const relational::ColumnBoundExpr* exact, bool* was_cached,
      double* train_seconds, const governance::ExecGuard* guard) const
      EXCLUDES(mu) {
    MutexLock lock(&mu);
    auto it = patterns.find(key);
    if (it != patterns.end()) {
      *was_cached = true;
      return &it->second;
    }
    *was_cached = false;
    // A governed abort below unwinds before the emplace, so the pattern
    // cache never holds a partially trained estimator.
    if (guard != nullptr) {
      HYPER_RETURN_NOT_OK(
          guard->ChargeRows(train_rows.size(), "whatif.train"));
    }
    Stopwatch train_timer;
    PatternEstimators pat;
    pat.literal = is_literal;
    pat.literal_value = literal_value;

    const learn::BinnedMatrix* binned =
        train_binned.has_value() ? &*train_binned : nullptr;
    std::vector<double> ind(train_rows.size(), 1.0);
    governance::LoopCheck gov_loop(guard);
    if (!is_literal) {
      // Indicator of the residual pattern over the sampled rows. The mask
      // kernel evaluates all rows branch-free and the gather keeps exactly
      // the sampled ones; on ineligible trees the per-row loop (which can
      // also surface evaluation errors) runs instead.
      std::vector<uint8_t> ind_mask;
      if (options.vectorized_exec && exact->TryMaskKernel(&ind_mask)) {
        for (size_t i = 0; i < train_rows.size(); ++i) {
          ind[i] = ind_mask[train_rows[i]] != 0 ? 1.0 : 0.0;
        }
      } else {
        for (size_t i = 0; i < train_rows.size(); ++i) {
          if (gov_loop.Due()) {
            HYPER_RETURN_NOT_OK(guard->Check("whatif.train"));
          }
          HYPER_ASSIGN_OR_RETURN(bool b, exact->EvalBool(train_rows[i]));
          ind[i] = b ? 1.0 : 0.0;
        }
      }
      pat.weight = MakeEstimator(options);
      HYPER_RETURN_NOT_OK(
          FitPatternEstimator(pat.weight.get(), options, train_x, binned, ind));
    }
    if (has_output && !(is_literal && !literal_value)) {
      if (guard != nullptr) {
        HYPER_RETURN_NOT_OK(guard->Check("whatif.train"));
      }
      std::vector<double> value_target(train_rows.size());
      for (size_t i = 0; i < train_rows.size(); ++i) {
        value_target[i] = y_obs[i] * ind[i];
      }
      pat.value = MakeEstimator(options);
      HYPER_RETURN_NOT_OK(FitPatternEstimator(pat.value.get(), options,
                                              train_x, binned, value_target));
    }
    *train_seconds += train_timer.ElapsedSeconds();
    auto [ins, inserted] = patterns.emplace(key, std::move(pat));
    (void)inserted;
    return &ins->second;
  }
};

/// QueryStage: the per-query leaves — compiled statement ASTs, the When
/// mask, per-row output constants and the compiled residual (hole) plan,
/// plus the lazily-grown residual-entry cache. Bound to one ScopeStage; the
/// cheapest stage to rebuild, and the only one an intervention sweep or a
/// When-variant pays for.
struct QueryStageData {
  std::shared_ptr<const ScopeStageData> built_on;
  CompiledWhatIf q;
  /// 0/1 When mask (same byte layout EvalPredicateMask produces, so it feeds
  /// PostImage::set_active and the SIMD mask kernels without conversion).
  std::vector<uint8_t> in_s;
  size_t updated = 0;
  /// Snapshot of WhatIfOptions::vectorized_exec at build time; lazily-built
  /// residual entries follow it so one stage never mixes paths.
  bool vectorized = true;

  std::optional<relational::ColumnBoundExpr> out_eval;
  /// Per-row observed output values (pre image), precomputed once per
  /// stage. Rows whose output expression errors carry out_err = 1; the
  /// error is reproduced by re-evaluating only if such a row is actually
  /// consulted — identical behavior to per-row evaluation.
  std::vector<double> out_all;
  std::vector<uint8_t> out_err;

  /// Hole plan: compiled maximal determined subtrees of the For predicate.
  /// Binding against a concrete post image happens per evaluation.
  std::vector<const Expr*> hole_exprs;  // point into q.for_pred (owned here)
  std::unordered_map<const Expr*, size_t> hole_of;
  std::vector<relational::CompiledExpr> hole_compiled;
  /// True when every hole is row-invariant (no column references — e.g.
  /// constant thresholds): all rows then share one residual entry per
  /// intervention, the per-row hole evaluation disappears, and entries
  /// cache their exact qualification mask across evaluations.
  bool holes_row_invariant = false;

  /// One folded residual per distinct hole-value vector. Entries are
  /// append-only and individually immutable once published, so evaluations
  /// snapshot raw pointers and read them lock-free afterwards. (Trained
  /// pattern estimators live on the LearnStage — a QueryStage can be shared
  /// by plans with different estimator configs.)
  struct Entry {
    bool is_literal = false;
    bool literal_value = false;
    std::string key;
    ExprPtr residual;
    std::optional<relational::ColumnBoundExpr> exact;  // absent for literals
    /// Pre-image qualification per row (0/1, 2 = evaluation error), built
    /// once per entry when holes are row-invariant (then one entry serves
    /// every row, so the mask is O(n) per stage, amortized across every
    /// evaluation of the sweep). Empty otherwise — Pass B evaluates per row.
    std::vector<uint8_t> exact_vals;
  };

  // The residual-entry cache, guarded by mu (never held together with a
  // LearnStage's pattern lock).
  mutable Mutex mu;
  mutable std::vector<std::unique_ptr<Entry>> entries GUARDED_BY(mu);
  mutable std::unordered_map<std::vector<Value>, uint32_t, ValueVectorHash,
                             ValueVectorEq>
      entry_cache GUARDED_BY(mu);

  /// Resolves (or creates) the entry for one hole-value vector. Caller holds
  /// `mu`. An empty For predicate resolves to the literal-true entry via the
  /// empty hole vector.
  Result<uint32_t> ResolveEntryLocked(const std::vector<Value>& holes) const
      REQUIRES(mu) {
    auto it = entry_cache.find(holes);
    if (it != entry_cache.end()) return it->second;
    ExprPtr residual = q.for_pred == nullptr
                           ? sql::MakeLiteral(Value::Bool(true))
                           : FoldFromHoles(*q.for_pred, hole_of, holes);
    auto e = std::make_unique<Entry>();
    bool lit = false;
    e->is_literal = IsBoolLiteral(*residual, &lit);
    e->literal_value = lit;
    e->key = residual->ToString();
    if (!e->is_literal) {
      HYPER_ASSIGN_OR_RETURN(
          relational::CompiledExpr ce,
          relational::CompiledExpr::Compile(*residual, built_on->scope));
      HYPER_ASSIGN_OR_RETURN(
          relational::ColumnBoundExpr be,
          relational::ColumnBoundExpr::Bind(ce, built_on->cview));
      e->exact = std::move(be);
      if (holes_row_invariant) {
        // One entry serves every row: cache the pre-image qualification so
        // repeated evaluations of this plan skip the per-row re-evaluation.
        // The mask kernel only fires on trees it can prove error-free, so
        // its 0/1 output is exactly the scalar tri-state without any 2s.
        const size_t n = built_on->cview.num_rows();
        if (vectorized && e->exact->TryMaskKernel(&e->exact_vals)) {
          // done: exact_vals[r] == (EvalBool(r) ? 1 : 0) for every row.
        } else {
          e->exact_vals.resize(n);
          for (size_t r = 0; r < n; ++r) {
            auto qr = e->exact->EvalBool(r);
            e->exact_vals[r] = qr.ok() ? (*qr ? 1 : 0) : 2;
          }
        }
      }
    }
    e->residual = std::move(residual);
    entries.push_back(std::move(e));
    const auto id = static_cast<uint32_t>(entries.size() - 1);
    entry_cache.emplace(holes, id);
    return id;
  }
};

struct PreparedWhatIf::Impl {
  std::shared_ptr<const ScopeStageData> scope;
  std::shared_ptr<const CausalStageData> causal;
  std::shared_ptr<const LearnStageData> learn;
  std::shared_ptr<const QueryStageData> query;
};

// ---------------------------------------------------------------------------
// Stage builders + keys. Each builder is a pure function of its key's
// inputs; Prepare assembles a plan by running the four builders in
// dependency order, consulting the StageContext's stage cache when staged
// prepare is on. Keys use the same injective length-prefixed field encoding
// as the plan-cache key.
// ---------------------------------------------------------------------------

namespace {

std::string KeyField(const char* tag, const std::string& text) {
  return StrFormat("|%s[%zu]=", tag, text.size()) + text;
}

/// The view is a function of (data, Use clause, update relation) — NOT of
/// which update attribute selected that relation — so the key uses the
/// relation: every per-attribute plan of a how-to run (and the baseline)
/// shares one ScopeStage.
std::string ScopeStageKey(const std::string& data_scope,
                          const sql::UseClause& use,
                          const std::string& update_relation) {
  std::string key = "scope";
  key += KeyField("d", data_scope);
  key += KeyField("use", use.ToString());
  key += KeyField("rel", update_relation);
  return key;
}

std::string QueryShapeKey(const sql::WhatIfStmt& stmt) {
  std::string key;
  for (const sql::UpdateClause& u : stmt.updates) {
    key += KeyField("upd", u.attribute);
  }
  key += KeyField("out", stmt.output.ToString());
  key += KeyField("for",
                  stmt.for_pred != nullptr ? stmt.for_pred->ToString() : "");
  return key;
}

/// Builds the ScopeStage: relevant view + columnar image. When the context
/// carries override cells and the base world's ScopeStage is cached, the
/// image is the base image patched in place (ApplyOverrides) — bit-identical
/// to re-encoding, at O(copy + cells) instead of O(cells scanned * typed
/// dispatch). Falls back to a full build whenever patching is not possible
/// (select views, a missing base stage, a kind-changing override).
Result<std::shared_ptr<const ScopeStageData>> BuildScopeStage(
    const Database& db, const sql::UseClause& use,
    const std::string& update_attr0, const StageContext* ctx,
    const ExecGuard* guard) {
  HYPER_ASSIGN_OR_RETURN(ViewInfo info,
                         BuildRelevantView(db, use, update_attr0));
  const std::string& update_relation = info.update_relation;
  auto stage = std::make_shared<ScopeStageData>();
  stage->view_info = std::make_shared<const ViewInfo>(std::move(info));
  const ViewInfo& vi = *stage->view_info;
  if (guard != nullptr) {
    // Charge the view scan and (approximately) the columnar image before
    // materializing it, so an over-budget request aborts without paying the
    // allocation. Meters charge work actually done: a stage-cache hit skips
    // the builder and charges nothing.
    const size_t vrows = vi.view->num_rows();
    HYPER_RETURN_NOT_OK(guard->ChargeRows(vrows, "whatif.prepare.scope"));
    HYPER_RETURN_NOT_OK(guard->ChargeBytes(
        vrows * vi.view->schema().num_attributes() * sizeof(double),
        "whatif.prepare.scope"));
  }

  bool patched = false;
  if (use.is_table() && ctx != nullptr && ctx->stages != nullptr &&
      !ctx->base_scope.empty() && ctx->overrides != nullptr &&
      ctx->base_scope != ctx->data_scope) {
    // The table view is the relation image itself (row == tid, same
    // attribute order), so branch overrides in base-table coordinates patch
    // the base image directly.
    auto base_ptr = ctx->stages->Peek(
        StageKind::kScope,
        ScopeStageKey(ctx->base_scope, use, update_relation));
    if (base_ptr != nullptr) {
      auto base = std::static_pointer_cast<const ScopeStageData>(base_ptr);
      if (base->cview.num_rows() == vi.view->num_rows() &&
          base->cview.num_columns() == vi.view->schema().num_attributes()) {
        ColumnTable image = base->cview;  // typed vector copy, shared dict
        auto it = ctx->overrides->find(vi.update_relation);
        Status applied = it != ctx->overrides->end()
                             ? image.ApplyOverrides(it->second)
                             : Status::OK();
        if (applied.ok()) {
          stage->cview = std::move(image);
          patched = true;
        }
        // A kind-changing override: fall through to the full rebuild, which
        // re-infers column kinds from the patched values.
      }
    }
  }
  if (!patched) {
    // Columnar image of the view. Shapes the substrate cannot represent (a
    // column mixing strings with numbers) surface as Unimplemented so Run
    // and the scenario service fall back to the row interpreter.
    auto cview_result = ColumnTable::FromTable(*vi.view);
    if (!cview_result.ok()) {
      return Status::Unimplemented("columnar image unavailable: " +
                                   cview_result.status().message());
    }
    stage->cview = std::move(cview_result).value();
  }
  const Schema& vschema = vi.view->schema();
  stage->scope = {relational::ScopedTuple{vschema.relation_name(), &vschema}};
  return std::shared_ptr<const ScopeStageData>(std::move(stage));
}

Result<std::shared_ptr<const CausalStageData>> BuildCausalStage(
    const ScopeStageData& scope, const CompiledWhatIf& q, const Database& db,
    const causal::CausalGraph* graph, const WhatIfOptions& options,
    const ExecGuard* guard) {
  auto stage = std::make_shared<CausalStageData>();
  HYPER_ASSIGN_OR_RETURN(stage->plan,
                         BuildWhatIfPlan(q, graph, options.backdoor));
  if (guard != nullptr) {
    // The block decomposition walks every view row.
    HYPER_RETURN_NOT_OK(guard->ChargeRows(scope.cview.num_rows(),
                                          "whatif.prepare.causal"));
  }
  stage->block_rows = BuildBlockRows(q, db, graph, options.use_blocks,
                                     scope.cview.num_rows());
  stage->identity_blocks =
      stage->block_rows.size() == scope.cview.num_rows();
  for (size_t b = 0; stage->identity_blocks && b < stage->block_rows.size();
       ++b) {
    stage->identity_blocks =
        stage->block_rows[b].size() == 1 && stage->block_rows[b][0] == b;
  }
  return std::shared_ptr<const CausalStageData>(std::move(stage));
}

/// The view columns whose cell values the LearnStage reads: features
/// (update attributes + adjustment set + For conditioning), psi link
/// columns, and every column the For/Output expressions reference (residual
/// indicators and training targets evaluate them on the pre image). A
/// branch delta confined to other attributes cannot change anything this
/// stage computes.
std::vector<std::string> LearnDependencyColumns(const CompiledWhatIf& q,
                                                const WhatIfPlan& plan) {
  std::set<std::string> cols(plan.feature_cols.begin(),
                             plan.feature_cols.end());
  const Schema& vschema = q.view_info->view->schema();
  for (const WhatIfPlan::PsiSpec& spec : plan.psi_specs) {
    cols.insert(vschema.attribute(spec.link_col).name);
  }
  std::vector<std::string> refs;
  if (q.for_pred != nullptr) sql::CollectColumnRefs(*q.for_pred, &refs);
  if (q.output_value != nullptr) {
    sql::CollectColumnRefs(*q.output_value, &refs);
  }
  for (const std::string& c : refs) cols.insert(c);
  return std::vector<std::string>(cols.begin(), cols.end());
}

Result<std::shared_ptr<const LearnStageData>> BuildLearnStage(
    std::shared_ptr<const ScopeStageData> scope_stage,
    const CausalStageData& causal, const CompiledWhatIf& q,
    const WhatIfOptions& options, const ExecGuard* guard) {
  auto stage = std::make_shared<LearnStageData>();
  stage->built_on = scope_stage;
  stage->options = options;
  stage->has_output = q.output_value != nullptr;
  const ScopeStageData& scope = *scope_stage;
  const ColumnTable& cview = scope.cview;
  const Schema& vschema = q.view_info->view->schema();
  const size_t n = cview.num_rows();
  const WhatIfPlan& plan = causal.plan;
  const std::vector<WhatIfPlan::PsiSpec>& psi_specs = plan.psi_specs;
  if (guard != nullptr) {
    HYPER_RETURN_NOT_OK(guard->ChargeRows(n, "whatif.prepare.learn"));
  }

  // psi prep: link groups and pre-update sums, accumulated in row order
  // (bit-identical to the row path).
  stage->psi.resize(psi_specs.size());
  for (size_t p = 0; p < psi_specs.size(); ++p) {
    const WhatIfPlan::PsiSpec& spec = psi_specs[p];
    const Column& bc = cview.col(plan.update_cols[spec.update_index]);
    LearnStageData::PsiPrep& prep = stage->psi[p];
    prep.pre_b.resize(n);
    if (options.vectorized_exec && !bc.has_nulls() &&
        bc.kind != ColumnKind::kCode) {
      // Bulk typed widening — value-for-value what ReadColumnDouble returns
      // on a null-free numeric column.
      switch (bc.kind) {
        case ColumnKind::kInt64:
          simd::I64ToF64(bc.i64.data(), n, prep.pre_b.data());
          break;
        case ColumnKind::kDouble:
          std::copy(bc.f64.begin(), bc.f64.end(), prep.pre_b.begin());
          break;
        case ColumnKind::kBool:
          simd::U8ToF64(bc.b8.data(), n, prep.pre_b.data());
          break;
        case ColumnKind::kCode:
          break;  // excluded above
      }
    } else {
      for (size_t r = 0; r < n; ++r) {
        HYPER_ASSIGN_OR_RETURN(prep.pre_b[r], ReadColumnDouble(cview, bc, r));
      }
    }
    uint32_t num_groups = 0;
    HYPER_ASSIGN_OR_RETURN(prep.gid,
                           GroupIdsForColumn(cview, spec.link_col, &num_groups));
    prep.sum_pre.assign(num_groups, 0.0);
    prep.counts.assign(num_groups, 0);
    for (size_t r = 0; r < n; ++r) {
      prep.sum_pre[prep.gid[r]] += prep.pre_b[r];
      ++prep.counts[prep.gid[r]];
    }
    prep.psi_pre.resize(n);
    for (size_t r = 0; r < n; ++r) {
      const uint32_t g = prep.gid[r];
      prep.psi_pre[r] =
          prep.sum_pre[g] / static_cast<double>(prep.counts[g]);
    }
  }

  // Feature layout from the shared plan: update attributes, then backdoor
  // columns, then For conditioning columns, then psi.
  const std::vector<std::string>& feature_cols = plan.feature_cols;
  const size_t num_features = feature_cols.size();
  HYPER_ASSIGN_OR_RETURN(learn::FeatureEncoder encoder,
                         learn::FeatureEncoder::Fit(cview, feature_cols));
  stage->encoder = std::move(encoder);

  // Quantile grids for the frequency estimator's continuous features.
  stage->feature_disc.resize(num_features);
  if (options.estimator == learn::EstimatorKind::kFrequency) {
    for (size_t j = 0; j < num_features; ++j) {
      const size_t col = vschema.IndexOf(feature_cols[j]).value();
      if (vschema.attribute(col).type != ValueType::kDouble) continue;
      const Column& c = cview.col(col);
      if (c.kind == ColumnKind::kCode) continue;
      std::vector<double> values;
      values.reserve(n);
      for (size_t r = 0; r < n; ++r) {
        if (c.is_null(r)) continue;
        auto v = ReadColumnDouble(cview, c, r);
        if (v.ok()) values.push_back(*v);
      }
      auto disc = learn::QuantileDiscretizer::FitToData(std::move(values), 16);
      if (disc.ok()) stage->feature_disc[j] = *disc;
    }
  }

  // Encoded (and snapped) feature columns for every row, in one typed pass
  // per feature.
  stage->feat.resize(num_features);
  for (size_t j = 0; j < num_features; ++j) {
    if (guard != nullptr) {
      HYPER_RETURN_NOT_OK(
          guard->ChargeBytes(n * sizeof(double), "whatif.prepare.learn"));
    }
    HYPER_ASSIGN_OR_RETURN(stage->feat[j],
                           stage->encoder->EncodeColumn(cview, j));
    if (stage->feature_disc[j].has_value()) {
      for (size_t r = 0; r < n; ++r) {
        stage->feat[j][r] = stage->SnapFeature(j, stage->feat[j][r]);
      }
    }
  }

  // Residual dedup grouping: rows keyed by the bytes of their non-update
  // feature columns (update features come first in the plan layout). A
  // Set-update evaluation with no psi features then resolves each affected
  // row's batch slot from its group id instead of hashing the full feature
  // point per row; byte equality here is exactly the memcmp the per-row
  // dedup applies, so the slot assignment is identical.
  if (options.vectorized_exec) {
    const size_t first = q.updates.size();
    stage->residual_gid.resize(n);
    std::unordered_map<uint64_t, std::vector<uint32_t>> gid_of_hash;
    std::vector<uint32_t> group_rep;  // first row of each group
    for (size_t r = 0; r < n; ++r) {
      Fnv1a hasher;
      for (size_t j = first; j < num_features; ++j) {
        uint64_t bits;
        std::memcpy(&bits, &stage->feat[j][r], sizeof(bits));
        hasher.Mix(bits);
      }
      std::vector<uint32_t>& candidates = gid_of_hash[hasher.hash()];
      uint32_t gid = UINT32_MAX;
      for (uint32_t g : candidates) {
        const size_t rep = group_rep[g];
        bool same = true;
        for (size_t j = first; same && j < num_features; ++j) {
          same = std::memcmp(&stage->feat[j][r], &stage->feat[j][rep],
                             sizeof(double)) == 0;
        }
        if (same) {
          gid = g;
          break;
        }
      }
      if (gid == UINT32_MAX) {
        gid = static_cast<uint32_t>(group_rep.size());
        group_rep.push_back(static_cast<uint32_t>(r));
        candidates.push_back(gid);
      }
      stage->residual_gid[r] = gid;
    }
    stage->residual_groups = static_cast<uint32_t>(group_rep.size());
  }

  // Training rows (HypeR-sampled caps them).
  if (options.sample_size > 0 && options.sample_size < n) {
    Rng rng(options.seed);
    stage->train_rows = rng.SampleWithoutReplacement(n, options.sample_size);
  } else {
    stage->train_rows.resize(n);
    for (size_t r = 0; r < n; ++r) stage->train_rows[r] = r;
  }

  // Training features: pure double copies out of the encoded columns, into
  // one flat row-major allocation.
  if (guard != nullptr) {
    HYPER_RETURN_NOT_OK(guard->ChargeBytes(
        stage->train_rows.size() * (num_features + psi_specs.size()) *
            sizeof(double),
        "whatif.prepare.learn"));
  }
  stage->train_x = learn::FeatureMatrix(stage->train_rows.size(),
                                        num_features + psi_specs.size());
  for (size_t i = 0; i < stage->train_rows.size(); ++i) {
    const size_t r = stage->train_rows[i];
    double* row = stage->train_x.mutable_row(i);
    for (size_t j = 0; j < num_features; ++j) row[j] = stage->feat[j][r];
    for (size_t p = 0; p < psi_specs.size(); ++p) {
      row[num_features + p] = stage->psi[p].psi_pre[r];
    }
  }

  // Quantile-bin the training matrix once for histogram forest training;
  // every pattern estimator and every tree shares these codes. (Binning is
  // deterministic in the matrix alone, so plans trained from a shared
  // binned image are bit-identical to independently trained ones.)
  if (options.estimator == learn::EstimatorKind::kForest &&
      options.forest.tree.use_histograms) {
    HYPER_ASSIGN_OR_RETURN(
        learn::BinnedMatrix binned,
        learn::BinnedMatrix::Build(stage->train_x,
                                   options.forest.tree.max_bins));
    stage->train_binned = std::move(binned);
  }

  // Training targets for the value estimators: the output expression
  // evaluated observationally over the training rows (Post reads the pre
  // image). A training row must evaluate cleanly — errors fail the build,
  // exactly as they failed the monolithic Prepare.
  if (q.output_value != nullptr) {
    HYPER_ASSIGN_OR_RETURN(
        relational::CompiledExpr ce,
        relational::CompiledExpr::Compile(*q.output_value, scope.scope));
    HYPER_ASSIGN_OR_RETURN(relational::ColumnBoundExpr be,
                           relational::ColumnBoundExpr::Bind(ce, cview));
    stage->y_obs.resize(stage->train_rows.size());
    // Vectorized path: evaluate the full column once, then gather the
    // sampled rows. If any sampled row errored (division by zero is the only
    // error an eligible tree can raise), fall back to the per-row loop so
    // the build fails with exactly the scalar path's error and ordering.
    bool done = false;
    if (options.vectorized_exec) {
      std::vector<double> all;
      std::vector<uint8_t> err;
      if (be.TryEvalDoubleKernel(&all, &err)) {
        bool any_err = false;
        for (size_t r : stage->train_rows) any_err |= err[r] != 0;
        if (!any_err) {
          for (size_t i = 0; i < stage->train_rows.size(); ++i) {
            stage->y_obs[i] = all[stage->train_rows[i]];
          }
          done = true;
        }
      }
    }
    if (!done) {
      LoopCheck gov_loop(guard);
      for (size_t i = 0; i < stage->train_rows.size(); ++i) {
        if (gov_loop.Due()) {
          HYPER_RETURN_NOT_OK(guard->Check("whatif.prepare.learn"));
        }
        HYPER_ASSIGN_OR_RETURN(relational::Scalar v,
                               be.Eval(stage->train_rows[i]));
        HYPER_ASSIGN_OR_RETURN(stage->y_obs[i], v.AsDouble());
      }
    }
  }
  return std::shared_ptr<const LearnStageData>(std::move(stage));
}

Result<std::shared_ptr<const QueryStageData>> BuildQueryStage(
    std::shared_ptr<const ScopeStageData> scope_stage, CompiledWhatIf q,
    const CausalStageData& causal, const ExecGuard* guard, bool vectorized) {
  auto stage = std::make_shared<QueryStageData>();
  stage->built_on = scope_stage;
  stage->q = std::move(q);
  stage->vectorized = vectorized;
  const ColumnTable& cview = scope_stage->cview;
  const size_t n = cview.num_rows();
  if (guard != nullptr) {
    HYPER_RETURN_NOT_OK(guard->ChargeRows(n, "whatif.prepare.query"));
  }

  // S membership from the When predicate, via the vectorized mask kernel.
  // The mask is kept in its 0/1-byte form: it feeds PostImage::set_active
  // and the branch-free per-row loops directly.
  HYPER_ASSIGN_OR_RETURN(
      stage->in_s, relational::EvalPredicateMask(stage->q.when.get(), cview));
  stage->updated = simd::MaskCount(stage->in_s.data(), n);

  // Observed output values (Sum/Avg only), via the compiled output
  // expression evaluated observationally (Post reads the pre image).
  if (stage->q.output_value != nullptr) {
    HYPER_ASSIGN_OR_RETURN(
        relational::CompiledExpr ce,
        relational::CompiledExpr::Compile(*stage->q.output_value,
                                          scope_stage->scope));
    HYPER_ASSIGN_OR_RETURN(relational::ColumnBoundExpr be,
                           relational::ColumnBoundExpr::Bind(ce, cview));
    stage->out_eval = std::move(be);
    // All-row output values, evaluated once: the Evaluate hot loop reads
    // them directly. Errors do not fail the build — they are recorded and
    // reproduced only if Evaluate actually consults that row. The numeric
    // kernel only fires on trees whose sole reachable error is division by
    // zero, and it reports exactly those rows in out_err, so both paths
    // produce identical (out_all, out_err) pairs.
    if (!vectorized ||
        !stage->out_eval->TryEvalDoubleKernel(&stage->out_all,
                                              &stage->out_err)) {
      stage->out_all.assign(n, 0.0);
      stage->out_err.assign(n, 0);
      LoopCheck gov_loop(guard);
      for (size_t r = 0; r < n; ++r) {
        if (gov_loop.Due()) {
          HYPER_RETURN_NOT_OK(guard->Check("whatif.prepare.query"));
        }
        auto vr = stage->out_eval->Eval(r);
        if (vr.ok()) {
          auto dr = vr->AsDouble();
          if (dr.ok()) {
            stage->out_all[r] = *dr;
            continue;
          }
        }
        stage->out_err[r] = 1;
      }
    }
  }

  // Hole plan for the For predicate: compile every maximal determined
  // subtree once. Binding against the intervention's post image happens per
  // evaluation (bindings are cheap; compilation is not).
  stage->holes_row_invariant = true;
  if (stage->q.for_pred != nullptr) {
    std::unordered_set<const Expr*> random_nodes;
    MarkRandom(*stage->q.for_pred, causal.plan.random_cols, &random_nodes);
    CollectHoles(*stage->q.for_pred, random_nodes, &stage->hole_exprs,
                 &stage->hole_of);
    stage->hole_compiled.reserve(stage->hole_exprs.size());
    for (const Expr* h : stage->hole_exprs) {
      HYPER_ASSIGN_OR_RETURN(
          relational::CompiledExpr ce,
          relational::CompiledExpr::Compile(*h, scope_stage->scope));
      stage->hole_compiled.push_back(std::move(ce));
      // A hole without column references (a constant threshold, an
      // arithmetic of literals) folds to the same value for every tuple.
      std::vector<std::string> refs;
      sql::CollectColumnRefs(*h, &refs);
      if (!refs.empty()) stage->holes_row_invariant = false;
    }
  }
  return std::shared_ptr<const QueryStageData>(std::move(stage));
}

/// GetOrBuild through the context's stage cache when staged prepare is
/// active, a plain build otherwise. `built` accrues per-call factory runs.
template <typename T, typename Factory>
Result<std::shared_ptr<const T>> StagedOrFresh(const StageContext* ctx,
                                               bool staged, StageKind kind,
                                               const std::string& key,
                                               const Factory& factory) {
  if (!staged) return factory();
  HYPER_ASSIGN_OR_RETURN(
      StageProvider::StagePtr ptr,
      ctx->stages->GetOrBuild(
          kind, key,
          [&]() -> Result<StageProvider::StagePtr> {
            HYPER_ASSIGN_OR_RETURN(std::shared_ptr<const T> stage, factory());
            return std::static_pointer_cast<const void>(stage);
          },
          nullptr));
  return std::static_pointer_cast<const T>(ptr);
}

}  // namespace

PreparedWhatIf::PreparedWhatIf() : impl_(std::make_unique<Impl>()) {}
PreparedWhatIf::~PreparedWhatIf() = default;

Result<std::shared_ptr<const PreparedWhatIf>> WhatIfEngine::Prepare(
    const sql::WhatIfStmt& stmt, const StageContext* ctx) const {
  if (!options_.use_columnar) {
    return Status::Unimplemented(
        "Prepare requires the columnar path (use_columnar = true)");
  }
  if (stmt.updates.empty()) {
    return Status::InvalidArgument("what-if query requires an Update clause");
  }
  Stopwatch prep_timer;
  const bool staged =
      ctx != nullptr && ctx->stages != nullptr && options_.staged_prepare;
  const std::string& update_attr0 = stmt.updates[0].attribute;
  HYPER_ASSIGN_OR_RETURN(std::string update_relation,
                         db_->RelationOfAttribute(update_attr0));
  if (stmt.use.is_table() && stmt.use.table != update_relation) {
    // Mirror BuildRelevantView's cross-relation check here: it is the one
    // attr0-specific validation a relation-keyed ScopeStage hit would skip.
    HYPER_ASSIGN_OR_RETURN(const Table* named, db_->GetTable(stmt.use.table));
    if (!named->schema().Contains(update_attr0)) {
      return Status::InvalidArgument(
          "Use relation '" + stmt.use.table + "' does not contain the update "
          "attribute '" + update_attr0 + "'");
    }
  }

  // One guard for the whole prepare (pre-armed by the caller when a single
  // deadline must span more than this call). Checked before every stage and
  // inside the builders' hot loops. An abort inside a stage factory returns
  // a typed error Result, which the stage cache propagates to every
  // coalesced waiter exactly once and never stores — so a governed abort
  // cannot leave a partial stage behind, and a retry rebuilds from scratch.
  const ExecGuardPtr guard = GuardFor(options_);

  // --- ScopeStage: relevant view + columnar image --------------------------
  if (guard != nullptr) {
    HYPER_RETURN_NOT_OK(guard->Check("whatif.prepare.scope"));
  }
  const std::string scope_key =
      staged ? ScopeStageKey(ctx->data_scope, stmt.use, update_relation)
             : std::string();
  HYPER_ASSIGN_OR_RETURN(
      std::shared_ptr<const ScopeStageData> scope_stage,
      (StagedOrFresh<ScopeStageData>(ctx, staged, StageKind::kScope, scope_key,
                                     [&] {
                                       return BuildScopeStage(
                                           *db_, stmt.use, update_attr0, ctx,
                                           guard.get());
                                     })));
  const size_t n = scope_stage->cview.num_rows();
  if (n == 0) {
    return Status::InvalidArgument("relevant view is empty");
  }

  // Statement compilation against the shared view is cheap (AST clones +
  // validation); it runs per Prepare so every stage below can consult the
  // compiled shape.
  HYPER_ASSIGN_OR_RETURN(CompiledWhatIf q,
                         CompileWhatIfAgainst(scope_stage->view_info, stmt));

  // --- CausalStage: backdoor plan + ground blocks --------------------------
  // Value-independent for table views without cross-tuple edges (overrides
  // never change the data shape), so its key then carries only the shape
  // scope and every branch of a generation shares one entry. Cross-tuple
  // edges or select views make blocks (or the view shape itself) depend on
  // cell values: fall back to the full data scope.
  bool any_cross_tuple = false;
  if (graph_ != nullptr) {
    for (const causal::CausalEdge& e : graph_->edges()) {
      if (e.is_cross_tuple()) {
        any_cross_tuple = true;
        break;
      }
    }
  }
  const bool shape_keyed = stmt.use.is_table() && !any_cross_tuple;
  std::string causal_key;
  if (staged) {
    const std::string& causal_scope =
        shape_keyed && !ctx->shape_scope.empty() ? ctx->shape_scope
                                                 : ctx->data_scope;
    causal_key = "causal";
    causal_key += KeyField("d", causal_scope);
    causal_key += KeyField("use", stmt.use.ToString());
    causal_key += KeyField("rel", update_relation);
    causal_key += QueryShapeKey(stmt);
    causal_key += StrFormat("|mode=%d|blocks=%d",
                            static_cast<int>(options_.backdoor),
                            options_.use_blocks ? 1 : 0);
  }
  if (guard != nullptr) {
    HYPER_RETURN_NOT_OK(guard->Check("whatif.prepare.causal"));
  }
  HYPER_ASSIGN_OR_RETURN(
      std::shared_ptr<const CausalStageData> causal_stage,
      (StagedOrFresh<CausalStageData>(
          ctx, staged, StageKind::kCausal, causal_key, [&] {
            return BuildCausalStage(*scope_stage, q, *db_, graph_, options_,
                                    guard.get());
          })));

  // --- LearnStage: encoders + training matrix + estimator cache -----------
  // Keyed by the delta fingerprint restricted to the attributes training
  // reads: a branch whose delta misses the adjustment set / features /
  // For-Output references reuses the parent's LearnStage (and its trained
  // estimators) outright.
  std::string learn_key;
  if (staged) {
    std::string learn_scope;
    if (stmt.use.is_table() && ctx->restricted != nullptr) {
      learn_scope = ctx->restricted(
          q.view_info->update_relation,
          LearnDependencyColumns(q, causal_stage->plan));
    } else {
      learn_scope = ctx->data_scope;
    }
    learn_key = "learn";
    learn_key += KeyField("c", causal_key);
    learn_key += KeyField("d", learn_scope);
    learn_key += EstimatorConfigKey(options_);
  }
  if (guard != nullptr) {
    HYPER_RETURN_NOT_OK(guard->Check("whatif.prepare.learn"));
  }
  HYPER_ASSIGN_OR_RETURN(
      std::shared_ptr<const LearnStageData> learn_stage,
      (StagedOrFresh<LearnStageData>(
          ctx, staged, StageKind::kLearn, learn_key, [&] {
            return BuildLearnStage(scope_stage, *causal_stage, q, options_,
                                   guard.get());
          })));

  // --- QueryStage: hole plan + per-row constants ---------------------------
  std::string query_key;
  if (staged) {
    query_key = "query";
    query_key += KeyField("c", causal_key);
    query_key += KeyField("d", ctx->data_scope);
    query_key += KeyField("when",
                          stmt.when != nullptr ? stmt.when->ToString() : "");
  }
  if (guard != nullptr) {
    HYPER_RETURN_NOT_OK(guard->Check("whatif.prepare.query"));
  }
  HYPER_ASSIGN_OR_RETURN(
      std::shared_ptr<const QueryStageData> query_stage,
      (StagedOrFresh<QueryStageData>(
          ctx, staged, StageKind::kQuery, query_key, [&] {
            return BuildQueryStage(scope_stage, std::move(q), *causal_stage,
                                   guard.get(), options_.vectorized_exec);
          })));

  // --- assembly ------------------------------------------------------------
  std::shared_ptr<PreparedWhatIf> prepared(new PreparedWhatIf());
  PreparedWhatIf::Impl& im = *prepared->impl_;
  im.scope = std::move(scope_stage);
  im.causal = std::move(causal_stage);
  im.learn = std::move(learn_stage);
  im.query = std::move(query_stage);

  for (const UpdateSpec& u : im.query->q.updates) {
    prepared->update_attributes_.push_back(u.attribute);
  }
  prepared->backdoor_ = im.causal->plan.backdoor_causal;
  prepared->view_rows_ = n;
  prepared->updated_rows_ = im.query->updated;
  prepared->prepare_seconds_ = prep_timer.ElapsedSeconds();
  return std::shared_ptr<const PreparedWhatIf>(std::move(prepared));
}

namespace {

/// The per-intervention fifth of a what-if run, against a prepared plan.
/// `block_threads` shards the block loop (1 inside batch fan-out to avoid
/// oversubscription); `batched` is the serving engine's batched_inference
/// choice (a plan can serve both A/B arms). The answer is identical for
/// every setting of either knob.
Result<WhatIfResult> EvaluatePrepared(const PreparedWhatIf::Impl& im,
                                      const std::vector<UpdateSpec>& updates,
                                      size_t block_threads, bool batched,
                                      const ExecGuard* guard) {
  Stopwatch eval_timer;
  WhatIfResult result;
  const ScopeStageData& sc = *im.scope;
  const CausalStageData& ca = *im.causal;
  const LearnStageData& le = *im.learn;
  const QueryStageData& qs = *im.query;
  const CompiledWhatIf& q = qs.q;
  const ColumnTable& cview = sc.cview;
  const size_t n = cview.num_rows();
  const std::vector<size_t>& update_cols = ca.plan.update_cols;
  const std::vector<WhatIfPlan::PsiSpec>& psi_specs = ca.plan.psi_specs;
  const std::vector<uint8_t>& in_s = qs.in_s;
  const size_t updated = qs.updated;
  const size_t num_features = ca.plan.feature_cols.size();

  result.view_rows = n;
  result.updated_rows = updated;
  result.num_blocks = ca.block_rows.size();
  result.backdoor = ca.plan.backdoor_causal;

  if (guard != nullptr) {
    HYPER_RETURN_NOT_OK(guard->ChargeRows(n, "whatif.eval.rows"));
  }

  // The intervention must target the plan's update attributes in order;
  // constants and update functions are free.
  if (updates.size() != q.updates.size()) {
    return Status::InvalidArgument(StrFormat(
        "intervention has %zu update(s); the prepared plan expects %zu",
        updates.size(), q.updates.size()));
  }
  for (size_t j = 0; j < updates.size(); ++j) {
    if (updates[j].attribute != q.updates[j].attribute) {
      return Status::InvalidArgument(
          "intervention update attribute '" + updates[j].attribute +
          "' does not match the prepared plan's '" + q.updates[j].attribute +
          "'");
    }
  }

  // Deterministic post image u = f(b) on S, held as per-attribute overrides
  // instead of materialized post rows: Set updates are a constant, scale and
  // shift are per-row doubles over S.
  struct UpdatePost {
    bool is_set = true;
    std::vector<double> per_row;  // valid on S rows for scale/shift
  };
  std::vector<UpdatePost> upost(updates.size());
  relational::PostImage post_image;
  for (size_t j = 0; j < updates.size(); ++j) {
    const UpdateSpec& u = updates[j];
    if (u.func == sql::UpdateFuncKind::kSet) {
      upost[j].is_set = true;
      post_image.SetConst(update_cols[j], u.constant);
      continue;
    }
    upost[j].is_set = false;
    upost[j].per_row.assign(n, 0.0);
    if (updated > 0) {
      HYPER_ASSIGN_OR_RETURN(double c, u.constant.AsDouble());
      const Column& col = cview.col(update_cols[j]);
      if (qs.vectorized && !col.has_nulls() &&
          col.kind != ColumnKind::kCode) {
        // Null-free numeric column: widen once, then a branch-free select.
        // Rows outside S keep the 0.0 the assign above wrote, exactly like
        // the skipping loop below.
        std::vector<double> pre(n);
        switch (col.kind) {
          case ColumnKind::kInt64:
            simd::I64ToF64(col.i64.data(), n, pre.data());
            break;
          case ColumnKind::kDouble:
            std::copy(col.f64.begin(), col.f64.end(), pre.begin());
            break;
          case ColumnKind::kBool:
            simd::U8ToF64(col.b8.data(), n, pre.data());
            break;
          case ColumnKind::kCode:
            break;  // excluded above
        }
        const bool is_scale = u.func == sql::UpdateFuncKind::kScale;
        double* out = upost[j].per_row.data();
        for (size_t r = 0; r < n; ++r) {
          const double v = is_scale ? c * pre[r] : c + pre[r];
          out[r] = in_s[r] != 0 ? v : 0.0;
        }
      } else {
        for (size_t r = 0; r < n; ++r) {
          if (!in_s[r]) continue;
          HYPER_ASSIGN_OR_RETURN(double p, ReadColumnDouble(cview, col, r));
          upost[j].per_row[r] =
              u.func == sql::UpdateFuncKind::kScale ? c * p : c + p;
        }
      }
    }
    post_image.SetPerRowDouble(update_cols[j], upost[j].per_row);
  }
  post_image.set_active(&in_s);

  // Post-update psi group means from the precomputed pre sums. Without psi
  // features the changed mask stays unallocated — readers treat empty as
  // all-zero — so psi-free evaluations skip an n-byte zeroed allocation.
  std::vector<std::vector<double>> psi_post(psi_specs.size());
  std::vector<uint8_t> psi_changed(psi_specs.empty() ? 0 : n, 0);
  for (size_t p = 0; p < psi_specs.size(); ++p) {
    const WhatIfPlan::PsiSpec& spec = psi_specs[p];
    const LearnStageData::PsiPrep& prep = le.psi[p];
    const UpdatePost& up = upost[spec.update_index];
    double set_double = 0.0;
    if (up.is_set && updated > 0) {
      HYPER_ASSIGN_OR_RETURN(set_double,
                             updates[spec.update_index].constant.AsDouble());
    }
    std::vector<double> sum_post(prep.counts.size(), 0.0);
    for (size_t r = 0; r < n; ++r) {
      const double post_b =
          in_s[r] ? (up.is_set ? set_double : up.per_row[r]) : prep.pre_b[r];
      sum_post[prep.gid[r]] += post_b;
    }
    psi_post[p].resize(n);
    for (size_t r = 0; r < n; ++r) {
      const uint32_t g = prep.gid[r];
      psi_post[p][r] = sum_post[g] / static_cast<double>(prep.counts[g]);
      if (std::fabs(prep.psi_pre[r] - psi_post[p][r]) > 1e-12) {
        psi_changed[r] = 1;
      }
    }
  }

  const uint8_t* psic = psi_changed.empty() ? nullptr : psi_changed.data();

  // Encoded Set-update feature values (one per update, not per row).
  std::vector<double> set_feature(updates.size(), 0.0);
  if (updated > 0) {
    for (size_t j = 0; j < updates.size(); ++j) {
      if (!upost[j].is_set) continue;
      HYPER_ASSIGN_OR_RETURN(double f,
                             le.encoder->EncodeValue(j, updates[j].constant));
      set_feature[j] = le.SnapFeature(j, f);
    }
  }

  // Bind the hole plan against this intervention's post image.
  std::vector<relational::ColumnBoundExpr> hole_eval;
  hole_eval.reserve(qs.hole_compiled.size());
  for (const relational::CompiledExpr& ce : qs.hole_compiled) {
    HYPER_ASSIGN_OR_RETURN(
        relational::ColumnBoundExpr be,
        relational::ColumnBoundExpr::Bind(ce, cview, &post_image));
    hole_eval.push_back(std::move(be));
  }

  /// Post-update feature point of row r, written into dst[0..dims).
  const size_t dims = num_features + psi_specs.size();
  auto emit_features = [&](size_t r, double* dst) {
    for (size_t j = 0; j < updates.size(); ++j) {
      if (!in_s[r]) {
        dst[j] = le.feat[j][r];
      } else if (upost[j].is_set) {
        dst[j] = set_feature[j];
      } else {
        dst[j] = le.SnapFeature(j, upost[j].per_row[r]);
      }
    }
    for (size_t j = updates.size(); j < num_features; ++j) {
      dst[j] = le.feat[j][r];
    }
    for (size_t p = 0; p < psi_specs.size(); ++p) {
      dst[num_features + p] = psi_post[p][r];
    }
  };

  // Batched-inference state, spanning the whole evaluation (predictions are
  // block-independent; only the accumulation is per block). Affected rows
  // are deduplicated per residual pattern — rows sharing a post-update
  // feature point (common with discrete adjustment sets and a Set
  // intervention) share one prediction slot, since estimators are pure
  // functions of the point. One PredictBatch per estimator then covers the
  // distinct points; the block loop just reads its row's slot. Predictions
  // (and the fold order) are bit-for-bit those of the per-row path.
  struct EntryBatch {
    std::vector<double> feat;  // row-major distinct points, dims wide
    uint32_t count = 0;        // distinct points
    /// FNV-of-bytes hash -> slots with that hash (memcmp resolves).
    std::unordered_map<size_t, std::vector<uint32_t>> dedup;
    std::vector<double> weights, values;  // per slot
  };
  std::vector<EntryBatch> batches;
  std::vector<uint32_t> slot_of_row(batched ? n : 0);

  // Pass A (sequential): resolve each row to its residual entry, make sure
  // the pattern estimators needed by affected rows are trained, and gather
  // the deduplicated feature points. The entry cache lives on the
  // QueryStage, the pattern-estimator cache on the LearnStage (shared
  // across every plan assembled on it); evaluations snapshot raw pointers
  // so Pass B runs lock-free.
  double train_seconds = 0.0;
  // Row-invariant holes (constant thresholds, or no For predicate at all):
  // every row folds to the same residual, so resolve the shared entry once
  // and skip the per-row hole evaluation + cache lookup entirely. Gated on
  // batched_inference: the flag-off path faithfully reproduces the legacy
  // per-row evaluation loop for A/B measurement.
  const bool uniform = qs.holes_row_invariant && batched;
  const bool all_set = [&] {
    for (const UpdatePost& u : upost) {
      if (!u.is_set) return false;
    }
    return true;
  }();
  // Identity singleton blocks on a single-threaded budget take a flat
  // row-order pass in Pass B below — the per-block merge in block order IS
  // a row-order fold there, so the per-block accumulator, partial, and
  // status arrays are pure overhead (one heap pair + Status per tuple).
  const bool flat_blocks =
      qs.vectorized && ca.identity_blocks && block_threads <= 1;
  // Fast Pass A for the common serving shape — row-invariant holes, Set
  // updates only, no psi features: every affected row's post-update point
  // is (constant set features) ++ (its non-update feature bytes), so the
  // LearnStage's precomputed residual grouping IS the dedup. Affected rows
  // map to batch slots with one array read; the slots, the gathered feature
  // points, and their order are identical to the hashing loop in the else
  // branch below (first appearance in row order, byte equality).
  const bool fast_pass_a = uniform && all_set && psi_specs.empty() &&
                           qs.vectorized && !le.residual_gid.empty();
  // A flat uniform Pass B reads the shared entry directly, so the fast
  // Pass A can skip both the entry map and its n-slot zeroed allocation.
  std::vector<uint32_t> entry_of_row(fast_pass_a && flat_blocks ? 0 : n);
  std::vector<const QueryStageData::Entry*> local_entries;
  std::vector<const PatternEstimators*> pattern_of_entry;
  std::unordered_map<std::vector<Value>, uint32_t, ValueVectorHash,
                     ValueVectorEq>
      local_cache;
  std::unordered_set<const PatternEstimators*> used_patterns;
  size_t pattern_hits = 0;
  std::vector<Value> scratch;
  std::vector<double> point(dims);
  auto grow_local = [&](uint32_t id) {
    if (id >= local_entries.size()) {
      local_entries.resize(id + 1, nullptr);
      pattern_of_entry.resize(id + 1, nullptr);
    }
  };
  uint32_t uniform_id = 0;
  if (uniform) {
    for (const relational::ColumnBoundExpr& he : hole_eval) {
      HYPER_ASSIGN_OR_RETURN(relational::Scalar s, he.Eval(0));
      scratch.push_back(s.ToValue());
    }
    MutexLock lock(&qs.mu);
    HYPER_ASSIGN_OR_RETURN(uniform_id, qs.ResolveEntryLocked(scratch));
    grow_local(uniform_id);
    local_entries[uniform_id] = qs.entries[uniform_id].get();
  }

  if (fast_pass_a) {
    if (!flat_blocks) {
      std::fill(entry_of_row.begin(), entry_of_row.end(), uniform_id);
    }
    const QueryStageData::Entry& e = *local_entries[uniform_id];
    if (!(e.is_literal && !e.literal_value)) {
      const uint32_t* gid = le.residual_gid.data();
      std::vector<uint32_t> slot_of_gid(le.residual_groups, UINT32_MAX);
      const PatternEstimators* pat = nullptr;
      EntryBatch* eb = nullptr;
      // Guard checkpoints per stride instead of per row: the body is a few
      // loads, so a stride keeps cancellation latency in the microseconds
      // while removing the per-row counter from the hot loop.
      constexpr size_t kGuardStride = 4096;
      bool done = false;
      for (size_t base = 0; base < n && !done; base += kGuardStride) {
        if (guard != nullptr) {
          HYPER_RETURN_NOT_OK(guard->Check("whatif.eval.rows"));
        }
        const size_t lim = std::min(n, base + kGuardStride);
        for (size_t r = base; r < lim; ++r) {
          if (!in_s[r]) continue;  // psi_changed is all-zero with no psi
          if (pat == nullptr) {
            bool was_cached = false;
            HYPER_ASSIGN_OR_RETURN(
                pat, le.EnsurePattern(e.key, e.is_literal, e.literal_value,
                                      e.exact.has_value() ? &*e.exact : nullptr,
                                      &was_cached, &train_seconds, guard));
            pattern_of_entry[uniform_id] = pat;
            if (used_patterns.insert(pat).second && was_cached) ++pattern_hits;
            if (pat->weight == nullptr && pat->value == nullptr) {
              done = true;  // literal pattern: nothing to batch, training done
              break;
            }
            if (uniform_id >= batches.size()) batches.resize(uniform_id + 1);
            eb = &batches[uniform_id];
          }
          const uint32_t g = gid[r];
          uint32_t slot = slot_of_gid[g];
          if (slot == UINT32_MAX) {
            slot = eb->count++;
            slot_of_gid[g] = slot;
            emit_features(r, point.data());
            eb->feat.insert(eb->feat.end(), point.begin(), point.end());
          }
          slot_of_row[r] = slot;
        }
      }
    }
  } else {
  LoopCheck pass_a_check(guard);
  for (size_t r = 0; r < n; ++r) {
    if (pass_a_check.Due()) {
      HYPER_RETURN_NOT_OK(guard->Check("whatif.eval.rows"));
    }
    uint32_t id;
    if (uniform) {
      id = uniform_id;
    } else {
      scratch.clear();
      for (const relational::ColumnBoundExpr& he : hole_eval) {
        HYPER_ASSIGN_OR_RETURN(relational::Scalar s, he.Eval(r));
        scratch.push_back(s.ToValue());
      }
      auto it = local_cache.find(scratch);
      if (it != local_cache.end()) {
        id = it->second;
      } else {
        MutexLock lock(&qs.mu);
        HYPER_ASSIGN_OR_RETURN(id, qs.ResolveEntryLocked(scratch));
        grow_local(id);
        local_entries[id] = qs.entries[id].get();
        local_cache.emplace(scratch, id);
      }
    }
    entry_of_row[r] = id;
    const QueryStageData::Entry& e = *local_entries[id];
    if (e.is_literal && !e.literal_value) continue;  // disqualified
    if (!(in_s[r] || (psic != nullptr && psic[r]))) continue;  // Pass B
    if (pattern_of_entry[id] == nullptr) {
      // Train (or fetch) on the LearnStage — entries are immutable once
      // published, so the residual evaluates outside the entry lock.
      bool was_cached = false;
      const PatternEstimators* pat = nullptr;
      HYPER_ASSIGN_OR_RETURN(
          pat, le.EnsurePattern(e.key, e.is_literal, e.literal_value,
                                e.exact.has_value() ? &*e.exact : nullptr,
                                &was_cached, &train_seconds, guard));
      pattern_of_entry[id] = pat;
      if (used_patterns.insert(pat).second && was_cached) ++pattern_hits;
    }
    if (!batched) continue;
    const PatternEstimators* pat = pattern_of_entry[id];
    if (pat->weight == nullptr && pat->value == nullptr) continue;
    if (id >= batches.size()) batches.resize(id + 1);
    EntryBatch& eb = batches[id];
    emit_features(r, point.data());
    Fnv1a hasher;
    for (size_t i = 0; i < dims; ++i) {
      uint64_t bits;
      std::memcpy(&bits, &point[i], sizeof(bits));
      hasher.Mix(bits);
    }
    std::vector<uint32_t>& slots = eb.dedup[hasher.hash()];
    uint32_t slot = UINT32_MAX;
    for (uint32_t s : slots) {
      if (std::memcmp(eb.feat.data() + static_cast<size_t>(s) * dims,
                      point.data(), dims * sizeof(double)) == 0) {
        slot = s;
        break;
      }
    }
    if (slot == UINT32_MAX) {
      slot = eb.count++;
      slots.push_back(slot);
      eb.feat.insert(eb.feat.end(), point.begin(), point.end());
    }
    slot_of_row[r] = slot;
  }
  }

  // Batched inference: one PredictBatch per (pattern, estimator) over the
  // distinct feature points collected above.
  if (batched) {
    for (uint32_t id = 0; id < batches.size(); ++id) {
      EntryBatch& eb = batches[id];
      if (eb.count == 0) continue;
      const PatternEstimators* pat = pattern_of_entry[id];
      const learn::FeatureMatrix points(dims, std::move(eb.feat));
      if (pat->weight != nullptr) {
        eb.weights.resize(points.num_rows());
        pat->weight->PredictBatch(points, eb.weights);
      }
      if (pat->value != nullptr) {
        eb.values.resize(points.num_rows());
        pat->value->PredictBatch(points, eb.values);
      }
    }
  }

  // Pass B (parallel): blocks are independent (§3.3), so each one is
  // evaluated on its own accumulator — estimators and batch slots are
  // read-only here — and the partials merge in block order, bit-identical
  // to a sequential fold.
  const std::vector<std::vector<size_t>>& block_rows = ca.block_rows;
  std::vector<std::pair<double, double>> partials(
      flat_blocks ? 0 : block_rows.size(), {0.0, 0.0});
  std::vector<Status> block_status(flat_blocks ? 0 : block_rows.size());
  auto eval_block = [&](size_t b) -> Status {
    // Aborts are sticky and monotone, so once any shard trips the guard
    // every later checking block returns the same typed status; the
    // block-ordered merge below then surfaces it deterministically. The
    // entry check is amortized over the block index: ground blocks can be
    // single rows (one block per tuple), and a full checkpoint per block
    // would dominate the warm path. Every 64th block keeps the response
    // latency of a 1-row-block decomposition at ~64 rows while the per-row
    // LoopCheck below covers the few-large-blocks shape.
    if (guard != nullptr && (b & 63) == 0) {
      HYPER_RETURN_NOT_OK(guard->Check("whatif.eval.blocks"));
    }
    LoopCheck block_check(guard);
    prob::BlockAccumulator bacc(q.output_agg);
    bacc.BeginBlock();
    std::vector<double> x(batched ? 0 : dims);
    for (size_t r : block_rows[b]) {
      if (block_check.Due()) {
        HYPER_RETURN_NOT_OK(guard->Check("whatif.eval.blocks"));
      }
      const uint32_t id = entry_of_row[r];
      const QueryStageData::Entry& e = *local_entries[id];
      if (e.is_literal && !e.literal_value) continue;  // disqualified
      const bool affected = in_s[r] || (psic != nullptr && psic[r]);
      if (!affected) {
        // Unchanged tuple: post == pre, everything is exact. Qualification
        // and output value come from the stage-level caches when present;
        // tri-state error marks reproduce the per-row error exactly.
        bool qualifies = e.literal_value;
        if (!e.is_literal) {
          if (batched && !e.exact_vals.empty()) {
            const uint8_t v = e.exact_vals[r];
            if (v == 2) {
              auto qr = e.exact->EvalBool(r);
              if (!qr.ok()) return qr.status();
              qualifies = *qr;
            } else {
              qualifies = v != 0;
            }
          } else {
            auto qr = e.exact->EvalBool(r);
            if (!qr.ok()) return qr.status();
            qualifies = *qr;
          }
        }
        if (!qualifies) continue;
        double value = 0.0;
        if (qs.out_eval.has_value()) {
          if (!batched || qs.out_err[r]) {
            auto vr = qs.out_eval->Eval(r);
            if (!vr.ok()) return vr.status();
            auto dr = vr->AsDouble();
            if (!dr.ok()) return dr.status();
            value = *dr;
          } else {
            value = qs.out_all[r];
          }
        }
        bacc.Add(1.0, value);
        continue;
      }

      // Affected tuple: estimate at the post-update feature point.
      const PatternEstimators* pat = pattern_of_entry[id];
      double weight = 0.0, weighted_value = 0.0;
      if (batched) {
        weight = pat->literal ? (pat->literal_value ? 1.0 : 0.0)
                              : Clamp01(batches[id].weights[slot_of_row[r]]);
        if (weight <= 0.0) continue;
        if (pat->value != nullptr) {
          weighted_value = batches[id].values[slot_of_row[r]];
        }
      } else {
        emit_features(r, x.data());
        weight = pat->literal ? (pat->literal_value ? 1.0 : 0.0)
                              : Clamp01(pat->weight->Predict(x));
        if (weight <= 0.0) continue;
        if (pat->value != nullptr) weighted_value = pat->value->Predict(x);
      }
      bacc.Add(weight, weighted_value);
    }
    bacc.EndBlock();
    partials[b] = {bacc.numerator(), bacc.denominator()};
    return Status::OK();
  };

  prob::BlockAccumulator acc(q.output_agg);
  if (flat_blocks) {
    // Same row body as eval_block, same += sequence as the block-ordered
    // merge (starting from +0.0 the partial can never be -0.0, so one merge
    // of the flat totals is bit-identical to n singleton merges). Errors
    // surface as the first failing row, which is the first failing block.
    double num = 0.0, den = 0.0;
    LoopCheck flat_check(guard);
    // Branchless specialization for the dominant serving shape: one shared
    // entry, batched Count with a trained weight estimator and a cached
    // qualification mask. Every row adds exactly what the generic body
    // adds — non-qualifying and zero-weight rows contribute +0.0, which is
    // bit-identical to skipping them because the partial starts at +0.0 and
    // only ever accumulates non-negative clamped weights (it can never be
    // -0.0). Replacing the affected/unaffected branch with a select removes
    // the data-dependent mispredictions that dominate this loop on mixed
    // selections.
    const QueryStageData::Entry* ue = uniform ? local_entries[uniform_id]
                                              : nullptr;
    const PatternEstimators* upat =
        uniform ? pattern_of_entry[uniform_id] : nullptr;
    const bool table_disqualified =
        uniform && ue->is_literal && !ue->literal_value;
    const bool turbo_count =
        uniform && batched && !table_disqualified && psi_specs.empty() &&
        q.output_agg == sql::AggKind::kCount && !ue->is_literal &&
        !ue->exact_vals.empty() && upat != nullptr && !upat->literal &&
        upat->weight != nullptr && uniform_id < batches.size() &&
        !batches[uniform_id].weights.empty() && !qs.out_eval.has_value();
    if (table_disqualified) {
      // Every tuple resolves to a disqualified literal entry: the fold is
      // empty and the zero partial below is all that remains.
    } else if (turbo_count) {
      const uint8_t* qual = ue->exact_vals.data();
      const uint8_t* aff = in_s.data();
      const double* w = batches[uniform_id].weights.data();
      const uint32_t* slots = slot_of_row.data();
      // Stride-level guard checkpoints (see Pass A): microsecond-scale
      // cancellation latency without a per-row counter or branch.
      constexpr size_t kGuardStride = 4096;
      for (size_t base = 0; base < n; base += kGuardStride) {
        if (guard != nullptr) {
          HYPER_RETURN_NOT_OK(guard->Check("whatif.eval.blocks"));
        }
        const size_t lim = std::min(n, base + kGuardStride);
        for (size_t r = base; r < lim; ++r) {
          const bool affd = aff[r] != 0;
          const uint8_t v = qual[r];
          if (v == 2 && !affd) {  // cache miss: per-row evaluator decides
            HYPER_ASSIGN_OR_RETURN(const bool qb, ue->exact->EvalBool(r));
            num += qb ? 1.0 : 0.0;
            continue;
          }
          // Unaffected slots read w[0] harmlessly (weights is non-empty);
          // the select keeps only the arm the generic body would take.
          const double unw = v != 0 ? 1.0 : 0.0;
          const double wa = Clamp01(w[slots[r]]);
          num += affd ? wa : unw;
        }
      }
    } else {
    std::vector<double> x(batched ? 0 : dims);
    for (size_t r = 0; r < n; ++r) {
      if (guard != nullptr && (r & 63) == 0) {
        HYPER_RETURN_NOT_OK(guard->Check("whatif.eval.blocks"));
      }
      if (flat_check.Due()) {
        HYPER_RETURN_NOT_OK(guard->Check("whatif.eval.blocks"));
      }
      const uint32_t id = uniform ? uniform_id : entry_of_row[r];
      const QueryStageData::Entry& e = *local_entries[id];
      if (e.is_literal && !e.literal_value) continue;  // disqualified
      double weight = 0.0, weighted_value = 0.0;
      const bool affected = in_s[r] || (psic != nullptr && psic[r]);
      if (!affected) {
        bool qualifies = e.literal_value;
        if (!e.is_literal) {
          if (batched && !e.exact_vals.empty()) {
            const uint8_t v = e.exact_vals[r];
            if (v == 2) {
              HYPER_ASSIGN_OR_RETURN(qualifies, e.exact->EvalBool(r));
            } else {
              qualifies = v != 0;
            }
          } else {
            HYPER_ASSIGN_OR_RETURN(qualifies, e.exact->EvalBool(r));
          }
        }
        if (!qualifies) continue;
        double value = 0.0;
        if (qs.out_eval.has_value()) {
          if (!batched || qs.out_err[r]) {
            HYPER_ASSIGN_OR_RETURN(relational::Scalar vs, qs.out_eval->Eval(r));
            HYPER_ASSIGN_OR_RETURN(value, vs.AsDouble());
          } else {
            value = qs.out_all[r];
          }
        }
        weight = 1.0;
        weighted_value = value;
      } else {
        const PatternEstimators* pat = pattern_of_entry[id];
        if (batched) {
          weight = pat->literal ? (pat->literal_value ? 1.0 : 0.0)
                                : Clamp01(batches[id].weights[slot_of_row[r]]);
          if (weight <= 0.0) continue;
          if (pat->value != nullptr) {
            weighted_value = batches[id].values[slot_of_row[r]];
          }
        } else {
          emit_features(r, x.data());
          weight = pat->literal ? (pat->literal_value ? 1.0 : 0.0)
                                : Clamp01(pat->weight->Predict(x));
          if (weight <= 0.0) continue;
          if (pat->value != nullptr) weighted_value = pat->value->Predict(x);
        }
      }
      switch (q.output_agg) {
        case sql::AggKind::kCount:
          num += weight;
          break;
        case sql::AggKind::kSum:
          num += weighted_value;
          break;
        case sql::AggKind::kAvg:
          num += weighted_value;
          den += weight;
          break;
        default:
          break;
      }
    }
    }
    acc.MergeBlockPartial(num, den);
  } else if (block_threads <= 1 || block_rows.size() <= 1) {
    for (size_t b = 0; b < block_rows.size(); ++b) {
      block_status[b] = eval_block(b);
    }
  } else {
    // Any parallel setting shares the process-wide hardware-sized pool:
    // spawning threads per query would dominate small queries, and the
    // block merge is order-fixed, so the answer never depends on the
    // worker count anyway. Blocks are claimed morsel-wise (64 at a time;
    // single-tuple blocks dominate, so per-block claiming would be all
    // contention) and the work-stealing deques rebalance skewed block
    // sizes; partials land at fixed indices either way.
    ThreadPool::Shared().ParallelForRange(
        block_rows.size(), /*grain=*/64,
        [&](size_t begin, size_t end) {
          for (size_t b = begin; b < end; ++b) block_status[b] = eval_block(b);
        },
        /*max_parallelism=*/block_threads);
  }
  for (const Status& s : block_status) {
    HYPER_RETURN_NOT_OK(s);
  }

  for (const auto& [num, den] : partials) {
    acc.MergeBlockPartial(num, den);
  }

  result.num_patterns = used_patterns.size();
  result.pattern_cache_hits = pattern_hits;
  result.train_seconds = train_seconds;
  HYPER_ASSIGN_OR_RETURN(result.value, acc.Finish());
  result.eval_seconds = eval_timer.ElapsedSeconds();
  result.total_seconds = result.eval_seconds;
  return result;
}


}  // namespace

Result<WhatIfResult> WhatIfEngine::Evaluate(
    const PreparedWhatIf& plan, const std::vector<UpdateSpec>& updates) const {
  const size_t threads = ThreadPool::ResolveBudget(options_.num_threads);
  const ExecGuardPtr guard = GuardFor(options_);
  return EvaluatePrepared(*plan.impl_, updates, threads,
                          options_.batched_inference, guard.get());
}

Result<std::vector<WhatIfResult>> WhatIfEngine::EvaluateBatch(
    const PreparedWhatIf& plan,
    const std::vector<std::vector<UpdateSpec>>& interventions,
    std::vector<Status>* statuses) const {
  std::vector<WhatIfResult> results(interventions.size());
  if (statuses != nullptr) {
    statuses->assign(interventions.size(), Status::OK());
  }
  if (interventions.empty()) return results;
  const size_t threads = ThreadPool::ResolveBudget(options_.num_threads);
  // One guard spans the whole batch; a per-item pre-check keeps governance
  // failures per-item when the caller collects statuses, and the sticky
  // abort means every item after the trip reports the same typed status.
  const ExecGuardPtr guard = GuardFor(options_);
  std::vector<Status> item_status(interventions.size());
  auto eval_item = [&](size_t i, size_t item_threads) {
    if (guard != nullptr) {
      Status gs = guard->Check("whatif.eval.batch");
      if (!gs.ok()) {
        item_status[i] = std::move(gs);
        return;
      }
    }
    auto r = EvaluatePrepared(*plan.impl_, interventions[i], item_threads,
                              options_.batched_inference, guard.get());
    if (!r.ok()) {
      item_status[i] = r.status();
    } else {
      results[i] = std::move(r).value();
    }
  };
  if (threads <= 1 || interventions.size() == 1) {
    for (size_t i = 0; i < interventions.size(); ++i) {
      eval_item(i, threads);
    }
  } else {
    // Shard across interventions; each evaluation runs its block loop
    // single-threaded to keep the pool busy with whole interventions.
    // Every evaluation is deterministic on its own, so results[i] is
    // bit-for-bit identical to a sequential Evaluate(interventions[i]).
    ThreadPool::Shared().ParallelFor(
        interventions.size(), [&](size_t i) { eval_item(i, 1); },
        /*max_parallelism=*/threads);
  }
  if (statuses != nullptr) {
    *statuses = std::move(item_status);
    return results;
  }
  for (const Status& s : item_status) {
    HYPER_RETURN_NOT_OK(s);
  }
  return results;
}

}  // namespace hyper::whatif
