#ifndef HYPER_WHATIF_COMPILE_H_
#define HYPER_WHATIF_COMPILE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "sql/ast.h"
#include "storage/database.h"

namespace hyper::whatif {

/// A resolved hypothetical update u_{R,B,f,S} (Definition 2) on one view
/// column. S is determined separately by the When predicate.
struct UpdateSpec {
  std::string attribute;  // view column == base attribute name
  sql::UpdateFuncKind func = sql::UpdateFuncKind::kSet;
  Value constant;

  /// f(pre): the post-update value of the attribute.
  Result<Value> Apply(const Value& pre) const;
};

/// The materialized relevant view V_rel plus the bookkeeping the engine
/// needs: which base relation R the update targets, how view rows map back
/// to R tuples, and which causal-model attribute each view column stands
/// for (aggregated columns map to their base attribute — the augmented-graph
/// reading of §A.3.2).
///
/// The view table is held through shared ownership: for `Use <relation>` it
/// aliases the database's own storage (no row copy per prepare), and staged
/// prepare pipelines share one ViewInfo across every plan compiled against
/// the same scope.
struct ViewInfo {
  std::shared_ptr<const Table> view;
  std::string update_relation;                 // R
  std::vector<std::string> view_key_columns;   // key of R, as view columns
  std::vector<size_t> view_row_to_tid;         // view row -> tid in R
  std::unordered_map<std::string, std::string> causal_of_column;
};

/// A fully compiled what-if query. `view_info` is shared: plans differing
/// only in their predicates/output reuse one materialized view.
struct CompiledWhatIf {
  std::shared_ptr<const ViewInfo> view_info;
  std::vector<UpdateSpec> updates;
  sql::ExprPtr when;      // nullable
  sql::ExprPtr for_pred;  // nullable; Count(pred) outputs are folded in here
  sql::AggKind output_agg = sql::AggKind::kCount;
  sql::ExprPtr output_value;  // value expression for Sum/Avg; null for Count
};

/// Builds V_rel for a Use clause. `update_attr` (the first update
/// attribute) determines the relation R; the view must expose R's key and
/// the update attribute, and contains exactly one row per tuple of R (§3.1).
Result<ViewInfo> BuildRelevantView(const Database& db,
                                   const sql::UseClause& use,
                                   const std::string& update_attr);

/// Compiles a parsed what-if statement against a database. Validation
/// errors (unknown attributes, immutable update targets, view shape
/// violations) surface here, before any estimation work starts.
Result<CompiledWhatIf> CompileWhatIf(const Database& db,
                                     const sql::WhatIfStmt& stmt);

/// The view-independent half of CompileWhatIf: validates `stmt` against an
/// already-built relevant view and compiles its update specs / predicate /
/// output ASTs. The staged prepare pipeline calls this with a cached
/// ViewInfo so the view is materialized once per scope, not once per query.
Result<CompiledWhatIf> CompileWhatIfAgainst(
    std::shared_ptr<const ViewInfo> view_info, const sql::WhatIfStmt& stmt);

/// The statement's Update clauses as UpdateSpecs (the intervention shape
/// WhatIfEngine::Evaluate consumes). No validation — CompileWhatIf /
/// Evaluate do that.
std::vector<UpdateSpec> SpecsOfStatement(const sql::WhatIfStmt& stmt);

}  // namespace hyper::whatif

#endif  // HYPER_WHATIF_COMPILE_H_
