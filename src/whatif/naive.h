#ifndef HYPER_WHATIF_NAIVE_H_
#define HYPER_WHATIF_NAIVE_H_

#include "causal/scm.h"
#include "common/status.h"
#include "sql/ast.h"
#include "storage/database.h"

namespace hyper::whatif {

/// Exact what-if query evaluation by possible-world enumeration — a literal
/// implementation of Definitions 4 and 5:
///
///   valwhatif(Q, D) = sum over possible worlds I of
///                       Pr_{D,U}(I) * aggr({Y_I[t] : mu_For(t)})
///
/// The post-update distribution Pr_{D,U} comes from the ground SCM
/// (GroundScm::PostUpdateWorlds). Exponential in the number of affected
/// ground variables: this is the correctness oracle the efficient engine is
/// tested against, not a production path.
///
/// Avg over a world with an empty qualifying set contributes 0 for that
/// world (and its probability is excluded from the normalization).
Result<double> NaiveWhatIf(const Database& db, const causal::Scm& scm,
                           const sql::WhatIfStmt& stmt);

}  // namespace hyper::whatif

#endif  // HYPER_WHATIF_NAIVE_H_
