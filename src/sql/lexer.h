#ifndef HYPER_SQL_LEXER_H_
#define HYPER_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "sql/token.h"

namespace hyper::sql {

/// Tokenizes HypeR query text. The dialect is ASCII, case-insensitive on
/// keywords; identifiers are [A-Za-z_][A-Za-z0-9_]*; strings use single
/// quotes with '' as the escape for a literal quote; `--` starts a comment
/// through end of line.
class Lexer {
 public:
  explicit Lexer(std::string text) : text_(std::move(text)) {}

  /// Lexes the whole input. The final token is always kEnd.
  Result<std::vector<Token>> Tokenize();

 private:
  Status LexOne(std::vector<Token>* out);
  char Peek(size_t ahead = 0) const;
  char Advance();
  bool AtEnd() const { return pos_ >= text_.size(); }
  Status Error(const std::string& message) const;

  std::string text_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

/// Convenience wrapper.
Result<std::vector<Token>> TokenizeSql(const std::string& text);

}  // namespace hyper::sql

#endif  // HYPER_SQL_LEXER_H_
