#include "sql/ast.h"

#include "common/logging.h"
#include "common/strings.h"

namespace hyper::sql {

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kOr: return "Or";
    case BinaryOp::kAnd: return "And";
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNe: return "!=";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
  }
  return "?";
}

bool IsComparisonOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

const char* AggKindName(AggKind kind) {
  switch (kind) {
    case AggKind::kNone: return "";
    case AggKind::kSum: return "Sum";
    case AggKind::kAvg: return "Avg";
    case AggKind::kCount: return "Count";
  }
  return "?";
}

const char* UpdateFuncKindName(UpdateFuncKind kind) {
  switch (kind) {
    case UpdateFuncKind::kSet: return "set";
    case UpdateFuncKind::kScale: return "scale";
    case UpdateFuncKind::kShift: return "shift";
  }
  return "?";
}

const char* LimitKindName(LimitKind kind) {
  switch (kind) {
    case LimitKind::kAbsRange: return "range";
    case LimitKind::kRelShift: return "rel-shift";
    case LimitKind::kRelScale: return "rel-scale";
    case LimitKind::kL1: return "L1";
    case LimitKind::kInSet: return "in-set";
  }
  return "?";
}

std::unique_ptr<Expr> Expr::Clone() const {
  auto out = std::make_unique<Expr>();
  out->kind = kind;
  out->literal = literal;
  out->qualifier = qualifier;
  out->name = name;
  out->op = op;
  out->children.reserve(children.size());
  for (const auto& child : children) {
    out->children.push_back(child->Clone());
  }
  return out;
}

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kLiteral:
      return literal.ToString();
    case ExprKind::kColumnRef:
      return qualifier.empty() ? name : qualifier + "." + name;
    case ExprKind::kStar:
      return "*";
    case ExprKind::kPre:
      return "Pre(" + children[0]->ToString() + ")";
    case ExprKind::kPost:
      return "Post(" + children[0]->ToString() + ")";
    case ExprKind::kNot:
      return "Not (" + children[0]->ToString() + ")";
    case ExprKind::kNeg:
      return "-(" + children[0]->ToString() + ")";
    case ExprKind::kBinary: {
      const std::string lhs = children[0]->ToString();
      const std::string rhs = children[1]->ToString();
      if (op == BinaryOp::kAnd || op == BinaryOp::kOr) {
        return "(" + lhs + " " + BinaryOpName(op) + " " + rhs + ")";
      }
      return lhs + " " + BinaryOpName(op) + " " + rhs;
    }
    case ExprKind::kInList: {
      std::vector<std::string> items;
      for (size_t i = 1; i < children.size(); ++i) {
        items.push_back(children[i]->ToString());
      }
      return children[0]->ToString() + " In (" + Join(items, ", ") + ")";
    }
    case ExprKind::kFuncCall: {
      std::vector<std::string> args;
      for (const auto& arg : children) args.push_back(arg->ToString());
      return name + "(" + Join(args, ", ") + ")";
    }
  }
  return "?";
}

ExprPtr MakeLiteral(Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr MakeColumnRef(std::string qualifier, std::string name) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->qualifier = std::move(qualifier);
  e->name = std::move(name);
  return e;
}

ExprPtr MakeStar() {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kStar;
  return e;
}

namespace {
ExprPtr MakeUnary(ExprKind kind, ExprPtr inner) {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->children.push_back(std::move(inner));
  return e;
}
}  // namespace

ExprPtr MakePre(ExprPtr inner) { return MakeUnary(ExprKind::kPre, std::move(inner)); }
ExprPtr MakePost(ExprPtr inner) { return MakeUnary(ExprKind::kPost, std::move(inner)); }
ExprPtr MakeNot(ExprPtr inner) { return MakeUnary(ExprKind::kNot, std::move(inner)); }
ExprPtr MakeNeg(ExprPtr inner) { return MakeUnary(ExprKind::kNeg, std::move(inner)); }

ExprPtr MakeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->op = op;
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  return e;
}

ExprPtr MakeInList(ExprPtr needle, std::vector<ExprPtr> items) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kInList;
  e->children.push_back(std::move(needle));
  for (auto& item : items) e->children.push_back(std::move(item));
  return e;
}

ExprPtr MakeFuncCall(std::string name, std::vector<ExprPtr> args) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kFuncCall;
  e->name = std::move(name);
  e->children = std::move(args);
  return e;
}

ExprPtr MakeConjunction(std::vector<ExprPtr> terms) {
  if (terms.empty()) return nullptr;
  ExprPtr acc = std::move(terms[0]);
  for (size_t i = 1; i < terms.size(); ++i) {
    acc = MakeBinary(BinaryOp::kAnd, std::move(acc), std::move(terms[i]));
  }
  return acc;
}

std::string SelectStmt::ToString() const {
  std::vector<std::string> item_strs;
  for (const auto& item : items) {
    std::string s;
    if (item.agg != AggKind::kNone) {
      s = std::string(AggKindName(item.agg)) + "(" +
          (item.expr ? item.expr->ToString() : "*") + ")";
    } else {
      s = item.expr->ToString();
    }
    if (!item.alias.empty()) s += " As " + item.alias;
    item_strs.push_back(s);
  }
  std::vector<std::string> from_strs;
  for (const auto& tr : from) {
    from_strs.push_back(tr.alias.empty() ? tr.table
                                         : tr.table + " As " + tr.alias);
  }
  std::string out = "Select " + Join(item_strs, ", ") + " From " +
                    Join(from_strs, ", ");
  if (where) out += " Where " + where->ToString();
  if (!group_by.empty()) {
    std::vector<std::string> gb;
    for (const auto& g : group_by) gb.push_back(g->ToString());
    out += " Group By " + Join(gb, ", ");
  }
  return out;
}

std::string UseClause::ToString() const {
  if (is_table()) return "Use " + table;
  std::string out = "Use ";
  if (!view_name.empty()) out += view_name + " As ";
  out += "(" + select->ToString() + ")";
  return out;
}

std::string UpdateClause::ToString() const {
  std::string rhs;
  switch (func) {
    case UpdateFuncKind::kSet:
      rhs = constant.ToString();
      break;
    case UpdateFuncKind::kScale:
      rhs = constant.ToString() + " * Pre(" + attribute + ")";
      break;
    case UpdateFuncKind::kShift:
      rhs = constant.ToString() + " + Pre(" + attribute + ")";
      break;
  }
  return "Update(" + attribute + ") = " + rhs;
}

std::string OutputClause::ToString() const {
  return std::string("Output ") + AggKindName(agg) + "(" +
         (inner ? inner->ToString() : "*") + ")";
}

std::string WhatIfStmt::ToString() const {
  std::string out = use.ToString();
  if (when) out += " When " + when->ToString();
  for (const auto& u : updates) out += " " + u.ToString();
  out += " " + output.ToString();
  if (for_pred) out += " For " + for_pred->ToString();
  return out;
}

std::string LimitItem::ToString() const {
  switch (kind) {
    case LimitKind::kAbsRange: {
      std::string out;
      if (lo.has_value()) out += StrFormat("%g <= ", *lo);
      out += "Post(" + attribute + ")";
      if (hi.has_value()) out += StrFormat(" <= %g", *hi);
      return out;
    }
    case LimitKind::kRelShift:
      return "Post(" + attribute + (upper_is_bound ? ") <= Pre(" : ") >= Pre(") +
             attribute + ") + " + StrFormat("%g", hi.value_or(0));
    case LimitKind::kRelScale:
      return "Post(" + attribute + (upper_is_bound ? ") <= Pre(" : ") >= Pre(") +
             attribute + ") * " + StrFormat("%g", hi.value_or(0));
    case LimitKind::kL1:
      return "L1(Pre(" + attribute + "), Post(" + attribute + ")) <= " +
             StrFormat("%g", hi.value_or(0));
    case LimitKind::kInSet: {
      std::vector<std::string> vals;
      for (const auto& v : values) vals.push_back(v.ToString());
      return "Post(" + attribute + ") In (" + Join(vals, ", ") + ")";
    }
  }
  return "?";
}

std::string HowToStmt::ToString() const {
  std::string out = use.ToString();
  if (when) out += " When " + when->ToString();
  out += " HowToUpdate " + Join(update_attributes, ", ");
  if (!limits.empty()) {
    std::vector<std::string> ls;
    for (const auto& l : limits) ls.push_back(l.ToString());
    out += " Limit " + Join(ls, " And ");
  }
  out += maximize ? " ToMaximize " : " ToMinimize ";
  out += std::string(AggKindName(objective_agg)) + "(" +
         (objective_inner ? objective_inner->ToString() : "*") + ")";
  if (for_pred) out += " For " + for_pred->ToString();
  return out;
}

std::string Statement::ToString() const {
  if (select) return select->ToString();
  if (whatif) return whatif->ToString();
  if (howto) return howto->ToString();
  return "<empty>";
}

void CollectColumnRefs(const Expr& expr, std::vector<std::string>* out) {
  if (expr.kind == ExprKind::kColumnRef) {
    for (const std::string& existing : *out) {
      if (existing == expr.name) return;
    }
    out->push_back(expr.name);
    return;
  }
  for (const auto& child : expr.children) CollectColumnRefs(*child, out);
}

bool ContainsPost(const Expr& expr) {
  if (expr.kind == ExprKind::kPost) return true;
  for (const auto& child : expr.children) {
    if (ContainsPost(*child)) return true;
  }
  return false;
}

bool ContainsPre(const Expr& expr) {
  if (expr.kind == ExprKind::kPre) return true;
  for (const auto& child : expr.children) {
    if (ContainsPre(*child)) return true;
  }
  return false;
}

std::vector<ExprPtr> SplitConjunction(const Expr& expr) {
  std::vector<ExprPtr> out;
  if (expr.kind == ExprKind::kBinary && expr.op == BinaryOp::kAnd) {
    auto lhs = SplitConjunction(*expr.children[0]);
    auto rhs = SplitConjunction(*expr.children[1]);
    for (auto& e : lhs) out.push_back(std::move(e));
    for (auto& e : rhs) out.push_back(std::move(e));
    return out;
  }
  out.push_back(expr.Clone());
  return out;
}

std::vector<ExprPtr> SplitDisjunction(const Expr& expr) {
  std::vector<ExprPtr> out;
  if (expr.kind == ExprKind::kBinary && expr.op == BinaryOp::kOr) {
    auto lhs = SplitDisjunction(*expr.children[0]);
    auto rhs = SplitDisjunction(*expr.children[1]);
    for (auto& e : lhs) out.push_back(std::move(e));
    for (auto& e : rhs) out.push_back(std::move(e));
    return out;
  }
  out.push_back(expr.Clone());
  return out;
}

}  // namespace hyper::sql
