#ifndef HYPER_SQL_TOKEN_H_
#define HYPER_SQL_TOKEN_H_

#include <cstdint>
#include <string>

namespace hyper::sql {

enum class TokenKind {
  kEnd = 0,
  kIdent,     // bare identifier (keywords are matched case-insensitively
              // against identifiers by the parser)
  kInt,       // integer literal
  kDouble,    // floating-point literal
  kString,    // 'single-quoted' string literal
  kComma,
  kDot,
  kLParen,
  kRParen,
  kStar,      // '*' — multiplication or COUNT(*) depending on context
  kPlus,
  kMinus,
  kSlash,
  kPercent,
  kEq,        // =
  kNe,        // != or <>
  kLt,
  kLe,
  kGt,
  kGe,
};

const char* TokenKindName(TokenKind kind);

/// One lexed token with its source position (1-based line/column) for
/// error messages.
struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;       // identifier or string contents
  int64_t int_value = 0;  // kInt
  double double_value = 0.0;  // kDouble
  int line = 1;
  int column = 1;

  std::string ToString() const;
};

}  // namespace hyper::sql

#endif  // HYPER_SQL_TOKEN_H_
