#ifndef HYPER_SQL_PARSER_H_
#define HYPER_SQL_PARSER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "sql/ast.h"
#include "sql/token.h"

namespace hyper::sql {

/// Recursive-descent parser for the HypeR dialect (§3.1, §4.1):
///
///   statement  := whatif | howto | select
///   whatif     := use [When expr] update+ output [For expr]
///   howto      := use [When expr] HowToUpdate ident (',' ident)*
///                 [Limit limit (And limit)*]
///                 (ToMaximize | ToMinimize) agg '(' expr ')' [For expr]
///   use        := Use ident | Use ident As '(' select ')' | Use '(' select ')'
///   update     := Update '(' ident ')' '=' f      (And-chained)
///   output     := Output agg '(' expr | '*' ')'
///   select     := Select items From refs [Where expr] [Group By exprs]
///
/// Expressions support Or/And/Not, comparisons (including the chained
/// `l <= x <= h` form), In-lists, Between, arithmetic, Pre()/Post() value
/// references, aggregate calls, and L1(). Keywords are case-insensitive.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> ParseStatement();

  // Entry points used directly by tests and programmatic callers.
  Result<std::unique_ptr<SelectStmt>> ParseSelectOnly();
  Result<ExprPtr> ParseExprOnly();

 private:
  // Token plumbing.
  const Token& Peek(size_t ahead = 0) const;
  const Token& Advance();
  bool Check(TokenKind kind) const { return Peek().kind == kind; }
  bool Match(TokenKind kind);
  Status Expect(TokenKind kind, const char* context);
  bool CheckKeyword(const char* kw, size_t ahead = 0) const;
  bool MatchKeyword(const char* kw);
  Status ExpectKeyword(const char* kw, const char* context);
  Status ErrorHere(const std::string& message) const;

  // Statement grammar.
  Result<std::unique_ptr<SelectStmt>> ParseSelect();
  Result<UseClause> ParseUse();
  Result<std::unique_ptr<WhatIfStmt>> ParseWhatIfTail(UseClause use,
                                                      ExprPtr when);
  Result<std::unique_ptr<HowToStmt>> ParseHowToTail(UseClause use,
                                                    ExprPtr when);
  Result<UpdateClause> ParseUpdateClause();
  Result<OutputClause> ParseOutputClause();
  Result<LimitItem> ParseLimitItem();
  Result<AggKind> ParseAggName(const char* context);

  // Expression grammar (highest function = lowest precedence).
  Result<ExprPtr> ParseExpr();
  Result<ExprPtr> ParseOr();
  Result<ExprPtr> ParseAnd();
  Result<ExprPtr> ParseNot();
  Result<ExprPtr> ParseComparison();
  Result<ExprPtr> ParseAdditive();
  Result<ExprPtr> ParseMultiplicative();
  Result<ExprPtr> ParseUnary();
  Result<ExprPtr> ParsePrimary();

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

/// Parses one statement from query text.
Result<Statement> ParseSql(const std::string& text);

/// Parses a standalone expression (tests, predicate construction).
Result<ExprPtr> ParseSqlExpr(const std::string& text);

}  // namespace hyper::sql

#endif  // HYPER_SQL_PARSER_H_
