#ifndef HYPER_SQL_AST_H_
#define HYPER_SQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "storage/value.h"

namespace hyper::sql {

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind {
  kLiteral,    // 42, 3.14, 'Asus', TRUE, NULL
  kColumnRef,  // Price or T1.Price
  kStar,       // '*' inside COUNT(*)
  kPre,        // Pre(<expr>)   — pre-update value (paper §3.1)
  kPost,       // Post(<expr>)  — post-update value
  kNot,        // NOT <expr>
  kNeg,        // -<expr>
  kBinary,     // <expr> op <expr>
  kInList,     // <expr> IN (v1, v2, ...)
  kFuncCall,   // SUM(x), AVG(x), COUNT(x|*), L1(a, b), ...
};

enum class BinaryOp {
  kOr,
  kAnd,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAdd,
  kSub,
  kMul,
  kDiv,
};

const char* BinaryOpName(BinaryOp op);
bool IsComparisonOp(BinaryOp op);

/// A node of the expression tree. One struct with a kind tag keeps the tree
/// cheap to build, clone and walk; only the fields relevant to `kind` are
/// meaningful.
struct Expr {
  ExprKind kind = ExprKind::kLiteral;

  Value literal;                      // kLiteral
  std::string qualifier;              // kColumnRef: optional table alias
  std::string name;                   // kColumnRef column / kFuncCall name
  BinaryOp op = BinaryOp::kEq;        // kBinary
  std::vector<std::unique_ptr<Expr>> children;  // operands / args / IN items

  std::unique_ptr<Expr> Clone() const;

  /// Renders the expression back to dialect text.
  std::string ToString() const;
};

using ExprPtr = std::unique_ptr<Expr>;

// Factory helpers -----------------------------------------------------------

ExprPtr MakeLiteral(Value v);
ExprPtr MakeColumnRef(std::string qualifier, std::string name);
ExprPtr MakeStar();
ExprPtr MakePre(ExprPtr inner);
ExprPtr MakePost(ExprPtr inner);
ExprPtr MakeNot(ExprPtr inner);
ExprPtr MakeNeg(ExprPtr inner);
ExprPtr MakeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr MakeInList(ExprPtr needle, std::vector<ExprPtr> items);
ExprPtr MakeFuncCall(std::string name, std::vector<ExprPtr> args);

/// Conjunction of all of `terms` (nullptr when empty).
ExprPtr MakeConjunction(std::vector<ExprPtr> terms);

// ---------------------------------------------------------------------------
// SELECT (the SQL subset allowed inside Use)
// ---------------------------------------------------------------------------

enum class AggKind { kNone = 0, kSum, kAvg, kCount };

const char* AggKindName(AggKind kind);

/// One item of a select list; aggregate items carry their AggKind so the
/// planner does not have to re-derive it from the call name.
struct SelectItem {
  ExprPtr expr;
  std::string alias;        // empty if none
  AggKind agg = AggKind::kNone;  // aggregate applied to expr, if any
};

struct TableRef {
  std::string table;
  std::string alias;  // empty if none
};

/// SELECT ... FROM ... [WHERE ...] [GROUP BY ...]
struct SelectStmt {
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  ExprPtr where;                 // nullable
  std::vector<ExprPtr> group_by;

  std::string ToString() const;
};

// ---------------------------------------------------------------------------
// What-if (§3.1)
// ---------------------------------------------------------------------------

/// The Use operator: either a bare relation name or an embedded SELECT that
/// defines the relevant view (optionally named: `Use V As (Select ...)`).
struct UseClause {
  std::string view_name;              // optional name before As
  std::string table;                  // bare-table form
  std::unique_ptr<SelectStmt> select; // embedded-select form (exclusive)

  bool is_table() const { return select == nullptr; }
  std::string ToString() const;
};

/// The shape of an update function f (Definition 2 / §3.1):
///   kSet:   Update(B) = <const>
///   kScale: Update(B) = <const> * Pre(B)
///   kShift: Update(B) = <const> + Pre(B)
enum class UpdateFuncKind { kSet, kScale, kShift };

const char* UpdateFuncKindName(UpdateFuncKind kind);

struct UpdateClause {
  std::string attribute;
  UpdateFuncKind func = UpdateFuncKind::kSet;
  Value constant;

  std::string ToString() const;
};

struct OutputClause {
  AggKind agg = AggKind::kCount;
  ExprPtr inner;  // expression (or predicate, for COUNT) under the aggregate;
                  // nullptr encodes COUNT(*)

  std::string ToString() const;
};

/// A full what-if statement:
///   Use ... [When ...] Update(B)=f [And Update(B2)=f2 ...]
///   Output agg(...) [For ...]
struct WhatIfStmt {
  UseClause use;
  ExprPtr when;  // nullable
  std::vector<UpdateClause> updates;
  OutputClause output;
  ExprPtr for_pred;  // nullable

  std::string ToString() const;
};

// ---------------------------------------------------------------------------
// How-to (§4.1)
// ---------------------------------------------------------------------------

/// One atom of the Limit operator.
enum class LimitKind {
  kAbsRange,   // l <= Post(A) <= h (either side optional)
  kRelShift,   // Post(A) <= Pre(A) + c   /  >=
  kRelScale,   // Post(A) <= Pre(A) * c   /  >=
  kL1,         // L1(Pre(A), Post(A)) <= theta
  kInSet,      // Post(A) In (v1, v2, ...)
};

const char* LimitKindName(LimitKind kind);

struct LimitItem {
  LimitKind kind = LimitKind::kAbsRange;
  std::string attribute;
  std::optional<double> lo;       // kAbsRange lower bound
  std::optional<double> hi;       // kAbsRange upper bound / kL1 theta /
                                  // kRelShift-kRelScale upper constant
  bool upper_is_bound = true;     // kRelShift/kRelScale: true for <=
  std::vector<Value> values;      // kInSet

  std::string ToString() const;
};

/// A full how-to statement:
///   Use ... [When ...] HowToUpdate A1, A2 [Limit ...]
///   ToMaximize|ToMinimize agg(Post(Y)) [For ...]
struct HowToStmt {
  UseClause use;
  ExprPtr when;  // nullable
  std::vector<std::string> update_attributes;
  std::vector<LimitItem> limits;
  bool maximize = true;
  AggKind objective_agg = AggKind::kAvg;
  ExprPtr objective_inner;  // expression under the aggregate
  ExprPtr for_pred;         // nullable

  std::string ToString() const;
};

/// Top-level parse result: exactly one of these is set.
struct Statement {
  std::unique_ptr<SelectStmt> select;
  std::unique_ptr<WhatIfStmt> whatif;
  std::unique_ptr<HowToStmt> howto;

  std::string ToString() const;
};

// ---------------------------------------------------------------------------
// Expression utilities used by the compiler layers
// ---------------------------------------------------------------------------

/// Collects the column names referenced under `expr` (ignoring qualifiers),
/// appending to `out`, de-duplicated, preserving first-seen order.
void CollectColumnRefs(const Expr& expr, std::vector<std::string>* out);

/// True if any node under `expr` is Post(...).
bool ContainsPost(const Expr& expr);

/// True if any node under `expr` is Pre(...).
bool ContainsPre(const Expr& expr);

/// Splits a conjunction into its top-level AND terms (each term cloned).
std::vector<ExprPtr> SplitConjunction(const Expr& expr);

/// Splits a disjunction into its top-level OR terms (each term cloned).
std::vector<ExprPtr> SplitDisjunction(const Expr& expr);

}  // namespace hyper::sql

#endif  // HYPER_SQL_AST_H_
