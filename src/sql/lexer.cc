#include "sql/lexer.h"

#include <cctype>

#include "common/strings.h"

namespace hyper::sql {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEnd: return "end-of-input";
    case TokenKind::kIdent: return "identifier";
    case TokenKind::kInt: return "integer";
    case TokenKind::kDouble: return "double";
    case TokenKind::kString: return "string";
    case TokenKind::kComma: return "','";
    case TokenKind::kDot: return "'.'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kPercent: return "'%'";
    case TokenKind::kEq: return "'='";
    case TokenKind::kNe: return "'!='";
    case TokenKind::kLt: return "'<'";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kGt: return "'>'";
    case TokenKind::kGe: return "'>='";
  }
  return "?";
}

std::string Token::ToString() const {
  switch (kind) {
    case TokenKind::kIdent: return text;
    case TokenKind::kString: return "'" + text + "'";
    case TokenKind::kInt: return std::to_string(int_value);
    case TokenKind::kDouble: return StrFormat("%g", double_value);
    default: return TokenKindName(kind);
  }
}

char Lexer::Peek(size_t ahead) const {
  return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
}

char Lexer::Advance() {
  char c = text_[pos_++];
  if (c == '\n') {
    ++line_;
    column_ = 1;
  } else {
    ++column_;
  }
  return c;
}

Status Lexer::Error(const std::string& message) const {
  return Status::ParseError(
      StrFormat("lex error at %d:%d: %s", line_, column_, message.c_str()));
}

Result<std::vector<Token>> Lexer::Tokenize() {
  std::vector<Token> out;
  while (!AtEnd()) {
    // Skip whitespace and comments.
    char c = Peek();
    if (std::isspace(static_cast<unsigned char>(c))) {
      Advance();
      continue;
    }
    if (c == '-' && Peek(1) == '-') {
      while (!AtEnd() && Peek() != '\n') Advance();
      continue;
    }
    HYPER_RETURN_NOT_OK(LexOne(&out));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.line = line_;
  end.column = column_;
  out.push_back(end);
  return out;
}

Status Lexer::LexOne(std::vector<Token>* out) {
  Token tok;
  tok.line = line_;
  tok.column = column_;
  const char c = Peek();

  auto single = [&](TokenKind kind) {
    Advance();
    tok.kind = kind;
    out->push_back(tok);
    return Status::OK();
  };

  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
    std::string ident;
    while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                        Peek() == '_')) {
      ident.push_back(Advance());
    }
    tok.kind = TokenKind::kIdent;
    tok.text = std::move(ident);
    out->push_back(tok);
    return Status::OK();
  }

  if (std::isdigit(static_cast<unsigned char>(c)) ||
      (c == '.' && std::isdigit(static_cast<unsigned char>(Peek(1))))) {
    std::string num;
    bool is_double = false;
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
      num.push_back(Advance());
    }
    if (!AtEnd() && Peek() == '.' &&
        std::isdigit(static_cast<unsigned char>(Peek(1)))) {
      is_double = true;
      num.push_back(Advance());
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        num.push_back(Advance());
      }
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      size_t look = 1;
      if (Peek(look) == '+' || Peek(look) == '-') ++look;
      if (std::isdigit(static_cast<unsigned char>(Peek(look)))) {
        is_double = true;
        num.push_back(Advance());  // e
        if (Peek() == '+' || Peek() == '-') num.push_back(Advance());
        while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
          num.push_back(Advance());
        }
      }
    }
    if (is_double) {
      tok.kind = TokenKind::kDouble;
      tok.double_value = std::stod(num);
    } else {
      tok.kind = TokenKind::kInt;
      tok.int_value = std::stoll(num);
    }
    out->push_back(tok);
    return Status::OK();
  }

  if (c == '\'') {
    Advance();  // opening quote
    std::string contents;
    while (true) {
      if (AtEnd()) return Error("unterminated string literal");
      char ch = Advance();
      if (ch == '\'') {
        if (Peek() == '\'') {  // '' escapes a quote
          contents.push_back('\'');
          Advance();
          continue;
        }
        break;
      }
      contents.push_back(ch);
    }
    tok.kind = TokenKind::kString;
    tok.text = std::move(contents);
    out->push_back(tok);
    return Status::OK();
  }

  switch (c) {
    case ',': return single(TokenKind::kComma);
    case '.': return single(TokenKind::kDot);
    case '(': return single(TokenKind::kLParen);
    case ')': return single(TokenKind::kRParen);
    case '*': return single(TokenKind::kStar);
    case '+': return single(TokenKind::kPlus);
    case '-': return single(TokenKind::kMinus);
    case '/': return single(TokenKind::kSlash);
    case '%': return single(TokenKind::kPercent);
    case '=': return single(TokenKind::kEq);
    case '!':
      Advance();
      if (Peek() == '=') {
        Advance();
        tok.kind = TokenKind::kNe;
        out->push_back(tok);
        return Status::OK();
      }
      return Error("expected '=' after '!'");
    case '<':
      Advance();
      if (Peek() == '=') {
        Advance();
        tok.kind = TokenKind::kLe;
      } else if (Peek() == '>') {
        Advance();
        tok.kind = TokenKind::kNe;
      } else {
        tok.kind = TokenKind::kLt;
      }
      out->push_back(tok);
      return Status::OK();
    case '>':
      Advance();
      if (Peek() == '=') {
        Advance();
        tok.kind = TokenKind::kGe;
      } else {
        tok.kind = TokenKind::kGt;
      }
      out->push_back(tok);
      return Status::OK();
    default:
      return Error(StrFormat("unexpected character '%c'", c));
  }
}

Result<std::vector<Token>> TokenizeSql(const std::string& text) {
  Lexer lexer(text);
  return lexer.Tokenize();
}

}  // namespace hyper::sql
