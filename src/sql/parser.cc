#include "sql/parser.h"

#include "common/logging.h"
#include "common/strings.h"
#include "sql/lexer.h"

namespace hyper::sql {

namespace {

/// Words that cannot be used as bare column identifiers.
bool IsReservedKeyword(const std::string& word) {
  static const char* kReserved[] = {
      "SELECT", "FROM",   "WHERE",      "GROUP",      "BY",
      "AS",     "AND",    "OR",         "NOT",        "IN",
      "USE",    "WHEN",   "UPDATE",     "OUTPUT",     "FOR",
      "PRE",    "POST",   "HOWTOUPDATE", "LIMIT",     "TOMAXIMIZE",
      "TOMINIMIZE", "TRUE", "FALSE",    "NULL",       "BETWEEN",
  };
  for (const char* kw : kReserved) {
    if (EqualsIgnoreCase(word, kw)) return true;
  }
  return false;
}

bool IsAggName(const std::string& word, AggKind* kind) {
  if (EqualsIgnoreCase(word, "SUM")) {
    *kind = AggKind::kSum;
    return true;
  }
  if (EqualsIgnoreCase(word, "AVG") || EqualsIgnoreCase(word, "AVERAGE")) {
    *kind = AggKind::kAvg;
    return true;
  }
  if (EqualsIgnoreCase(word, "COUNT")) {
    *kind = AggKind::kCount;
    return true;
  }
  return false;
}

BinaryOp ComparisonOpFor(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEq: return BinaryOp::kEq;
    case TokenKind::kNe: return BinaryOp::kNe;
    case TokenKind::kLt: return BinaryOp::kLt;
    case TokenKind::kLe: return BinaryOp::kLe;
    case TokenKind::kGt: return BinaryOp::kGt;
    case TokenKind::kGe: return BinaryOp::kGe;
    default: HYPER_CHECK(false && "not a comparison token"); return BinaryOp::kEq;
  }
}

bool IsComparisonToken(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEq:
    case TokenKind::kNe:
    case TokenKind::kLt:
    case TokenKind::kLe:
    case TokenKind::kGt:
    case TokenKind::kGe:
      return true;
    default:
      return false;
  }
}

}  // namespace

const Token& Parser::Peek(size_t ahead) const {
  const size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
  return tokens_[i];
}

const Token& Parser::Advance() {
  const Token& tok = tokens_[pos_];
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return tok;
}

bool Parser::Match(TokenKind kind) {
  if (Check(kind)) {
    Advance();
    return true;
  }
  return false;
}

Status Parser::Expect(TokenKind kind, const char* context) {
  if (Check(kind)) {
    Advance();
    return Status::OK();
  }
  return ErrorHere(StrFormat("expected %s %s, found %s", TokenKindName(kind),
                             context, Peek().ToString().c_str()));
}

bool Parser::CheckKeyword(const char* kw, size_t ahead) const {
  const Token& tok = Peek(ahead);
  return tok.kind == TokenKind::kIdent && EqualsIgnoreCase(tok.text, kw);
}

bool Parser::MatchKeyword(const char* kw) {
  if (CheckKeyword(kw)) {
    Advance();
    return true;
  }
  return false;
}

Status Parser::ExpectKeyword(const char* kw, const char* context) {
  if (MatchKeyword(kw)) return Status::OK();
  return ErrorHere(StrFormat("expected keyword %s %s, found %s", kw, context,
                             Peek().ToString().c_str()));
}

Status Parser::ErrorHere(const std::string& message) const {
  const Token& tok = Peek();
  return Status::ParseError(
      StrFormat("parse error at %d:%d: %s", tok.line, tok.column,
                message.c_str()));
}

Result<Statement> Parser::ParseStatement() {
  Statement stmt;
  if (CheckKeyword("SELECT")) {
    HYPER_ASSIGN_OR_RETURN(stmt.select, ParseSelect());
  } else if (CheckKeyword("USE")) {
    HYPER_ASSIGN_OR_RETURN(UseClause use, ParseUse());
    ExprPtr when;
    if (MatchKeyword("WHEN")) {
      HYPER_ASSIGN_OR_RETURN(when, ParseExpr());
    }
    if (CheckKeyword("UPDATE")) {
      HYPER_ASSIGN_OR_RETURN(stmt.whatif,
                             ParseWhatIfTail(std::move(use), std::move(when)));
    } else if (CheckKeyword("HOWTOUPDATE")) {
      HYPER_ASSIGN_OR_RETURN(stmt.howto,
                             ParseHowToTail(std::move(use), std::move(when)));
    } else {
      return ErrorHere("expected Update or HowToUpdate after Use/When");
    }
  } else {
    return ErrorHere("expected Select or Use at start of statement");
  }
  if (!Check(TokenKind::kEnd)) {
    return ErrorHere("unexpected trailing input after statement");
  }
  return stmt;
}

Result<std::unique_ptr<SelectStmt>> Parser::ParseSelectOnly() {
  HYPER_ASSIGN_OR_RETURN(auto select, ParseSelect());
  if (!Check(TokenKind::kEnd)) {
    return ErrorHere("unexpected trailing input after select");
  }
  return select;
}

Result<ExprPtr> Parser::ParseExprOnly() {
  HYPER_ASSIGN_OR_RETURN(auto expr, ParseExpr());
  if (!Check(TokenKind::kEnd)) {
    return ErrorHere("unexpected trailing input after expression");
  }
  return expr;
}

Result<std::unique_ptr<SelectStmt>> Parser::ParseSelect() {
  HYPER_RETURN_NOT_OK(ExpectKeyword("SELECT", "to begin query"));
  auto stmt = std::make_unique<SelectStmt>();
  // Select list.
  while (true) {
    SelectItem item;
    AggKind agg;
    if (Peek().kind == TokenKind::kIdent && IsAggName(Peek().text, &agg) &&
        Peek(1).kind == TokenKind::kLParen) {
      Advance();  // aggregate name
      Advance();  // '('
      item.agg = agg;
      if (Check(TokenKind::kStar)) {
        Advance();
        item.expr = MakeStar();
      } else {
        HYPER_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      }
      HYPER_RETURN_NOT_OK(Expect(TokenKind::kRParen, "after aggregate argument"));
    } else {
      HYPER_ASSIGN_OR_RETURN(item.expr, ParseExpr());
    }
    if (MatchKeyword("AS")) {
      if (Peek().kind != TokenKind::kIdent) {
        return ErrorHere("expected alias identifier after As");
      }
      item.alias = Advance().text;
    }
    stmt->items.push_back(std::move(item));
    if (!Match(TokenKind::kComma)) break;
  }
  // From.
  HYPER_RETURN_NOT_OK(ExpectKeyword("FROM", "after select list"));
  while (true) {
    if (Peek().kind != TokenKind::kIdent || IsReservedKeyword(Peek().text)) {
      return ErrorHere("expected table name in From clause");
    }
    TableRef ref;
    ref.table = Advance().text;
    if (MatchKeyword("AS")) {
      if (Peek().kind != TokenKind::kIdent) {
        return ErrorHere("expected alias identifier after As");
      }
      ref.alias = Advance().text;
    } else if (Peek().kind == TokenKind::kIdent &&
               !IsReservedKeyword(Peek().text)) {
      ref.alias = Advance().text;  // bare alias
    }
    stmt->from.push_back(std::move(ref));
    if (!Match(TokenKind::kComma)) break;
  }
  // Where.
  if (MatchKeyword("WHERE")) {
    HYPER_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
  }
  // Group By.
  if (CheckKeyword("GROUP")) {
    Advance();
    HYPER_RETURN_NOT_OK(ExpectKeyword("BY", "after Group"));
    while (true) {
      HYPER_ASSIGN_OR_RETURN(ExprPtr g, ParseExpr());
      stmt->group_by.push_back(std::move(g));
      if (!Match(TokenKind::kComma)) break;
    }
  }
  return stmt;
}

Result<UseClause> Parser::ParseUse() {
  HYPER_RETURN_NOT_OK(ExpectKeyword("USE", "to begin hypothetical query"));
  UseClause use;
  if (Match(TokenKind::kLParen)) {
    HYPER_ASSIGN_OR_RETURN(use.select, ParseSelect());
    HYPER_RETURN_NOT_OK(Expect(TokenKind::kRParen, "after embedded select"));
    return use;
  }
  if (Peek().kind != TokenKind::kIdent || IsReservedKeyword(Peek().text)) {
    return ErrorHere("expected relation or view name after Use");
  }
  std::string name = Advance().text;
  if (MatchKeyword("AS")) {
    use.view_name = std::move(name);
    HYPER_RETURN_NOT_OK(Expect(TokenKind::kLParen, "after view name"));
    HYPER_ASSIGN_OR_RETURN(use.select, ParseSelect());
    HYPER_RETURN_NOT_OK(Expect(TokenKind::kRParen, "after embedded select"));
    return use;
  }
  use.table = std::move(name);
  return use;
}

Result<UpdateClause> Parser::ParseUpdateClause() {
  HYPER_RETURN_NOT_OK(ExpectKeyword("UPDATE", "to begin update clause"));
  HYPER_RETURN_NOT_OK(Expect(TokenKind::kLParen, "after Update"));
  if (Peek().kind != TokenKind::kIdent) {
    return ErrorHere("expected attribute name inside Update(...)");
  }
  UpdateClause clause;
  clause.attribute = Advance().text;
  HYPER_RETURN_NOT_OK(Expect(TokenKind::kRParen, "after update attribute"));
  HYPER_RETURN_NOT_OK(Expect(TokenKind::kEq, "after Update(attr)"));

  // RHS shapes: <const>, <const> * Pre(B), <const> + Pre(B),
  // Pre(B) * <const>, Pre(B) + <const>.
  auto parse_constant = [&]() -> Result<Value> {
    bool negate = Match(TokenKind::kMinus);
    const Token& tok = Peek();
    if (tok.kind == TokenKind::kInt) {
      Advance();
      return Value::Int(negate ? -tok.int_value : tok.int_value);
    }
    if (tok.kind == TokenKind::kDouble) {
      Advance();
      return Value::Double(negate ? -tok.double_value : tok.double_value);
    }
    if (!negate && tok.kind == TokenKind::kString) {
      Advance();
      return Value::String(tok.text);
    }
    if (!negate && tok.kind == TokenKind::kIdent &&
        EqualsIgnoreCase(tok.text, "TRUE")) {
      Advance();
      return Value::Bool(true);
    }
    if (!negate && tok.kind == TokenKind::kIdent &&
        EqualsIgnoreCase(tok.text, "FALSE")) {
      Advance();
      return Value::Bool(false);
    }
    return Status(StatusCode::kParseError,
                  StrFormat("parse error at %d:%d: expected constant in "
                            "update function, found %s",
                            tok.line, tok.column, tok.ToString().c_str()));
  };

  auto parse_pre_ref = [&]() -> Status {
    HYPER_RETURN_NOT_OK(ExpectKeyword("PRE", "in update function"));
    HYPER_RETURN_NOT_OK(Expect(TokenKind::kLParen, "after Pre"));
    if (Peek().kind != TokenKind::kIdent) {
      return ErrorHere("expected attribute name inside Pre(...)");
    }
    const std::string attr = Advance().text;
    if (!EqualsIgnoreCase(attr, clause.attribute)) {
      return ErrorHere("Pre(" + attr + ") must reference the updated attribute '" +
                       clause.attribute + "'");
    }
    HYPER_RETURN_NOT_OK(Expect(TokenKind::kRParen, "after Pre attribute"));
    return Status::OK();
  };

  if (CheckKeyword("PRE")) {
    // Pre(B) * c  |  Pre(B) + c
    HYPER_RETURN_NOT_OK(parse_pre_ref());
    if (Match(TokenKind::kStar)) {
      clause.func = UpdateFuncKind::kScale;
    } else if (Match(TokenKind::kPlus)) {
      clause.func = UpdateFuncKind::kShift;
    } else if (Match(TokenKind::kMinus)) {
      clause.func = UpdateFuncKind::kShift;
      HYPER_ASSIGN_OR_RETURN(Value c, parse_constant());
      HYPER_ASSIGN_OR_RETURN(double d, c.AsDouble());
      clause.constant = Value::Double(-d);
      return clause;
    } else {
      return ErrorHere("expected '*' or '+' after Pre(attr) in update function");
    }
    HYPER_ASSIGN_OR_RETURN(clause.constant, parse_constant());
    return clause;
  }

  HYPER_ASSIGN_OR_RETURN(Value c, parse_constant());
  if (Match(TokenKind::kStar)) {
    clause.func = UpdateFuncKind::kScale;
    clause.constant = std::move(c);
    HYPER_RETURN_NOT_OK(parse_pre_ref());
    return clause;
  }
  if (Match(TokenKind::kPlus)) {
    clause.func = UpdateFuncKind::kShift;
    clause.constant = std::move(c);
    HYPER_RETURN_NOT_OK(parse_pre_ref());
    return clause;
  }
  clause.func = UpdateFuncKind::kSet;
  clause.constant = std::move(c);
  return clause;
}

Result<AggKind> Parser::ParseAggName(const char* context) {
  AggKind agg;
  if (Peek().kind == TokenKind::kIdent && IsAggName(Peek().text, &agg)) {
    Advance();
    return agg;
  }
  return ErrorHere(StrFormat("expected aggregate (Sum/Avg/Count) %s, found %s",
                             context, Peek().ToString().c_str()));
}

Result<OutputClause> Parser::ParseOutputClause() {
  HYPER_RETURN_NOT_OK(ExpectKeyword("OUTPUT", "to begin output clause"));
  OutputClause out;
  HYPER_ASSIGN_OR_RETURN(out.agg, ParseAggName("in Output clause"));
  HYPER_RETURN_NOT_OK(Expect(TokenKind::kLParen, "after aggregate"));
  if (Check(TokenKind::kStar)) {
    Advance();
    out.inner = nullptr;  // COUNT(*)
  } else {
    HYPER_ASSIGN_OR_RETURN(out.inner, ParseExpr());
  }
  HYPER_RETURN_NOT_OK(Expect(TokenKind::kRParen, "after aggregate argument"));
  return out;
}

Result<std::unique_ptr<WhatIfStmt>> Parser::ParseWhatIfTail(UseClause use,
                                                            ExprPtr when) {
  auto stmt = std::make_unique<WhatIfStmt>();
  stmt->use = std::move(use);
  stmt->when = std::move(when);
  while (true) {
    HYPER_ASSIGN_OR_RETURN(UpdateClause clause, ParseUpdateClause());
    stmt->updates.push_back(std::move(clause));
    // Multiple updates chain with And (§3.1).
    if (CheckKeyword("AND") && CheckKeyword("UPDATE", 1)) {
      Advance();  // And
      continue;
    }
    break;
  }
  HYPER_ASSIGN_OR_RETURN(stmt->output, ParseOutputClause());
  if (MatchKeyword("FOR")) {
    HYPER_ASSIGN_OR_RETURN(stmt->for_pred, ParseExpr());
  }
  return stmt;
}

Result<LimitItem> Parser::ParseLimitItem() {
  LimitItem item;

  auto expect_attr_in = [&](const char* wrapper) -> Result<std::string> {
    HYPER_RETURN_NOT_OK(ExpectKeyword(wrapper, "in Limit clause"));
    HYPER_RETURN_NOT_OK(Expect(TokenKind::kLParen, "in Limit clause"));
    if (Peek().kind != TokenKind::kIdent) {
      return ErrorHere("expected attribute name in Limit clause");
    }
    std::string attr = Advance().text;
    HYPER_RETURN_NOT_OK(Expect(TokenKind::kRParen, "in Limit clause"));
    return attr;
  };

  auto parse_number = [&]() -> Result<double> {
    bool negate = Match(TokenKind::kMinus);
    const Token& tok = Peek();
    double v = 0;
    if (tok.kind == TokenKind::kInt) {
      v = static_cast<double>(tok.int_value);
    } else if (tok.kind == TokenKind::kDouble) {
      v = tok.double_value;
    } else {
      return Status(StatusCode::kParseError,
                    StrFormat("parse error at %d:%d: expected number in "
                              "Limit clause, found %s",
                              tok.line, tok.column, tok.ToString().c_str()));
    }
    Advance();
    return negate ? -v : v;
  };

  // Form 1: L1(Pre(A), Post(A)) <= theta
  if (CheckKeyword("L1")) {
    Advance();
    HYPER_RETURN_NOT_OK(Expect(TokenKind::kLParen, "after L1"));
    HYPER_ASSIGN_OR_RETURN(std::string a1, expect_attr_in("PRE"));
    HYPER_RETURN_NOT_OK(Expect(TokenKind::kComma, "between L1 arguments"));
    HYPER_ASSIGN_OR_RETURN(std::string a2, expect_attr_in("POST"));
    HYPER_RETURN_NOT_OK(Expect(TokenKind::kRParen, "after L1 arguments"));
    if (!EqualsIgnoreCase(a1, a2)) {
      return ErrorHere("L1 bound must reference one attribute (got '" + a1 +
                       "' and '" + a2 + "')");
    }
    HYPER_RETURN_NOT_OK(Expect(TokenKind::kLe, "after L1(...)"));
    HYPER_ASSIGN_OR_RETURN(double theta, parse_number());
    item.kind = LimitKind::kL1;
    item.attribute = std::move(a1);
    item.hi = theta;
    return item;
  }

  // Form 2: <num> <= Post(A) [<= <num>]
  if (Peek().kind == TokenKind::kInt || Peek().kind == TokenKind::kDouble ||
      Peek().kind == TokenKind::kMinus) {
    HYPER_ASSIGN_OR_RETURN(double lo, parse_number());
    HYPER_RETURN_NOT_OK(Expect(TokenKind::kLe, "after lower bound"));
    HYPER_ASSIGN_OR_RETURN(item.attribute, expect_attr_in("POST"));
    item.kind = LimitKind::kAbsRange;
    item.lo = lo;
    if (Match(TokenKind::kLe)) {
      HYPER_ASSIGN_OR_RETURN(double hi, parse_number());
      item.hi = hi;
    }
    return item;
  }

  // Forms starting with Post(A).
  HYPER_ASSIGN_OR_RETURN(item.attribute, expect_attr_in("POST"));
  if (MatchKeyword("IN")) {
    HYPER_RETURN_NOT_OK(Expect(TokenKind::kLParen, "after In"));
    item.kind = LimitKind::kInSet;
    while (true) {
      const Token& tok = Peek();
      if (tok.kind == TokenKind::kString) {
        item.values.push_back(Value::String(tok.text));
        Advance();
      } else if (tok.kind == TokenKind::kInt) {
        item.values.push_back(Value::Int(tok.int_value));
        Advance();
      } else if (tok.kind == TokenKind::kDouble) {
        item.values.push_back(Value::Double(tok.double_value));
        Advance();
      } else {
        return ErrorHere("expected literal in In-set");
      }
      if (!Match(TokenKind::kComma)) break;
    }
    HYPER_RETURN_NOT_OK(Expect(TokenKind::kRParen, "after In-set"));
    return item;
  }

  bool upper;
  if (Match(TokenKind::kLe)) {
    upper = true;
  } else if (Match(TokenKind::kGe)) {
    upper = false;
  } else {
    return ErrorHere("expected '<=', '>=' or In after Post(attr) in Limit");
  }

  if (CheckKeyword("PRE")) {
    // Post(A) <= Pre(A) + c   |  Post(A) <= Pre(A) * c
    HYPER_ASSIGN_OR_RETURN(std::string pre_attr, expect_attr_in("PRE"));
    if (!EqualsIgnoreCase(pre_attr, item.attribute)) {
      return ErrorHere("relative Limit must reference one attribute");
    }
    if (Match(TokenKind::kPlus)) {
      item.kind = LimitKind::kRelShift;
    } else if (Match(TokenKind::kStar)) {
      item.kind = LimitKind::kRelScale;
    } else {
      return ErrorHere("expected '+' or '*' after Pre(attr) in Limit");
    }
    HYPER_ASSIGN_OR_RETURN(double c, parse_number());
    item.hi = c;
    item.upper_is_bound = upper;
    return item;
  }

  HYPER_ASSIGN_OR_RETURN(double bound, parse_number());
  item.kind = LimitKind::kAbsRange;
  if (upper) {
    item.hi = bound;
    // Allow chained `Post(A) <= h` without lower bound, or `>=` after.
  } else {
    item.lo = bound;
  }
  return item;
}

Result<std::unique_ptr<HowToStmt>> Parser::ParseHowToTail(UseClause use,
                                                          ExprPtr when) {
  auto stmt = std::make_unique<HowToStmt>();
  stmt->use = std::move(use);
  stmt->when = std::move(when);
  HYPER_RETURN_NOT_OK(ExpectKeyword("HOWTOUPDATE", "to begin how-to clause"));
  while (true) {
    if (Peek().kind != TokenKind::kIdent || IsReservedKeyword(Peek().text)) {
      return ErrorHere("expected attribute name in HowToUpdate list");
    }
    stmt->update_attributes.push_back(Advance().text);
    if (!Match(TokenKind::kComma)) break;
  }
  if (MatchKeyword("LIMIT")) {
    while (true) {
      HYPER_ASSIGN_OR_RETURN(LimitItem item, ParseLimitItem());
      stmt->limits.push_back(std::move(item));
      if (!MatchKeyword("AND")) break;
    }
  }
  if (MatchKeyword("TOMAXIMIZE")) {
    stmt->maximize = true;
  } else if (MatchKeyword("TOMINIMIZE")) {
    stmt->maximize = false;
  } else {
    return ErrorHere("expected ToMaximize or ToMinimize");
  }
  HYPER_ASSIGN_OR_RETURN(stmt->objective_agg, ParseAggName("in objective"));
  HYPER_RETURN_NOT_OK(Expect(TokenKind::kLParen, "after objective aggregate"));
  if (Check(TokenKind::kStar)) {
    Advance();
    stmt->objective_inner = nullptr;
  } else {
    HYPER_ASSIGN_OR_RETURN(stmt->objective_inner, ParseExpr());
  }
  HYPER_RETURN_NOT_OK(Expect(TokenKind::kRParen, "after objective argument"));
  if (MatchKeyword("FOR")) {
    HYPER_ASSIGN_OR_RETURN(stmt->for_pred, ParseExpr());
  }
  return stmt;
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

Result<ExprPtr> Parser::ParseExpr() { return ParseOr(); }

Result<ExprPtr> Parser::ParseOr() {
  HYPER_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
  while (CheckKeyword("OR")) {
    Advance();
    HYPER_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
    lhs = MakeBinary(BinaryOp::kOr, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseAnd() {
  HYPER_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
  while (CheckKeyword("AND")) {
    // What-if statements chain multiple Update clauses with And; leave that
    // And for the statement parser.
    if (CheckKeyword("UPDATE", 1)) break;
    Advance();
    HYPER_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
    lhs = MakeBinary(BinaryOp::kAnd, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseNot() {
  if (MatchKeyword("NOT")) {
    HYPER_ASSIGN_OR_RETURN(ExprPtr inner, ParseNot());
    return MakeNot(std::move(inner));
  }
  return ParseComparison();
}

Result<ExprPtr> Parser::ParseComparison() {
  HYPER_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());

  if (MatchKeyword("IN")) {
    HYPER_RETURN_NOT_OK(Expect(TokenKind::kLParen, "after In"));
    std::vector<ExprPtr> items;
    while (true) {
      HYPER_ASSIGN_OR_RETURN(ExprPtr item, ParseExpr());
      items.push_back(std::move(item));
      if (!Match(TokenKind::kComma)) break;
    }
    HYPER_RETURN_NOT_OK(Expect(TokenKind::kRParen, "after In list"));
    return MakeInList(std::move(lhs), std::move(items));
  }

  if (MatchKeyword("BETWEEN")) {
    HYPER_ASSIGN_OR_RETURN(ExprPtr lo, ParseAdditive());
    HYPER_RETURN_NOT_OK(ExpectKeyword("AND", "in Between"));
    HYPER_ASSIGN_OR_RETURN(ExprPtr hi, ParseAdditive());
    ExprPtr ge = MakeBinary(BinaryOp::kGe, lhs->Clone(), std::move(lo));
    ExprPtr le = MakeBinary(BinaryOp::kLe, std::move(lhs), std::move(hi));
    return MakeBinary(BinaryOp::kAnd, std::move(ge), std::move(le));
  }

  if (!IsComparisonToken(Peek().kind)) return lhs;
  BinaryOp op = ComparisonOpFor(Advance().kind);
  HYPER_ASSIGN_OR_RETURN(ExprPtr mid, ParseAdditive());

  // Chained comparison: l <= x <= h desugars to (l <= x) And (x <= h).
  if (IsComparisonToken(Peek().kind)) {
    BinaryOp op2 = ComparisonOpFor(Advance().kind);
    HYPER_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
    ExprPtr first = MakeBinary(op, std::move(lhs), mid->Clone());
    ExprPtr second = MakeBinary(op2, std::move(mid), std::move(rhs));
    return MakeBinary(BinaryOp::kAnd, std::move(first), std::move(second));
  }
  return MakeBinary(op, std::move(lhs), std::move(mid));
}

Result<ExprPtr> Parser::ParseAdditive() {
  HYPER_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
  while (Check(TokenKind::kPlus) || Check(TokenKind::kMinus)) {
    BinaryOp op = Check(TokenKind::kPlus) ? BinaryOp::kAdd : BinaryOp::kSub;
    Advance();
    HYPER_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
    lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseMultiplicative() {
  HYPER_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
  while (Check(TokenKind::kStar) || Check(TokenKind::kSlash)) {
    BinaryOp op = Check(TokenKind::kStar) ? BinaryOp::kMul : BinaryOp::kDiv;
    Advance();
    HYPER_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
    lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseUnary() {
  if (Match(TokenKind::kMinus)) {
    HYPER_ASSIGN_OR_RETURN(ExprPtr inner, ParseUnary());
    return MakeNeg(std::move(inner));
  }
  return ParsePrimary();
}

Result<ExprPtr> Parser::ParsePrimary() {
  const Token& tok = Peek();
  switch (tok.kind) {
    case TokenKind::kInt:
      Advance();
      return MakeLiteral(Value::Int(tok.int_value));
    case TokenKind::kDouble:
      Advance();
      return MakeLiteral(Value::Double(tok.double_value));
    case TokenKind::kString:
      Advance();
      return MakeLiteral(Value::String(tok.text));
    case TokenKind::kLParen: {
      Advance();
      HYPER_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
      HYPER_RETURN_NOT_OK(Expect(TokenKind::kRParen, "to close group"));
      return inner;
    }
    case TokenKind::kIdent:
      break;  // handled below
    default:
      return ErrorHere(StrFormat("unexpected token %s in expression",
                                 tok.ToString().c_str()));
  }

  // Identifier-led forms.
  if (CheckKeyword("TRUE")) {
    Advance();
    return MakeLiteral(Value::Bool(true));
  }
  if (CheckKeyword("FALSE")) {
    Advance();
    return MakeLiteral(Value::Bool(false));
  }
  if (CheckKeyword("NULL")) {
    Advance();
    return MakeLiteral(Value::Null());
  }
  if (CheckKeyword("PRE") && Peek(1).kind == TokenKind::kLParen) {
    Advance();
    Advance();
    HYPER_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
    HYPER_RETURN_NOT_OK(Expect(TokenKind::kRParen, "after Pre argument"));
    return MakePre(std::move(inner));
  }
  if (CheckKeyword("POST") && Peek(1).kind == TokenKind::kLParen) {
    Advance();
    Advance();
    HYPER_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
    HYPER_RETURN_NOT_OK(Expect(TokenKind::kRParen, "after Post argument"));
    return MakePost(std::move(inner));
  }

  // Aggregate or generic function call.
  if (Peek(1).kind == TokenKind::kLParen && !IsReservedKeyword(tok.text)) {
    AggKind agg;
    const bool is_agg = IsAggName(tok.text, &agg);
    std::string fname = tok.text;
    Advance();  // name
    Advance();  // '('
    std::vector<ExprPtr> args;
    if (Check(TokenKind::kStar)) {
      Advance();
      args.push_back(MakeStar());
    } else if (!Check(TokenKind::kRParen)) {
      while (true) {
        HYPER_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
        args.push_back(std::move(arg));
        if (!Match(TokenKind::kComma)) break;
      }
    }
    HYPER_RETURN_NOT_OK(Expect(TokenKind::kRParen, "after function arguments"));
    // Canonicalize aggregate names so later layers match on one spelling.
    if (is_agg) fname = AggKindName(agg);
    return MakeFuncCall(std::move(fname), std::move(args));
  }

  if (IsReservedKeyword(tok.text)) {
    return ErrorHere(StrFormat("unexpected keyword %s in expression",
                               tok.text.c_str()));
  }

  // Column reference, possibly qualified.
  std::string first = Advance().text;
  if (Match(TokenKind::kDot)) {
    if (Peek().kind != TokenKind::kIdent) {
      return ErrorHere("expected attribute name after '.'");
    }
    std::string second = Advance().text;
    return MakeColumnRef(std::move(first), std::move(second));
  }
  return MakeColumnRef("", std::move(first));
}

Result<Statement> ParseSql(const std::string& text) {
  HYPER_ASSIGN_OR_RETURN(std::vector<Token> tokens, TokenizeSql(text));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

Result<ExprPtr> ParseSqlExpr(const std::string& text) {
  HYPER_ASSIGN_OR_RETURN(std::vector<Token> tokens, TokenizeSql(text));
  Parser parser(std::move(tokens));
  return parser.ParseExprOnly();
}

}  // namespace hyper::sql
