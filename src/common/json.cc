#include "common/json.h"

#include <cassert>
#include <charconv>
#include <cmath>
#include <cstdlib>

#include "common/strings.h"

namespace hyper {

namespace {

constexpr size_t kMaxDepth = 100;

/// Recursive-descent parser over a string_view with an explicit cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Run() {
    SkipWs();
    JsonValue value;
    HYPER_RETURN_NOT_OK(ParseValue(&value, 0));
    SkipWs();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Fail(const std::string& what) const {
    return Status::ParseError(StrFormat("json: %s (at offset %zu)",
                                        what.c_str(), pos_));
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, size_t depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        return ParseString(out);
      case 't':
      case 'f':
        return ParseBool(out);
      case 'n':
        return ParseNull(out);
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, size_t depth) {
    ++pos_;  // '{'
    *out = JsonValue::Object();
    SkipWs();
    if (Consume('}')) return Status::OK();
    for (;;) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key");
      }
      JsonValue key;
      HYPER_RETURN_NOT_OK(ParseString(&key));
      SkipWs();
      if (!Consume(':')) return Fail("expected ':' after object key");
      SkipWs();
      JsonValue value;
      HYPER_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      out->Set(key.string_value(), std::move(value));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Fail("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue* out, size_t depth) {
    ++pos_;  // '['
    *out = JsonValue::Array();
    SkipWs();
    if (Consume(']')) return Status::OK();
    for (;;) {
      SkipWs();
      JsonValue value;
      HYPER_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      out->Append(std::move(value));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Fail("expected ',' or ']' in array");
    }
  }

  Status ParseBool(JsonValue* out) {
    if (text_.substr(pos_, 4) == "true") {
      pos_ += 4;
      *out = JsonValue::Bool(true);
      return Status::OK();
    }
    if (text_.substr(pos_, 5) == "false") {
      pos_ += 5;
      *out = JsonValue::Bool(false);
      return Status::OK();
    }
    return Fail("invalid literal");
  }

  Status ParseNull(JsonValue* out) {
    if (text_.substr(pos_, 4) == "null") {
      pos_ += 4;
      *out = JsonValue::Null();
      return Status::OK();
    }
    return Fail("invalid literal");
  }

  Status ParseString(JsonValue* out) {
    ++pos_;  // '"'
    std::string value;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        *out = JsonValue::Str(std::move(value));
        return Status::OK();
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("unescaped control character in string");
      }
      if (c != '\\') {
        value.push_back(c);
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size()) return Fail("dangling escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': value.push_back('"'); break;
        case '\\': value.push_back('\\'); break;
        case '/': value.push_back('/'); break;
        case 'b': value.push_back('\b'); break;
        case 'f': value.push_back('\f'); break;
        case 'n': value.push_back('\n'); break;
        case 'r': value.push_back('\r'); break;
        case 't': value.push_back('\t'); break;
        case 'u': {
          uint32_t cp = 0;
          HYPER_RETURN_NOT_OK(ParseHex4(&cp));
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a low surrogate must follow.
            if (!(Consume('\\') && Consume('u'))) {
              return Fail("lone high surrogate");
            }
            uint32_t low = 0;
            HYPER_RETURN_NOT_OK(ParseHex4(&low));
            if (low < 0xDC00 || low > 0xDFFF) {
              return Fail("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Fail("lone low surrogate");
          }
          AppendUtf8(cp, &value);
          break;
        }
        default:
          return Fail("invalid escape");
      }
    }
    return Fail("unterminated string");
  }

  Status ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Fail("invalid \\u escape");
      }
    }
    *out = value;
    return Status::OK();
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (Consume('-')) {}
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(
                                    text_[pos_]))) {
      return Fail("invalid number");
    }
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    bool integral = true;
    if (Consume('.')) {
      integral = false;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(
                                      text_[pos_]))) {
        return Fail("invalid number");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(
                                      text_[pos_]))) {
        return Fail("invalid exponent");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    const std::string lexeme(text_.substr(start, pos_ - start));
    if (integral) {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(lexeme.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0') {
        *out = JsonValue::Int(static_cast<int64_t>(v));
        return Status::OK();
      }
      // Out of int64 range: fall through to double.
    }
    errno = 0;
    char* end = nullptr;
    const double d = std::strtod(lexeme.c_str(), &end);
    if (end == nullptr || *end != '\0') return Fail("invalid number");
    *out = JsonValue::Number(d);
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

void DumpTo(const JsonValue& value, std::string* out);

void DumpString(std::string_view s, std::string* out) {
  out->push_back('"');
  out->append(JsonEscape(s));
  out->push_back('"');
}

void DumpTo(const JsonValue& value, std::string* out) {
  switch (value.kind()) {
    case JsonValue::Kind::kNull:
      out->append("null");
      break;
    case JsonValue::Kind::kBool:
      out->append(value.bool_value() ? "true" : "false");
      break;
    case JsonValue::Kind::kNumber:
      if (value.is_integer()) {
        out->append(std::to_string(value.int_value()));
      } else {
        out->append(JsonDouble(value.number_value()));
      }
      break;
    case JsonValue::Kind::kString:
      DumpString(value.string_value(), out);
      break;
    case JsonValue::Kind::kArray: {
      out->push_back('[');
      bool first = true;
      for (const JsonValue& v : value.array()) {
        if (!first) out->push_back(',');
        first = false;
        DumpTo(v, out);
      }
      out->push_back(']');
      break;
    }
    case JsonValue::Kind::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, v] : value.members()) {
        if (!first) out->push_back(',');
        first = false;
        DumpString(key, out);
        out->push_back(':');
        DumpTo(v, out);
      }
      out->push_back('}');
      break;
    }
  }
}

}  // namespace

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string JsonValue::GetString(std::string_view key,
                                 std::string fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_string()) ? v->string_value()
                                          : std::move(fallback);
}

double JsonValue::GetNumber(std::string_view key, double fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_number()) ? v->number_value() : fallback;
}

int64_t JsonValue::GetInt(std::string_view key, int64_t fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_number()) ? v->int_value() : fallback;
}

bool JsonValue::GetBool(std::string_view key, bool fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_bool()) ? v->bool_value() : fallback;
}

Result<JsonValue> JsonValue::Parse(std::string_view text) {
  return Parser(text).Run();
}

std::string JsonValue::Dump() const {
  std::string out;
  DumpTo(*this, &out);
  return out;
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out.append("\\\""); break;
      case '\\': out.append("\\\\"); break;
      case '\b': out.append("\\b"); break;
      case '\f': out.append("\\f"); break;
      case '\n': out.append("\\n"); break;
      case '\r': out.append("\\r"); break;
      case '\t': out.append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out.append(StrFormat("\\u%04x", c));
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string JsonDouble(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  if (ec != std::errc()) return "null";  // cannot happen with a 64-byte buf
  return std::string(buf, ptr);
}

// --- JsonWriter -------------------------------------------------------------

void JsonWriter::BeforeValue() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (stack_.empty()) return;
  char& top = stack_.back();
  if (top == 'o' || top == 'a') {
    top = static_cast<char>(top - 32);  // mark "first element written"
  } else {
    out_.push_back(',');
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_.push_back('{');
  stack_.push_back('o');
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  assert(!stack_.empty() && (stack_.back() == 'o' || stack_.back() == 'O'));
  stack_.pop_back();
  out_.push_back('}');
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_.push_back('[');
  stack_.push_back('a');
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  assert(!stack_.empty() && (stack_.back() == 'a' || stack_.back() == 'A'));
  stack_.pop_back();
  out_.push_back(']');
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  assert(!stack_.empty() && (stack_.back() == 'o' || stack_.back() == 'O'));
  BeforeValue();
  out_.push_back('"');
  out_.append(JsonEscape(key));
  out_.append("\":");
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_.push_back('"');
  out_.append(JsonEscape(value));
  out_.push_back('"');
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_.append(std::to_string(value));
  return *this;
}

JsonWriter& JsonWriter::UInt(uint64_t value) {
  BeforeValue();
  out_.append(std::to_string(value));
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  BeforeValue();
  out_.append(JsonDouble(value));
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_.append(value ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_.append("null");
  return *this;
}

JsonWriter& JsonWriter::Raw(std::string_view json) {
  BeforeValue();
  out_.append(json);
  return *this;
}

}  // namespace hyper
