#ifndef HYPER_COMMON_THREAD_ANNOTATIONS_H_
#define HYPER_COMMON_THREAD_ANNOTATIONS_H_

/// Clang Thread Safety Analysis annotations (abseil style). Lock contracts
/// that used to live in comments — "guarded by mu_", "caller holds the
/// section mutex" — become machine-checked attributes: a clang build with
/// -DHYPER_THREAD_SAFETY=ON (which adds -Werror=thread-safety) rejects any
/// access to a GUARDED_BY member without its mutex held, any call to a
/// REQUIRES function without the capability, and any lock/unlock imbalance.
/// Under gcc (and clang without the flag) every macro expands to nothing, so
/// the annotations are zero-cost documentation.
///
/// Vocabulary (see https://clang.llvm.org/docs/ThreadSafetyAnalysis.html):
///   GUARDED_BY(mu)      data member readable/writable only with mu held
///   PT_GUARDED_BY(mu)   pointee (not the pointer) guarded by mu
///   REQUIRES(mu)        function must be called with mu held (and does not
///                       release it)
///   ACQUIRE(mu)/RELEASE(mu)  function acquires / releases mu
///   TRY_ACQUIRE(b, mu)  acquires mu iff the function returns b
///   EXCLUDES(mu)        function must be called with mu NOT held (deadlock
///                       documentation; e.g. callbacks that re-enter a cache)
///   ASSERT_CAPABILITY   runtime assertion that mu is held (not used yet)
///   CAPABILITY / SCOPED_CAPABILITY  class-level markers for mutex types and
///                       RAII lock types (see common/mutex.h)
///   NO_THREAD_SAFETY_ANALYSIS  opt a function out (last resort; say why)

#if defined(__clang__) && (!defined(SWIG))
#define HYPER_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define HYPER_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op off clang
#endif

#define CAPABILITY(x) HYPER_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

#define SCOPED_CAPABILITY HYPER_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

#define GUARDED_BY(x) HYPER_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

#define PT_GUARDED_BY(x) HYPER_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

#define ACQUIRED_BEFORE(...) \
  HYPER_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))

#define ACQUIRED_AFTER(...) \
  HYPER_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))

#define REQUIRES(...) \
  HYPER_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))

#define REQUIRES_SHARED(...) \
  HYPER_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

#define ACQUIRE(...) \
  HYPER_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

#define ACQUIRE_SHARED(...) \
  HYPER_THREAD_ANNOTATION_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))

#define RELEASE(...) \
  HYPER_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))

#define RELEASE_SHARED(...) \
  HYPER_THREAD_ANNOTATION_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))

#define RELEASE_GENERIC(...) \
  HYPER_THREAD_ANNOTATION_ATTRIBUTE__(release_generic_capability(__VA_ARGS__))

#define TRY_ACQUIRE(...) \
  HYPER_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

#define TRY_ACQUIRE_SHARED(...)                 \
  HYPER_THREAD_ANNOTATION_ATTRIBUTE__(          \
      try_acquire_shared_capability(__VA_ARGS__))

#define EXCLUDES(...) \
  HYPER_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

#define ASSERT_CAPABILITY(x) \
  HYPER_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))

#define ASSERT_SHARED_CAPABILITY(x) \
  HYPER_THREAD_ANNOTATION_ATTRIBUTE__(assert_shared_capability(x))

#define RETURN_CAPABILITY(x) \
  HYPER_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

#define NO_THREAD_SAFETY_ANALYSIS \
  HYPER_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

#endif  // HYPER_COMMON_THREAD_ANNOTATIONS_H_
