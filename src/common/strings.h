#ifndef HYPER_COMMON_STRINGS_H_
#define HYPER_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace hyper {

/// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view text, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

/// ASCII lower-casing (the SQL dialect is case-insensitive on keywords).
std::string ToLower(std::string_view text);
std::string ToUpper(std::string_view text);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `text` begins with / ends with the given affix.
bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace hyper

#endif  // HYPER_COMMON_STRINGS_H_
