#ifndef HYPER_COMMON_THREAD_POOL_H_
#define HYPER_COMMON_THREAD_POOL_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/rng.h"
#include "common/thread_annotations.h"

namespace hyper {

/// Derives an independent RNG stream seed from a base seed and a stream id
/// (splitmix64 finalizer). Parallel shards seed `Rng(DeriveStreamSeed(seed,
/// shard))` so every shard draws from its own deterministic stream: results
/// are a function of (seed, shard) alone, never of thread scheduling.
inline uint64_t DeriveStreamSeed(uint64_t base, uint64_t stream) {
  uint64_t z = base + 0x9e3779b97f4a7c15ULL * (stream + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// How ParallelForRange distributes a loop across participants.
///
/// kMorsel (default): participants claim grain-sized morsels from the front
/// of their own deque and steal half from the back of a victim's when theirs
/// runs dry — skewed iterations can't idle workers. kStatic reproduces the
/// pre-morsel behavior (each participant claims its whole contiguous shard,
/// no stealing) and exists for the morsel-vs-static A/B bit-equality tests
/// and benches: callers merge results by index, so answers are identical
/// under either mode — only wall-clock differs.
enum class SchedulingMode : uint8_t { kMorsel = 0, kStatic = 1 };

namespace internal {
inline std::atomic<uint8_t>& SchedulingModeFlag() {
  static std::atomic<uint8_t> mode{static_cast<uint8_t>(SchedulingMode::kMorsel)};
  return mode;
}
}  // namespace internal

inline void SetSchedulingMode(SchedulingMode mode) {
  internal::SchedulingModeFlag().store(static_cast<uint8_t>(mode),
                                       std::memory_order_relaxed);
}

inline SchedulingMode CurrentSchedulingMode() {
  return static_cast<SchedulingMode>(
      internal::SchedulingModeFlag().load(std::memory_order_relaxed));
}

/// A small fixed-size worker pool for sharding independent loops (the
/// what-if engine's block decomposition, bench harnesses). Tasks must not
/// throw: the library communicates failure via Status, and a task's status
/// is the caller's to collect (see ParallelFor usage in whatif/engine.cc).
///
/// This class is the one sanctioned home for raw atomics used to partition
/// loop iterations (see scripts/lint_invariants.py, raw-atomic-partition):
/// engine code expresses parallel loops through ParallelFor/ParallelForRange
/// instead of hand-rolled fetch_add counters.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads) {
    if (num_threads == 0) num_threads = DefaultThreads();
    workers_.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPool() {
    {
      MutexLock lock(&mu_);
      stop_ = true;
    }
    cv_.NotifyAll();
    for (std::thread& t : workers_) t.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Hardware concurrency with a floor of 1.
  static size_t DefaultThreads() {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<size_t>(hw);
  }

  /// The engines' shared thread-budget convention: 0 means "hardware
  /// default", anything else is an explicit cap.
  static size_t ResolveBudget(size_t configured) {
    return configured == 0 ? DefaultThreads() : configured;
  }

  /// Process-wide pool sized to the hardware; created on first use.
  static ThreadPool& Shared() {
    static ThreadPool pool(DefaultThreads());
    return pool;
  }

  /// Runs fn(i) for every i in [0, n). The calling thread participates, so
  /// this works (sequentially) even on a pool of size 0 workers or when the
  /// pool is busy. Blocks until every index has been processed. fn must be
  /// safe to call concurrently from multiple threads.
  ///
  /// `max_parallelism` caps the number of threads touching the loop,
  /// including the caller (0 = no cap beyond the pool size). Engines pass
  /// their configured thread budget here so a `--threads 2` run drives at
  /// most 2 shards at a time even on a 64-core pool. The shard order items
  /// are claimed in is scheduling-dependent either way, so callers must
  /// (and do) merge results by index — answers never depend on the cap.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                   size_t max_parallelism = 0) {
    // Single implementation path: every ParallelFor is a grain-1 morsel
    // loop, so no caller silently keeps a private static split.
    ParallelForRange(
        n, /*grain=*/1,
        [&fn](size_t begin, size_t end) {
          for (size_t i = begin; i < end; ++i) fn(i);
        },
        max_parallelism);
  }

  /// Morsel-driven work-stealing loop: runs fn(begin, end) over disjoint
  /// sub-ranges that exactly cover [0, n). The range is split into one
  /// contiguous shard per participant; each participant pops grain-sized
  /// morsels from the front of its own shard and, when it runs dry, steals
  /// the back half of a victim's remaining shard (steal-half deques), so a
  /// skewed iteration-cost distribution cannot idle workers. The calling
  /// thread participates and the call blocks until every index has been
  /// processed.
  ///
  /// fn must be safe to call concurrently from multiple threads. The set of
  /// (begin, end) ranges fn sees is scheduling-dependent; callers must (and
  /// do) write results into per-index slots and merge them in index order,
  /// so answers are bit-identical at any thread count and under either
  /// SchedulingMode. `max_parallelism` caps participating threads including
  /// the caller (0 = pool size).
  void ParallelForRange(size_t n,
                        size_t grain,
                        const std::function<void(size_t, size_t)>& fn,
                        size_t max_parallelism = 0) {
    if (n == 0) return;
    if (grain == 0) grain = 1;
    // The deques pack (begin, end) into one uint64; recurse over windows in
    // the (never-hit-in-practice) >4G-iteration case.
    constexpr size_t kMaxWindow = size_t{1} << 31;
    if (n > kMaxWindow) {
      for (size_t base = 0; base < n; base += kMaxWindow) {
        const size_t len = std::min(kMaxWindow, n - base);
        ParallelForRange(
            len, grain,
            [&fn, base](size_t b, size_t e) { fn(base + b, base + e); },
            max_parallelism);
      }
      return;
    }
    size_t participants = workers_.size() + 1;  // caller is one
    if (max_parallelism > 0) {
      participants = std::min(participants, max_parallelism);
    }
    participants = std::min(participants, (n + grain - 1) / grain);
    if (participants <= 1 || workers_.empty()) {
      fn(0, n);
      return;
    }
    auto state = std::make_shared<RangeState>(participants);
    state->n = n;
    state->grain = grain;
    state->fn = &fn;
    state->steal = CurrentSchedulingMode() == SchedulingMode::kMorsel;
    for (size_t s = 0; s < participants; ++s) {
      state->deques[s].store(
          RangeState::Pack(n * s / participants, n * (s + 1) / participants),
          std::memory_order_relaxed);
    }
    {
      MutexLock lock(&mu_);
      for (size_t d = 0; d + 1 < participants; ++d) {
        tasks_.push([state] { state->Drive(); });
      }
    }
    cv_.NotifyAll();
    state->Drive();  // caller participates
    state->WaitDone();
  }

 private:
  /// Shared state of one ParallelForRange call. Each participant owns one
  /// deque slot: a packed (begin << 32 | end) range it pops grain-sized
  /// morsels from the front of; thieves CAS the back half away. Every index
  /// in [0, n) lives in exactly one deque or one in-flight morsel at any
  /// moment, and is executed exactly once.
  struct RangeState {
    explicit RangeState(size_t participants) : deques(participants) {}

    static uint64_t Pack(size_t begin, size_t end) {
      return (static_cast<uint64_t>(begin) << 32) | static_cast<uint64_t>(end);
    }

    size_t n = 0;
    size_t grain = 1;
    const std::function<void(size_t, size_t)>* fn = nullptr;
    bool steal = true;
    std::vector<std::atomic<uint64_t>> deques;
    std::atomic<size_t> next_slot{0};
    std::atomic<size_t> done{0};
    /// Guards nothing itself — done/deques are atomics — it exists so the
    /// completion wakeup has a mutex to pair with done_cv.
    Mutex done_mu;
    CondVar done_cv;

    void Run(size_t begin, size_t end) {
      (*fn)(begin, end);
      if (done.fetch_add(end - begin, std::memory_order_acq_rel) +
              (end - begin) ==
          n) {
        MutexLock lock(&done_mu);
        done_cv.NotifyAll();
      }
    }

    /// Claims up to `grain` indices (the whole shard under static
    /// scheduling) from the front of the caller's own deque.
    bool PopFront(size_t slot, size_t* begin, size_t* end) {
      uint64_t cur = deques[slot].load(std::memory_order_acquire);
      for (;;) {
        const size_t b = static_cast<size_t>(cur >> 32);
        const size_t e = static_cast<size_t>(cur & 0xffffffffu);
        if (b >= e) return false;
        const size_t take = steal ? std::min(grain, e - b) : e - b;
        if (deques[slot].compare_exchange_weak(cur, Pack(b + take, e),
                                               std::memory_order_acq_rel,
                                               std::memory_order_acquire)) {
          *begin = b;
          *end = b + take;
          return true;
        }
      }
    }

    /// Claims the back half (rounded up) of the victim's remaining range —
    /// the whole range under static scheduling, which only ever moves
    /// unstarted shards. No ABA hazard: every index is claimed exactly
    /// once, so a deque's packed value can never recur after it changes.
    bool StealBack(size_t victim, size_t* begin, size_t* end) {
      uint64_t cur = deques[victim].load(std::memory_order_acquire);
      for (;;) {
        const size_t b = static_cast<size_t>(cur >> 32);
        const size_t e = static_cast<size_t>(cur & 0xffffffffu);
        if (b >= e) return false;
        const size_t take = steal ? (e - b + 1) / 2 : e - b;
        if (deques[victim].compare_exchange_weak(cur, Pack(b, e - take),
                                                 std::memory_order_acq_rel,
                                                 std::memory_order_acquire)) {
          *begin = e - take;
          *end = e;
          return true;
        }
      }
    }

    void Drive() {
      const size_t slot = next_slot.fetch_add(1, std::memory_order_relaxed);
      if (slot >= deques.size()) return;
      for (;;) {
        size_t b = 0, e = 0;
        if (PopFront(slot, &b, &e)) {
          Run(b, e);
          continue;
        }
        bool stole = false;
        for (size_t k = 1; k < deques.size(); ++k) {
          const size_t victim = (slot + k) % deques.size();
          if (!StealBack(victim, &b, &e)) continue;
          if (!steal) {
            // Static mode still drains leftover whole shards (a queued
            // driver may never get a pool slot — e.g. nested loops on a
            // saturated pool — and someone must finish its shard), it just
            // never splits one.
            Run(b, e);
            stole = true;
            break;
          }
          // Run the first morsel of the stolen range and park the rest in
          // our own deque — empty right now, and only its owner stores to
          // it, so a plain store cannot race a successful CAS.
          const size_t take = std::min(grain, e - b);
          if (e - b > take) {
            deques[slot].store(Pack(b + take, e), std::memory_order_release);
          }
          Run(b, b + take);
          stole = true;
          break;
        }
        // A full scan found nothing to steal: remaining work (if any) is
        // parked in deques whose owners are still driving. Exit; the done
        // counter, not driver exit, signals completion.
        if (!stole) break;
      }
    }

    void WaitDone() {
      MutexLock lock(&done_mu);
      while (done.load(std::memory_order_acquire) < n) {
        done_cv.Wait(done_mu);
      }
    }
  };

  void WorkerLoop() {
    for (;;) {
      std::function<void()> task;
      {
        MutexLock lock(&mu_);
        while (!stop_ && tasks_.empty()) cv_.Wait(mu_);
        if (stop_ && tasks_.empty()) return;
        task = std::move(tasks_.front());
        tasks_.pop();
      }
      task();
    }
  }

  Mutex mu_;
  CondVar cv_;
  std::queue<std::function<void()>> tasks_ GUARDED_BY(mu_);
  /// Started in the constructor, joined in the destructor, and never
  /// mutated in between — safe to size() without mu_.
  std::vector<std::thread> workers_;
  bool stop_ GUARDED_BY(mu_) = false;
};

}  // namespace hyper

#endif  // HYPER_COMMON_THREAD_POOL_H_
