#ifndef HYPER_COMMON_THREAD_POOL_H_
#define HYPER_COMMON_THREAD_POOL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/rng.h"
#include "common/thread_annotations.h"

namespace hyper {

/// Derives an independent RNG stream seed from a base seed and a stream id
/// (splitmix64 finalizer). Parallel shards seed `Rng(DeriveStreamSeed(seed,
/// shard))` so every shard draws from its own deterministic stream: results
/// are a function of (seed, shard) alone, never of thread scheduling.
inline uint64_t DeriveStreamSeed(uint64_t base, uint64_t stream) {
  uint64_t z = base + 0x9e3779b97f4a7c15ULL * (stream + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// A small fixed-size worker pool for sharding independent loops (the
/// what-if engine's block decomposition, bench harnesses). Tasks must not
/// throw: the library communicates failure via Status, and a task's status
/// is the caller's to collect (see ParallelFor usage in whatif/engine.cc).
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads) {
    if (num_threads == 0) num_threads = DefaultThreads();
    workers_.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPool() {
    {
      MutexLock lock(&mu_);
      stop_ = true;
    }
    cv_.NotifyAll();
    for (std::thread& t : workers_) t.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Hardware concurrency with a floor of 1.
  static size_t DefaultThreads() {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<size_t>(hw);
  }

  /// The engines' shared thread-budget convention: 0 means "hardware
  /// default", anything else is an explicit cap.
  static size_t ResolveBudget(size_t configured) {
    return configured == 0 ? DefaultThreads() : configured;
  }

  /// Process-wide pool sized to the hardware; created on first use.
  static ThreadPool& Shared() {
    static ThreadPool pool(DefaultThreads());
    return pool;
  }

  /// Runs fn(i) for every i in [0, n). The calling thread participates, so
  /// this works (sequentially) even on a pool of size 0 workers or when the
  /// pool is busy. Blocks until every index has been processed. fn must be
  /// safe to call concurrently from multiple threads.
  ///
  /// `max_parallelism` caps the number of threads touching the loop,
  /// including the caller (0 = no cap beyond the pool size). Engines pass
  /// their configured thread budget here so a `--threads 2` run drives at
  /// most 2 shards at a time even on a 64-core pool. The shard order items
  /// are claimed in is scheduling-dependent either way, so callers must
  /// (and do) merge results by index — answers never depend on the cap.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                   size_t max_parallelism = 0) {
    if (n == 0) return;
    if (n == 1 || workers_.empty() || max_parallelism == 1) {
      for (size_t i = 0; i < n; ++i) fn(i);
      return;
    }
    auto state = std::make_shared<ForState>();
    state->n = n;
    state->fn = &fn;
    size_t drivers = std::min(workers_.size(), n - 1);
    if (max_parallelism > 0) {
      drivers = std::min(drivers, max_parallelism - 1);  // caller is one
    }
    {
      MutexLock lock(&mu_);
      for (size_t d = 0; d < drivers; ++d) {
        tasks_.push([state] { state->Drive(); });
      }
    }
    cv_.NotifyAll();
    state->Drive();  // caller participates
    state->WaitDone();
  }

 private:
  struct ForState {
    size_t n = 0;
    const std::function<void(size_t)>* fn = nullptr;
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    /// Guards nothing itself — done/next are atomics — it exists so the
    /// completion wakeup has a mutex to pair with done_cv.
    Mutex done_mu;
    CondVar done_cv;

    void Drive() {
      for (;;) {
        const size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) break;
        (*fn)(i);
        if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
          MutexLock lock(&done_mu);
          done_cv.NotifyAll();
        }
      }
    }

    void WaitDone() {
      MutexLock lock(&done_mu);
      while (done.load(std::memory_order_acquire) < n) {
        done_cv.Wait(done_mu);
      }
    }
  };

  void WorkerLoop() {
    for (;;) {
      std::function<void()> task;
      {
        MutexLock lock(&mu_);
        while (!stop_ && tasks_.empty()) cv_.Wait(mu_);
        if (stop_ && tasks_.empty()) return;
        task = std::move(tasks_.front());
        tasks_.pop();
      }
      task();
    }
  }

  Mutex mu_;
  CondVar cv_;
  std::queue<std::function<void()>> tasks_ GUARDED_BY(mu_);
  /// Started in the constructor, joined in the destructor, and never
  /// mutated in between — safe to size() without mu_.
  std::vector<std::thread> workers_;
  bool stop_ GUARDED_BY(mu_) = false;
};

}  // namespace hyper

#endif  // HYPER_COMMON_THREAD_POOL_H_
