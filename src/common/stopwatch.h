#ifndef HYPER_COMMON_STOPWATCH_H_
#define HYPER_COMMON_STOPWATCH_H_

#include <chrono>

namespace hyper {

/// Wall-clock stopwatch used by the benchmark harnesses.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed wall time in seconds since construction or last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace hyper

#endif  // HYPER_COMMON_STOPWATCH_H_
