#ifndef HYPER_COMMON_STATUS_H_
#define HYPER_COMMON_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace hyper {

/// Error taxonomy for the whole library. Mirrors the Arrow/RocksDB idiom:
/// no exceptions cross public API boundaries; fallible operations return a
/// Status (or Result<T> when they also produce a value).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kParseError,
  kUnimplemented,
  kInternal,
  // Resource-governance taxonomy (see common/governance.h): every abort a
  // QueryBudget / CancelToken / admission controller can produce maps to
  // exactly one of these, so callers can distinguish "retry later"
  // (kUnavailable), "retry with a bigger budget" (kDeadlineExceeded /
  // kResourceExhausted) and "the caller gave up" (kCancelled).
  kCancelled,
  kDeadlineExceeded,
  kResourceExhausted,
  kUnavailable,
  // Durable-state taxonomy (see src/durability/): unrecoverable corruption
  // detected in a WAL segment or snapshot — a checksum mismatch mid-log, a
  // replay divergence, a missing log prefix. Distinct from
  // kFailedPrecondition (the data dir is intact but belongs to a different
  // dataset) so operators can tell "restore from backup" from "point the
  // server at the right data".
  kDataLoss,
};

/// Returns a human-readable name for a status code ("InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// A success-or-error outcome carrying a code and a message.
///
/// Usage:
///   Status s = DoThing();
///   if (!s.ok()) return s;
///
/// [[nodiscard]]: ignoring a Status silently swallows the error. The rare
/// call site that genuinely cannot act on a failure must spell out
/// `(void)Thing();` with a comment saying why dropping it is correct —
/// scripts/lint_invariants.py rejects a bare cast with no justification.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// A value-or-error outcome. Holds T on success, a non-OK Status on failure.
///
/// Usage:
///   Result<Table> r = Parse(...);
///   if (!r.ok()) return r.status();
///   Table t = std::move(r).value();
///
/// [[nodiscard]] for the same reason as Status: a dropped Result is a
/// dropped error (and a wasted computation).
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value (success) or a Status (failure) keeps
  /// call sites readable: `return table;` / `return Status::ParseError(...)`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& { EnsureOk(); return *value_; }
  T& value() & { EnsureOk(); return *value_; }
  T&& value() && { EnsureOk(); return *std::move(value_); }

  const T& operator*() const& { EnsureOk(); return *value_; }
  T& operator*() & { EnsureOk(); return *value_; }
  const T* operator->() const { EnsureOk(); return &*value_; }
  T* operator->() { EnsureOk(); return &*value_; }

  /// Returns the value or `fallback` when this Result holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  /// Accessing the value of an errored Result is a programming error;
  /// fail loudly with the underlying status instead of invoking UB.
  void EnsureOk() const {
    if (!value_.has_value()) {
      std::fprintf(stderr, "[hyper] Result::value() on error: %s\n",
                   status_.ToString().c_str());
      std::abort();
    }
  }

  std::optional<T> value_;
  Status status_;
};

/// Propagates a non-OK Status to the caller.
#define HYPER_RETURN_NOT_OK(expr)                \
  do {                                           \
    ::hyper::Status _st = (expr);                \
    if (!_st.ok()) return _st;                   \
  } while (0)

/// Evaluates a Result-returning expression, assigning the value on success
/// and returning the error Status otherwise.
#define HYPER_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value();

#define HYPER_ASSIGN_OR_RETURN_CONCAT(x, y) x##y
#define HYPER_ASSIGN_OR_RETURN_NAME(x, y) HYPER_ASSIGN_OR_RETURN_CONCAT(x, y)
#define HYPER_ASSIGN_OR_RETURN(lhs, expr) \
  HYPER_ASSIGN_OR_RETURN_IMPL(            \
      HYPER_ASSIGN_OR_RETURN_NAME(_result_, __LINE__), lhs, expr)

}  // namespace hyper

#endif  // HYPER_COMMON_STATUS_H_
