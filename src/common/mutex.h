#ifndef HYPER_COMMON_MUTEX_H_
#define HYPER_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace hyper {

/// A std::mutex carrying the CAPABILITY attribute so Clang Thread Safety
/// Analysis can reason about it. libstdc++'s std::mutex is unannotated, so
/// GUARDED_BY(some_std_mutex) checks nothing; GUARDED_BY(some_hyper_Mutex)
/// is enforced under -Werror=thread-safety (see common/thread_annotations.h
/// and the HYPER_THREAD_SAFETY CMake option). Zero overhead: the wrapper is
/// exactly a std::mutex at runtime.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The raw std::mutex, for interop the analysis cannot follow (CondVar's
  /// adopt_lock wait). Callers outside common/mutex.h should not need this.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// RAII lock for Mutex — the scoped capability the analysis tracks:
///
///   MutexLock lock(&mu_);
///   guarded_member_ = ...;  // OK: mu_ is held until end of scope
///
/// Deliberately minimal (no deferred/adoptable/timed modes): every locked
/// region in this codebase is a plain acquire-at-scope-entry.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable paired with Mutex. Wait() atomically releases and
/// reacquires the caller's Mutex via std::condition_variable on the native
/// handle; REQUIRES(mu) teaches the analysis that the capability is held on
/// entry and on return (the release inside the wait is invisible to it,
/// which matches the caller's view: guarded state may only be re-read after
/// Wait returns, when the lock is held again).
///
/// No predicate overload on purpose: the analysis cannot see through a
/// predicate lambda's accesses to guarded members, so waits are written as
///   while (!condition_over_guarded_state) cv_.Wait(mu_);
/// inside the locked region, where every read is checked.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) REQUIRES(mu) NO_THREAD_SAFETY_ANALYSIS {
    // adopt_lock hands the already-held native mutex to a unique_lock for
    // the duration of the wait; release() hands it back without unlocking,
    // so ownership round-trips and the MutexLock destructor stays balanced.
    std::unique_lock<std::mutex> native_lock(mu.native(), std::adopt_lock);
    cv_.wait(native_lock);
    native_lock.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace hyper

#endif  // HYPER_COMMON_MUTEX_H_
