#ifndef HYPER_COMMON_CRC32_H_
#define HYPER_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace hyper {

/// CRC-32C (Castagnoli, polynomial 0x1EDC6F41, reflected) — the checksum
/// guarding every WAL record and snapshot file in src/durability/. Software
/// table implementation; record sizes are small (one hypothetical delta per
/// record), so a byte-at-a-time table walk is never the bottleneck next to
/// the write() + fsync it protects.
///
/// Incremental use: pass the previous return value as `seed` to extend a
/// checksum over multiple buffers. The empty-buffer CRC with seed 0 is 0;
/// the standard check value Crc32c("123456789", 9) == 0xE3069283.
uint32_t Crc32c(const void* data, size_t size, uint32_t seed = 0);

}  // namespace hyper

#endif  // HYPER_COMMON_CRC32_H_
