#ifndef HYPER_COMMON_LOGGING_H_
#define HYPER_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace hyper::internal_logging {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "[hyper] CHECK failed at %s:%d: %s\n", file, line,
               expr);
  std::abort();
}

}  // namespace hyper::internal_logging

/// Invariant check for conditions that indicate a programming error (not a
/// user error — user errors surface as Status). Enabled in all build types:
/// the cost is negligible next to the work the library does per call.
#define HYPER_CHECK(cond)                                             \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::hyper::internal_logging::CheckFailed(__FILE__, __LINE__,      \
                                             #cond);                  \
    }                                                                 \
  } while (0)

/// Debug-only check for hot paths.
#ifndef NDEBUG
#define HYPER_DCHECK(cond) HYPER_CHECK(cond)
#else
#define HYPER_DCHECK(cond) \
  do {                     \
  } while (0)
#endif

#endif  // HYPER_COMMON_LOGGING_H_
