#ifndef HYPER_COMMON_JSON_H_
#define HYPER_COMMON_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace hyper {

/// A minimal, dependency-free JSON document model. This is the wire format
/// of the serving layer (src/net) and the export format of the metrics
/// registry (src/obs): parse on the way in, JsonWriter on the way out.
///
/// Faithfulness notes that matter for the serving layer's bit-equality
/// contract:
///   - Numbers whose lexeme is an integral int64 (no '.', no exponent) are
///     kept as int64, so an intervention constant `2` round-trips as
///     Value::Int(2), exactly what an in-process caller would pass.
///   - Doubles are emitted with std::to_chars (shortest round-trip form),
///     so a served what-if value parses back to the identical bits the
///     engine produced.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}

  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool v) {
    JsonValue j;
    j.kind_ = Kind::kBool;
    j.bool_ = v;
    return j;
  }
  static JsonValue Int(int64_t v) {
    JsonValue j;
    j.kind_ = Kind::kNumber;
    j.is_integer_ = true;
    j.int_ = v;
    j.number_ = static_cast<double>(v);
    return j;
  }
  static JsonValue Number(double v) {
    JsonValue j;
    j.kind_ = Kind::kNumber;
    j.number_ = v;
    return j;
  }
  static JsonValue Str(std::string v) {
    JsonValue j;
    j.kind_ = Kind::kString;
    j.string_ = std::move(v);
    return j;
  }
  static JsonValue Array() {
    JsonValue j;
    j.kind_ = Kind::kArray;
    return j;
  }
  static JsonValue Object() {
    JsonValue j;
    j.kind_ = Kind::kObject;
    return j;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  /// True for numbers parsed from an integral lexeme (fits int64).
  bool is_integer() const { return kind_ == Kind::kNumber && is_integer_; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  int64_t int_value() const {
    return is_integer_ ? int_ : static_cast<int64_t>(number_);
  }
  const std::string& string_value() const { return string_; }
  const std::vector<JsonValue>& array() const { return array_; }
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  void Append(JsonValue v) { array_.push_back(std::move(v)); }
  void Set(std::string key, JsonValue v) {
    members_.emplace_back(std::move(key), std::move(v));
  }

  /// Object member lookup (first match); nullptr when absent or not an
  /// object.
  const JsonValue* Find(std::string_view key) const;

  /// Typed member accessors with defaults, for request-body unpacking.
  std::string GetString(std::string_view key,
                        std::string fallback = "") const;
  double GetNumber(std::string_view key, double fallback = 0.0) const;
  int64_t GetInt(std::string_view key, int64_t fallback = 0) const;
  bool GetBool(std::string_view key, bool fallback = false) const;

  /// Strict parse of a complete JSON document (trailing whitespace only).
  /// Depth-capped; malformed input returns ParseError with an offset.
  static Result<JsonValue> Parse(std::string_view text);

  /// Compact, deterministic serialization (member order preserved).
  std::string Dump() const;

 private:
  Kind kind_;
  bool bool_ = false;
  bool is_integer_ = false;
  double number_ = 0.0;
  int64_t int_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Escapes `text` for embedding inside a JSON string literal (quotes not
/// included).
std::string JsonEscape(std::string_view text);

/// Shortest round-trip rendering of a double (std::to_chars). NaN and
/// infinities — which JSON cannot carry — render as null.
std::string JsonDouble(double value);

/// Streaming writer for building JSON without an intermediate tree. Usage:
///   JsonWriter w;
///   w.BeginObject().Key("value").Double(v).Key("rows").Int(n).EndObject();
///   send(w.str());
/// The writer inserts commas; callers are responsible for well-formed
/// nesting (debug-checked).
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  JsonWriter& Key(std::string_view key);
  JsonWriter& String(std::string_view value);
  JsonWriter& Int(int64_t value);
  JsonWriter& UInt(uint64_t value);
  JsonWriter& Double(double value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();
  /// Appends pre-serialized JSON as a value (e.g. an embedded snapshot).
  JsonWriter& Raw(std::string_view json);

  const std::string& str() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  void BeforeValue();
  std::string out_;
  /// One frame per open container: 'o'/'a' with a "wrote first element"
  /// bit tracked via lowercase/uppercase.
  std::vector<char> stack_;
  bool after_key_ = false;
};

}  // namespace hyper

#endif  // HYPER_COMMON_JSON_H_
