#ifndef HYPER_COMMON_SIMD_H_
#define HYPER_COMMON_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace hyper::simd {

// ---------------------------------------------------------------------------
// Runtime-dispatched SIMD kernels for the hot columnar loops: predicate
// masks over contiguous typed spans, mask combination, and widening
// conversions. Every kernel has a scalar reference implementation and the
// dispatch can be forced onto it (programmatically or via HYPER_SIMD=scalar)
// so SIMD-vs-scalar bit-equality is directly testable — the vector paths
// are required to reproduce the scalar paths bit for bit, including NaN
// comparison semantics (IEEE ordered/unordered predicates match the C
// operators: `x != c` is true for NaN, `x < c` is false).
//
// Reductions are deliberately absent: floating-point accumulation order is
// part of the engine's bit-determinism contract (prob::BlockAccumulator),
// and lane-parallel sums would reassociate it. Only element-wise kernels —
// where every output element is a pure function of its input element —
// live here.
// ---------------------------------------------------------------------------

enum class Level : uint8_t {
  kScalar = 0,
  kSSE2 = 1,
  kAVX2 = 2,
};

const char* LevelName(Level level);

/// Highest level the CPU supports (cached after the first call).
Level DetectedLevel();

/// Level the kernels actually dispatch to: the detected level, unless the
/// scalar path is forced (SetForceScalar or env HYPER_SIMD=scalar).
Level ActiveLevel();

/// Forces every kernel onto the scalar reference path (A/B bit-equality
/// harnesses). Thread-safe; affects subsequent kernel calls process-wide.
void SetForceScalar(bool force);
bool ForceScalar();

/// Comparison operator for the mask kernels; semantics are exactly the C
/// operators on the operand type (for doubles: IEEE ordered except kNe,
/// which is true on unordered operands — matching `!=`).
enum class Cmp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

/// The mirrored operator: `lit OP x` == `x ROP lit`.
constexpr Cmp Mirror(Cmp op) {
  switch (op) {
    case Cmp::kLt: return Cmp::kGt;
    case Cmp::kLe: return Cmp::kGe;
    case Cmp::kGt: return Cmp::kLt;
    case Cmp::kGe: return Cmp::kLe;
    default: return op;  // eq/ne are symmetric
  }
}

/// out[i] = (x[i] OP c) ? 1 : 0
void CmpF64Const(const double* x, size_t n, double c, Cmp op, uint8_t* out);
/// out[i] = (a[i] OP b[i]) ? 1 : 0
void CmpF64Cols(const double* a, const double* b, size_t n, Cmp op,
                uint8_t* out);
/// out[i] = ((x[i] == code) == want_eq) ? 1 : 0  (dictionary codes)
void CmpI32Const(const int32_t* x, size_t n, int32_t code, bool want_eq,
                 uint8_t* out);
/// out[i] = ((a[i] == b[i]) == want_eq) ? 1 : 0
void CmpI32Cols(const int32_t* a, const int32_t* b, size_t n, bool want_eq,
                uint8_t* out);

/// Element-wise combination of 0/1 masks (out may alias a or b).
void MaskAnd(const uint8_t* a, const uint8_t* b, size_t n, uint8_t* out);
void MaskOr(const uint8_t* a, const uint8_t* b, size_t n, uint8_t* out);
/// out[i] = a[i] ^ 1 — the logical NOT of a 0/1 mask.
void MaskNot(const uint8_t* a, size_t n, uint8_t* out);
/// Number of non-zero bytes.
size_t MaskCount(const uint8_t* m, size_t n);

/// Widening conversions (exactly `static_cast<double>` per element).
void I64ToF64(const int64_t* x, size_t n, double* out);
/// out[i] = x[i] != 0 ? 1.0 : 0.0
void U8ToF64(const uint8_t* x, size_t n, double* out);

}  // namespace hyper::simd

#endif  // HYPER_COMMON_SIMD_H_
