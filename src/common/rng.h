#ifndef HYPER_COMMON_RNG_H_
#define HYPER_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

#include "common/logging.h"

namespace hyper {

/// Deterministic pseudo-random source used throughout the library.
///
/// All stochastic components (SCM sampling, forest bagging, data generators,
/// HypeR-sampled) take an explicit Rng or seed so experiments reproduce
/// bit-for-bit across runs.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double Uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    HYPER_DCHECK(lo <= hi);
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    HYPER_DCHECK(lo <= hi);
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Standard normal draw scaled to N(mean, stddev^2).
  double Gaussian(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p) { return Uniform() < p; }

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Weights need not be normalized; all must be >= 0 with a positive sum.
  size_t Categorical(const std::vector<double>& weights) {
    HYPER_DCHECK(!weights.empty());
    double total = 0.0;
    for (double w : weights) total += w;
    HYPER_DCHECK(total > 0.0);
    double r = Uniform() * total;
    double acc = 0.0;
    for (size_t i = 0; i < weights.size(); ++i) {
      acc += weights[i];
      if (r < acc) return i;
    }
    return weights.size() - 1;
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (size_t i = items->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

  /// Samples k indices without replacement from [0, n).
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

inline std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  HYPER_DCHECK(k <= n);
  // Floyd's algorithm keeps this O(k) in expectation for k << n; for dense
  // draws fall back to shuffling an index vector.
  if (k * 2 >= n) {
    std::vector<size_t> all(n);
    for (size_t i = 0; i < n; ++i) all[i] = i;
    Shuffle(&all);
    all.resize(k);
    return all;
  }
  std::vector<size_t> picked;
  picked.reserve(k);
  std::vector<bool> used(n, false);
  for (size_t j = n - k; j < n; ++j) {
    size_t t = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(j)));
    if (used[t]) t = j;
    used[t] = true;
    picked.push_back(t);
  }
  return picked;
}

}  // namespace hyper

#endif  // HYPER_COMMON_RNG_H_
