#ifndef HYPER_COMMON_HASH_H_
#define HYPER_COMMON_HASH_H_

#include <cstdint>
#include <string>

namespace hyper {

/// Incremental FNV-1a-style 64-bit mixer. Shared by every content
/// fingerprint in the library (Database::ContentFingerprint, scenario
/// branch deltas) so the mixing rule can only ever change in one place.
class Fnv1a {
 public:
  static constexpr uint64_t kBasis = 0xcbf29ce484222325ULL;
  static constexpr uint64_t kPrime = 0x100000001b3ULL;

  Fnv1a() = default;
  explicit Fnv1a(uint64_t seed) : h_(seed) {}

  void Mix(uint64_t v) {
    h_ ^= v;
    h_ *= kPrime;
  }

  void MixString(const std::string& s) {
    Mix(s.size());
    for (char c : s) Mix(static_cast<uint64_t>(static_cast<unsigned char>(c)));
  }

  uint64_t hash() const { return h_; }

 private:
  uint64_t h_ = kBasis;
};

}  // namespace hyper

#endif  // HYPER_COMMON_HASH_H_
