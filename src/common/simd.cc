#include "common/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#define HYPER_SIMD_X86 1
#include <immintrin.h>
#else
#define HYPER_SIMD_X86 0
#endif

namespace hyper::simd {

namespace {

std::atomic<bool> g_force_scalar{false};

/// Parses HYPER_SIMD once: "scalar" forces the reference path, "sse2" caps
/// the dispatch below AVX2 (A/B between vector widths), anything else (or
/// unset) leaves the detected level alone.
enum class EnvCap : uint8_t { kNone, kScalar, kSSE2 };

EnvCap EnvCapValue() {
  static const EnvCap cap = [] {
    const char* env = std::getenv("HYPER_SIMD");
    if (env == nullptr) return EnvCap::kNone;
    if (std::strcmp(env, "scalar") == 0) return EnvCap::kScalar;
    if (std::strcmp(env, "sse2") == 0) return EnvCap::kSSE2;
    return EnvCap::kNone;
  }();
  return cap;
}

Level Detect() {
#if HYPER_SIMD_X86
#if defined(__GNUC__) || defined(__clang__)
  if (__builtin_cpu_supports("avx2")) return Level::kAVX2;
#endif
  return Level::kSSE2;  // baseline on x86-64
#else
  return Level::kScalar;
#endif
}

// ---------------------------------------------------------------------------
// Scalar reference kernels. These define the semantics; the vector paths
// must match them bit for bit (tests/simd_test.cc enforces it, NaN and all).
// ---------------------------------------------------------------------------

template <typename T>
void CmpConstScalar(const T* x, size_t n, T c, Cmp op, uint8_t* out) {
  switch (op) {
    case Cmp::kEq: for (size_t i = 0; i < n; ++i) out[i] = x[i] == c; break;
    case Cmp::kNe: for (size_t i = 0; i < n; ++i) out[i] = x[i] != c; break;
    case Cmp::kLt: for (size_t i = 0; i < n; ++i) out[i] = x[i] < c; break;
    case Cmp::kLe: for (size_t i = 0; i < n; ++i) out[i] = x[i] <= c; break;
    case Cmp::kGt: for (size_t i = 0; i < n; ++i) out[i] = x[i] > c; break;
    case Cmp::kGe: for (size_t i = 0; i < n; ++i) out[i] = x[i] >= c; break;
  }
}

template <typename T>
void CmpColsScalar(const T* a, const T* b, size_t n, Cmp op, uint8_t* out) {
  switch (op) {
    case Cmp::kEq: for (size_t i = 0; i < n; ++i) out[i] = a[i] == b[i]; break;
    case Cmp::kNe: for (size_t i = 0; i < n; ++i) out[i] = a[i] != b[i]; break;
    case Cmp::kLt: for (size_t i = 0; i < n; ++i) out[i] = a[i] < b[i]; break;
    case Cmp::kLe: for (size_t i = 0; i < n; ++i) out[i] = a[i] <= b[i]; break;
    case Cmp::kGt: for (size_t i = 0; i < n; ++i) out[i] = a[i] > b[i]; break;
    case Cmp::kGe: for (size_t i = 0; i < n; ++i) out[i] = a[i] >= b[i]; break;
  }
}

#if HYPER_SIMD_X86

// --- SSE2 (x86-64 baseline) ------------------------------------------------

__m128d CmpPdSse2(__m128d a, __m128d b, Cmp op) {
  switch (op) {
    case Cmp::kEq: return _mm_cmpeq_pd(a, b);   // ordered: NaN -> false
    case Cmp::kNe: return _mm_cmpneq_pd(a, b);  // unordered: NaN -> true
    case Cmp::kLt: return _mm_cmplt_pd(a, b);
    case Cmp::kLe: return _mm_cmple_pd(a, b);
    case Cmp::kGt: return _mm_cmpgt_pd(a, b);
    case Cmp::kGe: return _mm_cmpge_pd(a, b);
  }
  return _mm_setzero_pd();
}

void CmpF64ConstSse2(const double* x, size_t n, double c, Cmp op,
                     uint8_t* out) {
  const __m128d vc = _mm_set1_pd(c);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const int m = _mm_movemask_pd(CmpPdSse2(_mm_loadu_pd(x + i), vc, op));
    out[i] = m & 1;
    out[i + 1] = (m >> 1) & 1;
  }
  CmpConstScalar(x + i, n - i, c, op, out + i);
}

void CmpF64ColsSse2(const double* a, const double* b, size_t n, Cmp op,
                    uint8_t* out) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const int m = _mm_movemask_pd(
        CmpPdSse2(_mm_loadu_pd(a + i), _mm_loadu_pd(b + i), op));
    out[i] = m & 1;
    out[i + 1] = (m >> 1) & 1;
  }
  CmpColsScalar(a + i, b + i, n - i, op, out + i);
}

void CmpI32ConstSse2(const int32_t* x, size_t n, int32_t code, bool want_eq,
                     uint8_t* out) {
  const __m128i vc = _mm_set1_epi32(code);
  const __m128i flip = _mm_set1_epi8(want_eq ? 0 : 1);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i eq = _mm_cmpeq_epi32(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(x + i)), vc);
    const int m = _mm_movemask_ps(_mm_castsi128_ps(eq));
    out[i] = ((m >> 0) & 1) ^ !want_eq;
    out[i + 1] = ((m >> 1) & 1) ^ !want_eq;
    out[i + 2] = ((m >> 2) & 1) ^ !want_eq;
    out[i + 3] = ((m >> 3) & 1) ^ !want_eq;
  }
  (void)flip;  // byte-lane flip is done on the extracted bits above
  for (; i < n; ++i) out[i] = (x[i] == code) == want_eq;
}

void CmpI32ColsSse2(const int32_t* a, const int32_t* b, size_t n,
                    bool want_eq, uint8_t* out) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i eq = _mm_cmpeq_epi32(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i)),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i)));
    const int m = _mm_movemask_ps(_mm_castsi128_ps(eq));
    out[i] = ((m >> 0) & 1) ^ !want_eq;
    out[i + 1] = ((m >> 1) & 1) ^ !want_eq;
    out[i + 2] = ((m >> 2) & 1) ^ !want_eq;
    out[i + 3] = ((m >> 3) & 1) ^ !want_eq;
  }
  for (; i < n; ++i) out[i] = (a[i] == b[i]) == want_eq;
}

void MaskAndSse2(const uint8_t* a, const uint8_t* b, size_t n, uint8_t* out) {
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm_storeu_si128(
        reinterpret_cast<__m128i*>(out + i),
        _mm_and_si128(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i)),
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i))));
  }
  for (; i < n; ++i) out[i] = a[i] & b[i];
}

void MaskOrSse2(const uint8_t* a, const uint8_t* b, size_t n, uint8_t* out) {
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm_storeu_si128(
        reinterpret_cast<__m128i*>(out + i),
        _mm_or_si128(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i)),
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i))));
  }
  for (; i < n; ++i) out[i] = a[i] | b[i];
}

void MaskNotSse2(const uint8_t* a, size_t n, uint8_t* out) {
  const __m128i one = _mm_set1_epi8(1);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm_storeu_si128(
        reinterpret_cast<__m128i*>(out + i),
        _mm_xor_si128(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i)), one));
  }
  for (; i < n; ++i) out[i] = a[i] ^ 1;
}

// --- AVX2 (runtime-dispatched; compiled with a per-function target) --------

#if defined(__GNUC__) || defined(__clang__)
#define HYPER_TARGET_AVX2 __attribute__((target("avx2")))

HYPER_TARGET_AVX2 int CmpImmAvx2(Cmp op) {
  switch (op) {
    case Cmp::kEq: return _CMP_EQ_OQ;
    case Cmp::kNe: return _CMP_NEQ_UQ;
    case Cmp::kLt: return _CMP_LT_OQ;
    case Cmp::kLe: return _CMP_LE_OQ;
    case Cmp::kGt: return _CMP_GT_OQ;
    case Cmp::kGe: return _CMP_GE_OQ;
  }
  return _CMP_FALSE_OQ;
}

HYPER_TARGET_AVX2 void CmpF64ConstAvx2(const double* x, size_t n, double c,
                                       Cmp op, uint8_t* out) {
  const __m256d vc = _mm256_set1_pd(c);
  size_t i = 0;
  switch (op) {
#define HYPER_CASE(OP, IMM)                                              \
  case Cmp::OP:                                                          \
    for (; i + 4 <= n; i += 4) {                                         \
      const int m =                                                      \
          _mm256_movemask_pd(_mm256_cmp_pd(_mm256_loadu_pd(x + i), vc,   \
                                           IMM));                        \
      out[i] = m & 1;                                                    \
      out[i + 1] = (m >> 1) & 1;                                         \
      out[i + 2] = (m >> 2) & 1;                                         \
      out[i + 3] = (m >> 3) & 1;                                         \
    }                                                                    \
    break;
    HYPER_CASE(kEq, _CMP_EQ_OQ)
    HYPER_CASE(kNe, _CMP_NEQ_UQ)
    HYPER_CASE(kLt, _CMP_LT_OQ)
    HYPER_CASE(kLe, _CMP_LE_OQ)
    HYPER_CASE(kGt, _CMP_GT_OQ)
    HYPER_CASE(kGe, _CMP_GE_OQ)
#undef HYPER_CASE
  }
  CmpConstScalar(x + i, n - i, c, op, out + i);
}

HYPER_TARGET_AVX2 void CmpF64ColsAvx2(const double* a, const double* b,
                                      size_t n, Cmp op, uint8_t* out) {
  size_t i = 0;
  switch (op) {
#define HYPER_CASE(OP, IMM)                                               \
  case Cmp::OP:                                                           \
    for (; i + 4 <= n; i += 4) {                                          \
      const int m = _mm256_movemask_pd(_mm256_cmp_pd(                     \
          _mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i), IMM));          \
      out[i] = m & 1;                                                     \
      out[i + 1] = (m >> 1) & 1;                                          \
      out[i + 2] = (m >> 2) & 1;                                          \
      out[i + 3] = (m >> 3) & 1;                                          \
    }                                                                     \
    break;
    HYPER_CASE(kEq, _CMP_EQ_OQ)
    HYPER_CASE(kNe, _CMP_NEQ_UQ)
    HYPER_CASE(kLt, _CMP_LT_OQ)
    HYPER_CASE(kLe, _CMP_LE_OQ)
    HYPER_CASE(kGt, _CMP_GT_OQ)
    HYPER_CASE(kGe, _CMP_GE_OQ)
#undef HYPER_CASE
  }
  CmpColsScalar(a + i, b + i, n - i, op, out + i);
}

HYPER_TARGET_AVX2 void CmpI32ConstAvx2(const int32_t* x, size_t n,
                                       int32_t code, bool want_eq,
                                       uint8_t* out) {
  const __m256i vc = _mm256_set1_epi32(code);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i eq = _mm256_cmpeq_epi32(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i)), vc);
    const int m = _mm256_movemask_ps(_mm256_castsi256_ps(eq));
    for (int k = 0; k < 8; ++k) out[i + k] = ((m >> k) & 1) ^ !want_eq;
  }
  for (; i < n; ++i) out[i] = (x[i] == code) == want_eq;
}

HYPER_TARGET_AVX2 void CmpI32ColsAvx2(const int32_t* a, const int32_t* b,
                                      size_t n, bool want_eq, uint8_t* out) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i eq = _mm256_cmpeq_epi32(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i)));
    const int m = _mm256_movemask_ps(_mm256_castsi256_ps(eq));
    for (int k = 0; k < 8; ++k) out[i + k] = ((m >> k) & 1) ^ !want_eq;
  }
  for (; i < n; ++i) out[i] = (a[i] == b[i]) == want_eq;
}

HYPER_TARGET_AVX2 void MaskAndAvx2(const uint8_t* a, const uint8_t* b,
                                   size_t n, uint8_t* out) {
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(out + i),
        _mm256_and_si256(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)),
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i))));
  }
  for (; i < n; ++i) out[i] = a[i] & b[i];
}

HYPER_TARGET_AVX2 void MaskOrAvx2(const uint8_t* a, const uint8_t* b,
                                  size_t n, uint8_t* out) {
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(out + i),
        _mm256_or_si256(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)),
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i))));
  }
  for (; i < n; ++i) out[i] = a[i] | b[i];
}

HYPER_TARGET_AVX2 void MaskNotAvx2(const uint8_t* a, size_t n, uint8_t* out) {
  const __m256i one = _mm256_set1_epi8(1);
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(out + i),
        _mm256_xor_si256(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)),
            one));
  }
  for (; i < n; ++i) out[i] = a[i] ^ 1;
}

#define HYPER_HAVE_AVX2 1
#endif  // GNUC || clang

#endif  // HYPER_SIMD_X86

#ifndef HYPER_HAVE_AVX2
#define HYPER_HAVE_AVX2 0
#endif

}  // namespace

const char* LevelName(Level level) {
  switch (level) {
    case Level::kScalar: return "scalar";
    case Level::kSSE2: return "sse2";
    case Level::kAVX2: return "avx2";
  }
  return "?";
}

Level DetectedLevel() {
  static const Level level = [] {
    Level l = Detect();
#if !HYPER_HAVE_AVX2
    if (l == Level::kAVX2) l = Level::kSSE2;
#endif
    switch (EnvCapValue()) {
      case EnvCap::kScalar: return Level::kScalar;
      case EnvCap::kSSE2:
        return l == Level::kScalar ? Level::kScalar : Level::kSSE2;
      case EnvCap::kNone: break;
    }
    return l;
  }();
  return level;
}

Level ActiveLevel() {
  if (g_force_scalar.load(std::memory_order_relaxed)) return Level::kScalar;
  return DetectedLevel();
}

void SetForceScalar(bool force) {
  g_force_scalar.store(force, std::memory_order_relaxed);
}

bool ForceScalar() {
  return g_force_scalar.load(std::memory_order_relaxed);
}

void CmpF64Const(const double* x, size_t n, double c, Cmp op, uint8_t* out) {
  switch (ActiveLevel()) {
#if HYPER_SIMD_X86
#if HYPER_HAVE_AVX2
    case Level::kAVX2: CmpF64ConstAvx2(x, n, c, op, out); return;
#endif
    case Level::kSSE2: CmpF64ConstSse2(x, n, c, op, out); return;
#endif
    default: CmpConstScalar(x, n, c, op, out); return;
  }
}

void CmpF64Cols(const double* a, const double* b, size_t n, Cmp op,
                uint8_t* out) {
  switch (ActiveLevel()) {
#if HYPER_SIMD_X86
#if HYPER_HAVE_AVX2
    case Level::kAVX2: CmpF64ColsAvx2(a, b, n, op, out); return;
#endif
    case Level::kSSE2: CmpF64ColsSse2(a, b, n, op, out); return;
#endif
    default: CmpColsScalar(a, b, n, op, out); return;
  }
}

void CmpI32Const(const int32_t* x, size_t n, int32_t code, bool want_eq,
                 uint8_t* out) {
  switch (ActiveLevel()) {
#if HYPER_SIMD_X86
#if HYPER_HAVE_AVX2
    case Level::kAVX2: CmpI32ConstAvx2(x, n, code, want_eq, out); return;
#endif
    case Level::kSSE2: CmpI32ConstSse2(x, n, code, want_eq, out); return;
#endif
    default:
      for (size_t i = 0; i < n; ++i) out[i] = (x[i] == code) == want_eq;
      return;
  }
}

void CmpI32Cols(const int32_t* a, const int32_t* b, size_t n, bool want_eq,
                uint8_t* out) {
  switch (ActiveLevel()) {
#if HYPER_SIMD_X86
#if HYPER_HAVE_AVX2
    case Level::kAVX2: CmpI32ColsAvx2(a, b, n, want_eq, out); return;
#endif
    case Level::kSSE2: CmpI32ColsSse2(a, b, n, want_eq, out); return;
#endif
    default:
      for (size_t i = 0; i < n; ++i) out[i] = (a[i] == b[i]) == want_eq;
      return;
  }
}

void MaskAnd(const uint8_t* a, const uint8_t* b, size_t n, uint8_t* out) {
  switch (ActiveLevel()) {
#if HYPER_SIMD_X86
#if HYPER_HAVE_AVX2
    case Level::kAVX2: MaskAndAvx2(a, b, n, out); return;
#endif
    case Level::kSSE2: MaskAndSse2(a, b, n, out); return;
#endif
    default:
      for (size_t i = 0; i < n; ++i) out[i] = a[i] & b[i];
      return;
  }
}

void MaskOr(const uint8_t* a, const uint8_t* b, size_t n, uint8_t* out) {
  switch (ActiveLevel()) {
#if HYPER_SIMD_X86
#if HYPER_HAVE_AVX2
    case Level::kAVX2: MaskOrAvx2(a, b, n, out); return;
#endif
    case Level::kSSE2: MaskOrSse2(a, b, n, out); return;
#endif
    default:
      for (size_t i = 0; i < n; ++i) out[i] = a[i] | b[i];
      return;
  }
}

void MaskNot(const uint8_t* a, size_t n, uint8_t* out) {
  switch (ActiveLevel()) {
#if HYPER_SIMD_X86
#if HYPER_HAVE_AVX2
    case Level::kAVX2: MaskNotAvx2(a, n, out); return;
#endif
    case Level::kSSE2: MaskNotSse2(a, n, out); return;
#endif
    default:
      for (size_t i = 0; i < n; ++i) out[i] = a[i] ^ 1;
      return;
  }
}

size_t MaskCount(const uint8_t* m, size_t n) {
  // 0/1 bytes sum exactly; the compiler vectorizes this reduction (integer
  // addition is associative, so reassociation cannot change the count).
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) count += m[i];
  return count;
}

void I64ToF64(const int64_t* x, size_t n, double* out) {
  for (size_t i = 0; i < n; ++i) out[i] = static_cast<double>(x[i]);
}

void U8ToF64(const uint8_t* x, size_t n, double* out) {
  for (size_t i = 0; i < n; ++i) out[i] = x[i] != 0 ? 1.0 : 0.0;
}

}  // namespace hyper::simd
