#ifndef HYPER_COMMON_GOVERNANCE_H_
#define HYPER_COMMON_GOVERNANCE_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <memory>
#include <string>

#include "common/status.h"

namespace hyper {

/// Cooperative cancellation handle. Copies share one flag; the default-
/// constructed token is *detached* (no allocation, never cancelled), so
/// option structs can carry one by value at zero cost. `CancelToken::Make()`
/// creates an attached token the owner can trip from any thread; engines
/// poll it at stage boundaries and inside hot loops — cancellation is
/// cooperative, never preemptive, so an aborted query always unwinds
/// through normal Status returns and leaves caches consistent.
class CancelToken {
 public:
  CancelToken() = default;

  /// An attached token whose `RequestCancel` is observable by all copies.
  static CancelToken Make() {
    CancelToken token;
    token.flag_ = std::make_shared<std::atomic<bool>>(false);
    return token;
  }

  /// Asks every holder to abort at its next checkpoint. No-op when detached.
  void RequestCancel() const {
    if (flag_ != nullptr) flag_->store(true, std::memory_order_relaxed);
  }

  bool cancelled() const {
    return flag_ != nullptr && flag_->load(std::memory_order_relaxed);
  }

  /// Whether this token can ever report cancellation.
  bool attached() const { return flag_ != nullptr; }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Declarative per-query resource limits. Zero means unlimited, so the
/// default-constructed budget governs nothing. Budgets are request
/// parameters, not plan parameters: they never enter a cache key, so a
/// budgeted retry of an aborted query hits the same cache entries and
/// answers bit-identically to an ungoverned run.
struct QueryBudget {
  /// Wall-clock limit for the whole request, armed when the ExecGuard is
  /// created (steady_clock, the same clock as common/stopwatch.h).
  double deadline_seconds = 0.0;
  /// Upper bound on rows the request may touch (view scans, training rows,
  /// evaluated tuples — coarse accounting, charged at loop granularity).
  size_t max_rows_touched = 0;
  /// Upper bound on bytes the request may materialize (columnar images,
  /// training matrices — coarse accounting, charged at allocation sites).
  size_t max_bytes_materialized = 0;

  bool Unlimited() const {
    return deadline_seconds <= 0.0 && max_rows_touched == 0 &&
           max_bytes_materialized == 0;
  }
};

namespace governance {

/// Test-only fault injection: when set, every governance checkpoint calls
/// the hook with its name before its own checks; a non-OK return forces
/// that checkpoint to abort. Tests use it to drive an abort through every
/// cancellation point and assert clean unwinding and cache integrity.
/// The hook fires only on governed requests (an ExecGuard must be armed),
/// so production runs without budgets never pay for it. Set to nullptr to
/// clear. Not for production use.
using FaultHook = Status (*)(const char* checkpoint);

namespace internal {
inline std::atomic<FaultHook>& FaultHookSlot() {
  static std::atomic<FaultHook> hook{nullptr};
  return hook;
}
}  // namespace internal

inline void SetFaultHook(FaultHook hook) {
  internal::FaultHookSlot().store(hook, std::memory_order_release);
}

inline FaultHook GetFaultHook() {
  return internal::FaultHookSlot().load(std::memory_order_acquire);
}

class ExecGuard;
using ExecGuardPtr = std::shared_ptr<ExecGuard>;

/// The armed, shared runtime state of one governed request: an absolute
/// deadline plus row/byte meters, safe to consult and charge from any
/// number of worker threads. A null ExecGuardPtr means "ungoverned" and
/// every checkpoint reduces to one pointer test — that is the whole warm-
/// path overhead when no budget is set.
///
/// Aborts are sticky and monotone: once a deadline has passed, a meter is
/// exhausted or the token is cancelled, every later checkpoint of the
/// request reports the same typed status, so parallel shards converge on
/// one outcome no matter which shard noticed first.
class ExecGuard {
 public:
  /// Arms a guard for one request. Returns null when there is nothing to
  /// govern (trivial budget, detached token, no fault hook installed), so
  /// ungoverned requests skip all checkpoint work.
  static ExecGuardPtr Arm(const QueryBudget& budget, CancelToken cancel) {
    if (budget.Unlimited() && !cancel.attached() && GetFaultHook() == nullptr) {
      return nullptr;
    }
    return std::make_shared<ExecGuard>(budget, std::move(cancel));
  }

  ExecGuard(const QueryBudget& budget, CancelToken cancel)
      : budget_(budget), cancel_(std::move(cancel)) {
    if (budget_.deadline_seconds > 0.0) {
      deadline_ = std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(budget_.deadline_seconds));
      has_deadline_ = true;
    }
  }

  /// The full checkpoint: fault hook, cancellation, deadline, meters.
  /// `checkpoint` names the call site (e.g. "whatif.prepare.learn") and is
  /// embedded in the returned message so aborts are attributable.
  Status Check(const char* checkpoint) const {
    if (FaultHook hook = GetFaultHook()) {
      HYPER_RETURN_NOT_OK(hook(checkpoint));
    }
    if (cancel_.cancelled()) {
      return Status::Cancelled(std::string("query cancelled at ") + checkpoint);
    }
    if (has_deadline_ && std::chrono::steady_clock::now() > deadline_) {
      return Status::DeadlineExceeded(std::string("deadline exceeded at ") +
                                      checkpoint);
    }
    if (budget_.max_rows_touched > 0 &&
        rows_touched_.load(std::memory_order_relaxed) >
            budget_.max_rows_touched) {
      return Status::ResourceExhausted(
          std::string("row budget exhausted at ") + checkpoint);
    }
    if (budget_.max_bytes_materialized > 0 &&
        bytes_materialized_.load(std::memory_order_relaxed) >
            budget_.max_bytes_materialized) {
      return Status::ResourceExhausted(
          std::string("byte budget exhausted at ") + checkpoint);
    }
    return Status::OK();
  }

  /// Adds `n` rows to the meter, then runs the full checkpoint. Const
  /// because charging is how read-only pipeline stages report progress —
  /// the meters are atomic and mutable.
  Status ChargeRows(size_t n, const char* checkpoint) const {
    rows_touched_.fetch_add(n, std::memory_order_relaxed);
    return Check(checkpoint);
  }

  /// Adds `n` bytes to the meter, then runs the full checkpoint.
  Status ChargeBytes(size_t n, const char* checkpoint) const {
    bytes_materialized_.fetch_add(n, std::memory_order_relaxed);
    return Check(checkpoint);
  }

  size_t rows_touched() const {
    return rows_touched_.load(std::memory_order_relaxed);
  }
  size_t bytes_materialized() const {
    return bytes_materialized_.load(std::memory_order_relaxed);
  }
  const QueryBudget& budget() const { return budget_; }

 private:
  QueryBudget budget_;
  CancelToken cancel_;
  std::chrono::steady_clock::time_point deadline_{};
  bool has_deadline_ = false;
  mutable std::atomic<size_t> rows_touched_{0};
  mutable std::atomic<size_t> bytes_materialized_{0};
};

/// Amortized checker for per-row hot loops: `Due()` is true every `stride`
/// ticks (and never for ungoverned requests), so the loop body pays one
/// branch per row and one clock read per stride. Stride must be a power of
/// two. The first due tick fires after a full stride, so loops shorter than
/// the stride rely on the stage-boundary checkpoints around them.
class LoopCheck {
 public:
  explicit LoopCheck(const ExecGuard* guard, size_t stride = 1024)
      : guard_(guard), mask_(stride - 1) {}

  bool Due() { return guard_ != nullptr && (++ticks_ & mask_) == 0; }
  const ExecGuard* guard() const { return guard_; }

 private:
  const ExecGuard* guard_;
  size_t mask_;
  size_t ticks_ = 0;
};

/// True for the status codes a governance abort can produce. Used by
/// callers that must distinguish "the work is wrong" from "the work was
/// cut short" (e.g. admission-control outcome counters).
inline bool IsGovernanceAbort(const Status& status) {
  switch (status.code()) {
    case StatusCode::kCancelled:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kResourceExhausted:
    case StatusCode::kUnavailable:
      return true;
    default:
      return false;
  }
}

}  // namespace governance

}  // namespace hyper

#endif  // HYPER_COMMON_GOVERNANCE_H_
