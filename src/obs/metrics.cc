#include "obs/metrics.h"

#include <algorithm>
#include <cassert>

#include "common/json.h"

namespace hyper {
namespace obs {

namespace {

std::string MakeKey(std::string_view name, std::string_view labels) {
  std::string key(name);
  key.push_back('\0');
  key.append(labels);
  return key;
}

void SplitKey(const std::string& key, std::string* name, std::string* labels) {
  const size_t sep = key.find('\0');
  *name = key.substr(0, sep);
  *labels = key.substr(sep + 1);
}

std::string SeriesName(const std::string& name, const std::string& labels) {
  if (labels.empty()) return name;
  return name + "{" + labels + "}";
}

}  // namespace

// --- Histogram --------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1) {
  assert(std::is_sorted(bounds_.begin(), bounds_.end()));
}

void Histogram::Observe(double v) {
  // First bucket with v <= bound (Prometheus `le` semantics); everything
  // past the last finite bound lands in the +Inf overflow slot.
  const size_t idx =
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin();
  counts_[idx].fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<uint64_t> Histogram::bucket_counts() const {
  std::vector<uint64_t> counts(counts_.size());
  for (size_t i = 0; i < counts_.size(); ++i) {
    counts[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

uint64_t Histogram::count() const {
  uint64_t total = 0;
  for (const auto& c : counts_) total += c.load(std::memory_order_relaxed);
  return total;
}

std::vector<double> LatencyBuckets() {
  return {0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
          0.1,     0.25,   0.5,   1.0,    2.5,   5.0,  10.0};
}

double HistogramQuantile(const std::vector<double>& bounds,
                         const std::vector<uint64_t>& counts, double q) {
  uint64_t total = 0;
  for (const uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  const double target = q * static_cast<double>(total);
  uint64_t cum = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (static_cast<double>(cum + counts[i]) < target) {
      cum += counts[i];
      continue;
    }
    if (counts[i] == 0) continue;
    if (i >= bounds.size()) {
      // +Inf overflow bucket has no finite upper edge: clamp.
      return bounds.empty() ? 0.0 : bounds.back();
    }
    const double lower = (i == 0) ? 0.0 : bounds[i - 1];
    const double upper = bounds[i];
    const double within =
        (target - static_cast<double>(cum)) / static_cast<double>(counts[i]);
    return lower + within * (upper - lower);
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

// --- MetricsRegistry --------------------------------------------------------

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view labels,
                                     std::string_view help) {
  MutexLock lock(&mu_);
  auto [it, inserted] = counters_.try_emplace(MakeKey(name, labels));
  if (inserted) it->second.help = std::string(help);
  return &it->second.counter;
}

Gauge* MetricsRegistry::GetGauge(std::string_view name,
                                 std::string_view labels,
                                 std::string_view help) {
  MutexLock lock(&mu_);
  auto [it, inserted] = gauges_.try_emplace(MakeKey(name, labels));
  if (inserted) it->second.help = std::string(help);
  return &it->second.gauge;
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::string_view labels,
                                         std::string_view help,
                                         std::vector<double> bounds) {
  MutexLock lock(&mu_);
  auto [it, inserted] = histograms_.try_emplace(MakeKey(name, labels));
  if (inserted) {
    it->second.help = std::string(help);
    it->second.histogram = std::make_unique<Histogram>(std::move(bounds));
  }
  return it->second.histogram.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  MutexLock lock(&mu_);
  for (const auto& [key, entry] : counters_) {
    MetricSample s;
    SplitKey(key, &s.name, &s.labels);
    s.type = MetricType::kCounter;
    s.help = entry.help;
    s.value = static_cast<double>(entry.counter.value());
    snap.samples.push_back(std::move(s));
  }
  for (const auto& [key, entry] : gauges_) {
    MetricSample s;
    SplitKey(key, &s.name, &s.labels);
    s.type = MetricType::kGauge;
    s.help = entry.help;
    s.value = entry.gauge.value();
    snap.samples.push_back(std::move(s));
  }
  for (const auto& [key, entry] : histograms_) {
    HistogramSample h;
    SplitKey(key, &h.name, &h.labels);
    h.help = entry.help;
    h.bounds = entry.histogram->bounds();
    h.counts = entry.histogram->bucket_counts();
    for (const uint64_t c : h.counts) h.count += c;
    h.sum = entry.histogram->sum();
    h.p50 = HistogramQuantile(h.bounds, h.counts, 0.50);
    h.p95 = HistogramQuantile(h.bounds, h.counts, 0.95);
    h.p99 = HistogramQuantile(h.bounds, h.counts, 0.99);
    snap.histograms.push_back(std::move(h));
  }
  // std::map iteration is already name-ordered; counters and gauges were
  // appended as two sorted runs, so merge them into one ordered list.
  std::stable_sort(snap.samples.begin(), snap.samples.end(),
                   [](const MetricSample& a, const MetricSample& b) {
                     if (a.name != b.name) return a.name < b.name;
                     return a.labels < b.labels;
                   });
  return snap;
}

// --- Rendering --------------------------------------------------------------

std::string RenderPrometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  std::string last_family;
  auto emit_header = [&](const std::string& name, const std::string& help,
                         const char* type) {
    if (name == last_family) return;
    last_family = name;
    if (!help.empty()) {
      out += "# HELP " + name + " " + help + "\n";
    }
    out += "# TYPE " + name + " " + std::string(type) + "\n";
  };

  for (const MetricSample& s : snapshot.samples) {
    emit_header(s.name, s.help,
                s.type == MetricType::kCounter ? "counter" : "gauge");
    out += SeriesName(s.name, s.labels);
    out += " ";
    if (s.type == MetricType::kCounter) {
      out += std::to_string(static_cast<uint64_t>(s.value));
    } else {
      out += JsonDouble(s.value);
    }
    out += "\n";
  }

  for (const HistogramSample& h : snapshot.histograms) {
    emit_header(h.name, h.help, "histogram");
    uint64_t cum = 0;
    for (size_t i = 0; i < h.bounds.size(); ++i) {
      cum += h.counts[i];
      std::string labels = h.labels;
      if (!labels.empty()) labels += ",";
      labels += "le=\"" + JsonDouble(h.bounds[i]) + "\"";
      out += h.name + "_bucket{" + labels + "} " + std::to_string(cum) + "\n";
    }
    cum += h.counts.back();
    std::string inf_labels = h.labels;
    if (!inf_labels.empty()) inf_labels += ",";
    inf_labels += "le=\"+Inf\"";
    out += h.name + "_bucket{" + inf_labels + "} " + std::to_string(cum) +
           "\n";
    out += SeriesName(h.name + "_sum", h.labels) + " " + JsonDouble(h.sum) +
           "\n";
    out += SeriesName(h.name + "_count", h.labels) + " " +
           std::to_string(h.count) + "\n";
  }
  return out;
}

std::string RenderJson(const MetricsSnapshot& snapshot) {
  JsonWriter w;
  w.BeginObject();
  w.Key("counters").BeginArray();
  for (const MetricSample& s : snapshot.samples) {
    if (s.type != MetricType::kCounter) continue;
    w.BeginObject()
        .Key("name").String(s.name)
        .Key("labels").String(s.labels)
        .Key("value").UInt(static_cast<uint64_t>(s.value))
        .EndObject();
  }
  w.EndArray();
  w.Key("gauges").BeginArray();
  for (const MetricSample& s : snapshot.samples) {
    if (s.type != MetricType::kGauge) continue;
    w.BeginObject()
        .Key("name").String(s.name)
        .Key("labels").String(s.labels)
        .Key("value").Double(s.value)
        .EndObject();
  }
  w.EndArray();
  w.Key("histograms").BeginArray();
  for (const HistogramSample& h : snapshot.histograms) {
    w.BeginObject()
        .Key("name").String(h.name)
        .Key("labels").String(h.labels)
        .Key("count").UInt(h.count)
        .Key("sum").Double(h.sum)
        .Key("p50").Double(h.p50)
        .Key("p95").Double(h.p95)
        .Key("p99").Double(h.p99)
        .EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.Take();
}

}  // namespace obs
}  // namespace hyper
