#ifndef HYPER_OBS_METRICS_H_
#define HYPER_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace hyper {
namespace obs {

/// Lock-cheap metrics primitives for the serving layer. Registration takes a
/// registry mutex once; after that, every Increment/Set/Observe is a handful
/// of relaxed atomic ops on stable storage — cheap enough to sit on the
/// per-request hot path of the scenario service.
///
/// Snapshot() copies all instruments under the registry mutex into plain
/// structs which RenderPrometheus()/RenderJson() format for `/metrics` and
/// `/statusz`. Relaxed loads mean a snapshot taken during traffic is not a
/// single linearization point across instruments, but each individual series
/// is monotone and internally consistent (histogram count == sum of bucket
/// counts as sampled).

/// Monotonic event counter.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Point-in-time value (queue depth, drain flag, cache occupancy).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. `bounds` are strictly increasing finite upper
/// bounds with Prometheus `le` semantics: an observation v lands in the
/// first bucket with v <= bound, or the implicit +Inf overflow bucket.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts; size bounds()+1, last is +Inf.
  std::vector<uint64_t> bucket_counts() const;
  uint64_t count() const;
  double sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<uint64_t>> counts_;  // bounds_.size() + 1
  std::atomic<double> sum_{0.0};
};

/// Default latency bucket layout: 250us .. 10s, roughly log-spaced. Covers
/// sub-millisecond cache hits through multi-second cold forest training.
std::vector<double> LatencyBuckets();

/// Estimates the q-quantile (q in (0,1)) from bucket counts by linear
/// interpolation within the owning bucket. The first bucket interpolates
/// from 0; observations in the +Inf bucket clamp to the last finite bound.
/// Returns 0 when the histogram is empty.
double HistogramQuantile(const std::vector<double>& bounds,
                         const std::vector<uint64_t>& counts, double q);

enum class MetricType { kCounter, kGauge };

struct MetricSample {
  std::string name;
  std::string labels;  // rendered "k=\"v\",..." or empty
  MetricType type = MetricType::kCounter;
  std::string help;
  double value = 0.0;
};

struct HistogramSample {
  std::string name;
  std::string labels;
  std::string help;
  std::vector<double> bounds;
  std::vector<uint64_t> counts;  // non-cumulative, size bounds+1
  uint64_t count = 0;
  double sum = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

struct MetricsSnapshot {
  std::vector<MetricSample> samples;       // sorted by (name, labels)
  std::vector<HistogramSample> histograms;  // sorted by (name, labels)
};

/// Owns all instruments. GetCounter/GetGauge/GetHistogram intern the
/// (name, labels) pair and return a stable pointer valid for the registry's
/// lifetime; repeat calls with the same key return the same instrument.
/// `labels` is the pre-rendered Prometheus label body, e.g.
/// `kind="whatif",outcome="ok"` — empty for an unlabeled series.
class MetricsRegistry {
 public:
  Counter* GetCounter(std::string_view name, std::string_view labels = "",
                      std::string_view help = "");
  Gauge* GetGauge(std::string_view name, std::string_view labels = "",
                  std::string_view help = "");
  Histogram* GetHistogram(std::string_view name, std::string_view labels = "",
                          std::string_view help = "",
                          std::vector<double> bounds = LatencyBuckets());

  MetricsSnapshot Snapshot() const;

 private:
  struct CounterEntry {
    std::string help;
    Counter counter;
  };
  struct GaugeEntry {
    std::string help;
    Gauge gauge;
  };
  struct HistogramEntry {
    std::string help;
    std::unique_ptr<Histogram> histogram;
  };

  mutable Mutex mu_;
  // Keyed by name + "\0" + labels; node-based maps keep pointers stable, so
  // instrument pointers stay valid outside mu_ — only the map structure is
  // guarded, never the (atomic) instrument payloads.
  std::map<std::string, CounterEntry> counters_ GUARDED_BY(mu_);
  std::map<std::string, GaugeEntry> gauges_ GUARDED_BY(mu_);
  std::map<std::string, HistogramEntry> histograms_ GUARDED_BY(mu_);
};

/// Prometheus text exposition format (version 0.0.4): HELP/TYPE headers per
/// family, cumulative `_bucket{le=...}` series plus `_sum`/`_count` for
/// histograms.
std::string RenderPrometheus(const MetricsSnapshot& snapshot);

/// JSON rendering of the same snapshot (used by `/statusz` and the shell's
/// `\metrics`): {"counters":{...},"gauges":{...},"histograms":{...}} with
/// quantiles inline.
std::string RenderJson(const MetricsSnapshot& snapshot);

}  // namespace obs
}  // namespace hyper

#endif  // HYPER_OBS_METRICS_H_
