#include "net/http.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "common/json.h"
#include "common/strings.h"

namespace hyper {
namespace net {

namespace {

std::string ToLowerCopy(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string_view TrimView(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

std::string_view HttpRequest::Header(std::string_view name) const {
  for (const auto& [k, v] : headers) {
    if (k == name) return v;
  }
  return {};
}

bool HttpRequest::keep_alive() const {
  const std::string conn = ToLowerCopy(Header("connection"));
  if (version == "HTTP/1.0") return conn == "keep-alive";
  return conn != "close";
}

std::string HttpRequest::path() const {
  const size_t q = target.find('?');
  return q == std::string::npos ? target : target.substr(0, q);
}

std::string_view HttpReason(int status) {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 499: return "Client Closed Request";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    case 505: return "HTTP Version Not Supported";
    default: return "Unknown";
  }
}

std::string SerializeResponse(const HttpResponse& response, bool keep_alive) {
  std::string out;
  out.reserve(response.body.size() + 256);
  out += "HTTP/1.1 " + std::to_string(response.status) + " ";
  out += HttpReason(response.status);
  out += "\r\nContent-Type: " + response.content_type;
  out += "\r\nContent-Length: " + std::to_string(response.body.size());
  out += keep_alive ? "\r\nConnection: keep-alive" : "\r\nConnection: close";
  for (const auto& [k, v] : response.headers) {
    out += "\r\n" + k + ": " + v;
  }
  out += "\r\n\r\n";
  out += response.body;
  return out;
}

std::string ErrorJson(int http_status, std::string_view code,
                      std::string_view message) {
  JsonWriter w;
  w.BeginObject()
      .Key("error").BeginObject()
      .Key("code").String(code)
      .Key("http_status").Int(http_status)
      .Key("message").String(message)
      .EndObject()
      .EndObject();
  return w.Take();
}

// --- HttpParser -------------------------------------------------------------

HttpParser::State HttpParser::Feed(const char* data, size_t len) {
  if (state_ == State::kError) return state_;
  buffer_.append(data, len);
  return Advance();
}

HttpParser::State HttpParser::FailWith(int status, std::string code,
                                       std::string message) {
  state_ = State::kError;
  error_status_ = status;
  error_code_ = std::move(code);
  error_message_ = std::move(message);
  return state_;
}

HttpParser::State HttpParser::Advance() {
  if (!head_done_) {
    const size_t end = buffer_.find("\r\n\r\n");
    if (end == std::string::npos) {
      if (buffer_.size() > limits_.max_header_bytes) {
        return FailWith(431, "header_too_large",
                        StrFormat("request head exceeds %zu bytes",
                                  limits_.max_header_bytes));
      }
      state_ = State::kNeedMore;
      return state_;
    }
    if (end + 4 > limits_.max_header_bytes) {
      return FailWith(431, "header_too_large",
                      StrFormat("request head exceeds %zu bytes",
                                limits_.max_header_bytes));
    }
    if (!ParseHead(std::string_view(buffer_).substr(0, end))) {
      return state_;  // FailWith already ran
    }
    head_done_ = true;
    consumed_ = end + 4;
  }
  const size_t have = buffer_.size() - consumed_;
  if (have < body_length_) {
    state_ = State::kNeedMore;
    return state_;
  }
  request_.body = buffer_.substr(consumed_, body_length_);
  consumed_ += body_length_;
  state_ = State::kComplete;
  return state_;
}

bool HttpParser::ParseHead(std::string_view head) {
  // Request line: METHOD SP TARGET SP VERSION
  const size_t line_end = head.find("\r\n");
  const std::string_view line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = line.rfind(' ');
  if (sp1 == std::string_view::npos || sp2 == sp1) {
    FailWith(400, "bad_request", "malformed request line");
    return false;
  }
  request_ = HttpRequest();
  request_.method = std::string(line.substr(0, sp1));
  request_.target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
  request_.version = std::string(line.substr(sp2 + 1));
  if (request_.method.empty() || request_.target.empty() ||
      request_.target[0] != '/') {
    FailWith(400, "bad_request", "malformed request line");
    return false;
  }
  if (request_.version != "HTTP/1.1" && request_.version != "HTTP/1.0") {
    FailWith(505, "version_not_supported",
             "only HTTP/1.0 and HTTP/1.1 are supported");
    return false;
  }

  // Header fields.
  size_t pos = line_end == std::string_view::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    size_t eol = head.find("\r\n", pos);
    if (eol == std::string_view::npos) eol = head.size();
    const std::string_view field = head.substr(pos, eol - pos);
    pos = eol + 2;
    const size_t colon = field.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      FailWith(400, "bad_request", "malformed header field");
      return false;
    }
    std::string name = ToLowerCopy(TrimView(field.substr(0, colon)));
    if (name.find(' ') != std::string::npos) {
      FailWith(400, "bad_request", "malformed header name");
      return false;
    }
    request_.headers.emplace_back(std::move(name),
                                  std::string(TrimView(field.substr(colon + 1))));
  }

  if (!request_.Header("transfer-encoding").empty()) {
    FailWith(501, "not_implemented", "Transfer-Encoding is not supported");
    return false;
  }
  body_length_ = 0;
  const std::string_view cl = request_.Header("content-length");
  if (!cl.empty()) {
    uint64_t parsed = 0;
    for (const char c : cl) {
      if (!std::isdigit(static_cast<unsigned char>(c)) ||
          parsed > (1ULL << 40)) {
        FailWith(400, "bad_request", "invalid Content-Length");
        return false;
      }
      parsed = parsed * 10 + static_cast<uint64_t>(c - '0');
    }
    if (parsed > limits_.max_body_bytes) {
      FailWith(413, "body_too_large",
               StrFormat("request body exceeds %zu bytes",
                         limits_.max_body_bytes));
      return false;
    }
    body_length_ = static_cast<size_t>(parsed);
  }
  return true;
}

HttpParser::State HttpParser::Reset() {
  buffer_.erase(0, consumed_);
  consumed_ = 0;
  body_length_ = 0;
  head_done_ = false;
  state_ = State::kNeedMore;
  request_ = HttpRequest();
  if (!buffer_.empty()) return Advance();  // pipelined bytes already here
  return state_;
}

}  // namespace net
}  // namespace hyper
