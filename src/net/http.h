#ifndef HYPER_NET_HTTP_H_
#define HYPER_NET_HTTP_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hyper {
namespace net {

/// Wire-level limits enforced by the incremental parser. Requests past
/// either limit are rejected before any body processing (431 / 413).
struct HttpLimits {
  size_t max_header_bytes = 16 * 1024;
  size_t max_body_bytes = 4 * 1024 * 1024;
};

struct HttpRequest {
  std::string method;   // uppercase, e.g. "GET", "POST"
  std::string target;   // as sent, e.g. "/v1/whatif?pretty"
  std::string version;  // "HTTP/1.0" or "HTTP/1.1"
  /// Header names lowercased at parse time; values trimmed.
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// First header value for `name` (lowercase); empty when absent.
  std::string_view Header(std::string_view name) const;
  /// Keep-alive per HTTP semantics: 1.1 default on unless
  /// `Connection: close`, 1.0 default off unless `Connection: keep-alive`.
  bool keep_alive() const;
  /// `target` with any "?query" suffix removed.
  std::string path() const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  /// Extra headers beyond Content-Type/Content-Length/Connection (those are
  /// emitted by Serialize).
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
};

/// Standard reason phrase for `status` ("OK", "Too Many Requests", ...).
std::string_view HttpReason(int status);

/// Renders a full HTTP/1.1 response message. `keep_alive` controls the
/// Connection header.
std::string SerializeResponse(const HttpResponse& response, bool keep_alive);

/// The handler's error body shape, shared by the HTTP path and the stdin
/// protocol: {"error":{"code":...,"http_status":N,"message":...}}.
std::string ErrorJson(int http_status, std::string_view code,
                      std::string_view message);

/// Incremental HTTP/1.1 request parser. Feed() consumes raw bytes across
/// arbitrary fragmentation; once a full request is buffered the parser
/// yields kComplete and holds the parsed request. Bytes past the end of the
/// request (pipelining) stay buffered: Reset() rolls the parser forward to
/// them.
///
/// Scope: Content-Length bodies only. Transfer-Encoding is answered with
/// 501, unknown HTTP versions with 505, oversized headers/bodies with
/// 431/413, and anything structurally malformed with 400 — the connection
/// layer writes the matching error response and closes.
class HttpParser {
 public:
  explicit HttpParser(HttpLimits limits = {}) : limits_(limits) {}

  enum class State { kNeedMore, kComplete, kError };

  State Feed(const char* data, size_t len);

  /// Valid iff the last Feed returned kComplete.
  const HttpRequest& request() const { return request_; }

  /// Valid iff the last Feed returned kError.
  int error_status() const { return error_status_; }
  const std::string& error_code() const { return error_code_; }
  const std::string& error_message() const { return error_message_; }

  /// Prepares for the next request on the same connection: drops the
  /// consumed bytes and immediately re-parses any pipelined leftover (so the
  /// caller must check state() again after Reset).
  State Reset();

  State state() const { return state_; }

  /// True when unconsumed bytes are buffered (a partial or pipelined
  /// request) — the connection should finish reading before closing.
  bool has_buffered() const { return buffer_.size() > consumed_; }

 private:
  State Advance();
  State FailWith(int status, std::string code, std::string message);
  bool ParseHead(std::string_view head);

  HttpLimits limits_;
  std::string buffer_;
  size_t consumed_ = 0;  // bytes of buffer_ belonging to the parsed request
  size_t body_length_ = 0;
  bool head_done_ = false;
  State state_ = State::kNeedMore;
  HttpRequest request_;
  int error_status_ = 400;
  std::string error_code_;
  std::string error_message_;
};

/// A request handler: fill in `response` for `request`. Runs on a server
/// worker thread; must be thread-safe.
using HttpHandler = std::function<void(const HttpRequest&, HttpResponse*)>;

}  // namespace net
}  // namespace hyper

#endif  // HYPER_NET_HTTP_H_
