#include "net/query_handler.h"

#include <utility>
#include <vector>

#include "common/json.h"
#include "common/strings.h"
#include "service/service_metrics.h"
#include "sql/lexer.h"
#include "sql/parser.h"

namespace hyper {
namespace net {

namespace {

using service::Response;

int GovernanceHttpStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kDeadlineExceeded:
      return 504;
    case StatusCode::kResourceExhausted:
      return 429;
    case StatusCode::kCancelled:
      return 499;
    case StatusCode::kUnavailable:
      // Shed (queue full) means "the same server, later" → 429; draining
      // means "this server is going away" → 503.
      return status.message().find("overloaded") != std::string::npos ? 429
                                                                      : 503;
    default:
      return 500;
  }
}

HttpResponse MakeError(int http_status, std::string_view code,
                       std::string_view message) {
  HttpResponse response;
  response.status = http_status;
  response.body = ErrorJson(http_status, code, message);
  if (http_status == 429 || http_status == 503) {
    response.headers.emplace_back("Retry-After", "1");
  }
  return response;
}

HttpResponse MakeError(const Status& status) {
  return MakeError(HttpStatusOf(status), StatusCodeName(status.code()),
                   status.message());
}

void WriteValue(JsonWriter* w, const Value& v) {
  switch (v.type()) {
    case ValueType::kNull: w->Null(); break;
    case ValueType::kBool: w->Bool(v.bool_value()); break;
    case ValueType::kInt: w->Int(v.int_value()); break;
    case ValueType::kDouble: w->Double(v.double_value()); break;
    case ValueType::kString: w->String(v.string_value()); break;
  }
}

Result<Value> JsonToValue(const JsonValue& j) {
  switch (j.kind()) {
    case JsonValue::Kind::kNull: return Value::Null();
    case JsonValue::Kind::kBool: return Value::Bool(j.bool_value());
    case JsonValue::Kind::kNumber:
      // An integral lexeme becomes Value::Int — exactly the Value an
      // in-process caller writing `Value::Int(2)` would pass, which the
      // bit-equality contract depends on.
      if (j.is_integer()) return Value::Int(j.int_value());
      return Value::Double(j.number_value());
    case JsonValue::Kind::kString: return Value::String(j.string_value());
    default:
      return Status::InvalidArgument(
          "intervention values must be scalars (null/bool/number/string)");
  }
}

void WriteTiming(JsonWriter* w, double total, double prepare, double eval,
                 double train) {
  w->Key("timing").BeginObject()
      .Key("total_seconds").Double(total)
      .Key("prepare_seconds").Double(prepare)
      .Key("eval_seconds").Double(eval)
      .Key("train_seconds").Double(train)
      .EndObject();
}

void WriteWhatIfFields(JsonWriter* w, const whatif::WhatIfResult& r) {
  w->Key("value").Double(r.value)
      .Key("view_rows").UInt(r.view_rows)
      .Key("updated_rows").UInt(r.updated_rows)
      .Key("blocks").UInt(r.num_blocks)
      .Key("patterns").UInt(r.num_patterns);
  w->Key("backdoor").BeginArray();
  for (const std::string& a : r.backdoor) w->String(a);
  w->EndArray();
  w->Key("plan_cache_hit").Bool(r.plan_cache_hit)
      .Key("pattern_cache_hits").UInt(r.pattern_cache_hits);
  WriteTiming(w, r.total_seconds, r.prepare_seconds, r.eval_seconds,
              r.train_seconds);
}

std::string RenderResponse(const Response& response) {
  JsonWriter w;
  w.BeginObject();
  switch (response.kind) {
    case Response::Kind::kWhatIf:
      w.Key("kind").String("whatif");
      WriteWhatIfFields(&w, response.whatif);
      break;
    case Response::Kind::kHowTo: {
      const howto::HowToResult& r = response.howto;
      w.Key("kind").String("howto")
          .Key("baseline_value").Double(r.baseline_value)
          .Key("objective_value").Double(r.objective_value);
      w.Key("plan").BeginArray();
      for (const howto::AttributeChoice& c : r.plan) {
        w.BeginObject()
            .Key("attribute").String(c.attribute)
            .Key("changed").Bool(c.changed);
        if (c.changed) {
          w.Key("func").String(sql::UpdateFuncKindName(c.update.func));
          w.Key("value");
          WriteValue(&w, c.update.constant);
          w.Key("delta").Double(c.delta).Key("cost").Double(c.cost);
        }
        w.EndObject();
      }
      w.EndArray();
      w.Key("candidates_evaluated").UInt(r.candidates_evaluated)
          .Key("candidates_pruned").UInt(r.candidates_pruned)
          .Key("used_mck").Bool(r.used_mck)
          .Key("solver_nodes").UInt(r.solver_nodes);
      WriteTiming(&w, r.total_seconds, r.prepare_seconds, r.eval_seconds,
                  r.train_seconds);
      break;
    }
    case Response::Kind::kSelect: {
      const Table& t = response.table;
      w.Key("kind").String("select");
      w.Key("columns").BeginArray();
      for (const AttributeDef& a : t.schema().attributes()) w.String(a.name);
      w.EndArray();
      w.Key("num_rows").UInt(t.num_rows());
      w.Key("rows").BeginArray();
      for (size_t tid = 0; tid < t.num_rows(); ++tid) {
        w.BeginArray();
        for (size_t attr = 0; attr < t.schema().num_attributes(); ++attr) {
          WriteValue(&w, t.At(tid, attr));
        }
        w.EndArray();
      }
      w.EndArray();
      break;
    }
    case Response::Kind::kNone:
      w.Key("kind").String("none");
      break;
  }
  w.Key("seconds").Double(response.seconds);
  w.EndObject();
  return w.Take();
}

/// Parses the statement text just far enough to name its kind, without
/// executing anything. Returns kNone on parse failure (the service will
/// produce the authoritative parse error).
Result<Response::Kind> StatementKind(const std::string& sql) {
  auto tokens = sql::Lexer(sql).Tokenize();
  if (!tokens.ok()) return tokens.status();
  auto stmt = sql::Parser(std::move(tokens).value()).ParseStatement();
  if (!stmt.ok()) return stmt.status();
  if (stmt.value().whatif != nullptr) return Response::Kind::kWhatIf;
  if (stmt.value().howto != nullptr) return Response::Kind::kHowTo;
  return Response::Kind::kSelect;
}

const char* KindName(Response::Kind kind) {
  switch (kind) {
    case Response::Kind::kWhatIf: return "what-if";
    case Response::Kind::kHowTo: return "how-to";
    case Response::Kind::kSelect: return "select";
    case Response::Kind::kNone: return "none";
  }
  return "?";
}

/// Unpacks the shared request-body fields (scenario, budget, estimator
/// overrides) into a service Request. Returns a client error on bad fields.
Status UnpackRequest(const JsonValue& body,
                     const service::ServiceOptions& defaults,
                     service::Request* out) {
  out->scenario = body.GetString("scenario", "main");
  const JsonValue* sql = body.Find("sql");
  if (sql == nullptr || !sql->is_string()) {
    return Status::InvalidArgument("missing required string field \"sql\"");
  }
  out->sql = sql->string_value();

  const int64_t deadline_ms = body.GetInt("deadline_ms", 0);
  const int64_t max_rows = body.GetInt("max_rows", 0);
  const int64_t max_bytes = body.GetInt("max_bytes", 0);
  if (deadline_ms < 0 || max_rows < 0 || max_bytes < 0) {
    return Status::InvalidArgument("budget fields must be non-negative");
  }
  out->budget.deadline_seconds = static_cast<double>(deadline_ms) / 1000.0;
  out->budget.max_rows_touched = static_cast<size_t>(max_rows);
  out->budget.max_bytes_materialized = static_cast<size_t>(max_bytes);

  const JsonValue* estimator = body.Find("estimator");
  const JsonValue* trees = body.Find("trees");
  if (estimator != nullptr || trees != nullptr) {
    whatif::WhatIfOptions opts = defaults.whatif;
    if (estimator != nullptr) {
      const std::string name =
          estimator->is_string() ? estimator->string_value() : "";
      if (name == "frequency") {
        opts.estimator = learn::EstimatorKind::kFrequency;
      } else if (name == "forest") {
        opts.estimator = learn::EstimatorKind::kForest;
      } else {
        return Status::InvalidArgument(
            "\"estimator\" must be \"frequency\" or \"forest\"");
      }
    }
    if (trees != nullptr) {
      if (!trees->is_integer() || trees->int_value() <= 0) {
        return Status::InvalidArgument("\"trees\" must be a positive integer");
      }
      opts.forest.num_trees = static_cast<size_t>(trees->int_value());
    }
    out->whatif_options = std::move(opts);
  }
  return Status::OK();
}

}  // namespace

int HttpStatusOf(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return 200;
    case StatusCode::kInvalidArgument:
    case StatusCode::kParseError:
    case StatusCode::kOutOfRange:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kAlreadyExists:
    case StatusCode::kFailedPrecondition:
      return 409;
    case StatusCode::kUnimplemented:
      return 501;
    case StatusCode::kInternal:
    case StatusCode::kDataLoss:
      return 500;
    default:
      return GovernanceHttpStatus(status);
  }
}

QueryHandler::QueryHandler(service::ScenarioService* service,
                           obs::MetricsRegistry* registry)
    : service_(service), registry_(registry) {}

HttpHandler QueryHandler::AsHandler() {
  return [this](const HttpRequest& request, HttpResponse* response) {
    Handle(request, response);
  };
}

void QueryHandler::CountRequest(const std::string& route, int http_status) {
  if (registry_ == nullptr) return;
  registry_
      ->GetCounter("hyper_http_requests_total",
                   StrFormat("route=\"%s\",code=\"%d\"", route.c_str(),
                             http_status),
                   "HTTP requests by route and status code")
      ->Increment();
}

void QueryHandler::Handle(const HttpRequest& request, HttpResponse* response) {
  const std::string path = request.path();
  const bool is_get = request.method == "GET";
  const bool is_post = request.method == "POST";
  std::string route = path;

  if (path == "/healthz" && is_get) {
    *response = Healthz();
  } else if (path == "/statusz" && is_get) {
    *response = Statusz();
  } else if (path == "/metrics" && is_get) {
    *response = Metrics();
  } else if (path == "/v1/whatif" && is_post) {
    *response = RunQuery(request.body, Response::Kind::kWhatIf);
  } else if (path == "/v1/howto" && is_post) {
    *response = RunQuery(request.body, Response::Kind::kHowTo);
  } else if (path == "/v1/query" && is_post) {
    *response = RunQuery(request.body, Response::Kind::kNone);
  } else if (path == "/v1/whatif/batch" && is_post) {
    *response = RunBatch(request.body);
  } else if (path == "/v1/scenario" && is_post) {
    *response = RunScenarioAction(request.body);
  } else if (path == "/v1/scenario" && is_get) {
    *response = ListScenarios();
  } else if (path == "/healthz" || path == "/statusz" || path == "/metrics" ||
             path == "/v1/whatif" || path == "/v1/howto" ||
             path == "/v1/query" || path == "/v1/whatif/batch" ||
             path == "/v1/scenario") {
    *response = MakeError(405, "method_not_allowed",
                          StrFormat("%s does not accept %s", path.c_str(),
                                    request.method.c_str()));
  } else {
    route = "unknown";
    *response = MakeError(404, "not_found",
                          StrFormat("no route for %s", path.c_str()));
  }
  CountRequest(route, response->status);
}

HttpResponse QueryHandler::RunQuery(const std::string& body,
                                    Response::Kind require_kind) {
  auto parsed = JsonValue::Parse(body);
  if (!parsed.ok()) {
    return MakeError(400, "bad_json", parsed.status().message());
  }
  if (!parsed.value().is_object()) {
    return MakeError(400, "bad_json", "request body must be a JSON object");
  }

  service::Request request;
  const Status unpack =
      UnpackRequest(parsed.value(), service_->options(), &request);
  if (!unpack.ok()) return MakeError(unpack);

  if (require_kind != Response::Kind::kNone) {
    // Reject wrong-kind statements before spending any execution budget.
    auto kind = StatementKind(request.sql);
    if (kind.ok() && kind.value() != require_kind) {
      return MakeError(
          400, "wrong_statement_kind",
          StrFormat("this endpoint serves %s statements, got a %s "
                    "statement (use /v1/query for any kind)",
                    KindName(require_kind), KindName(kind.value())));
    }
    // Parse failures fall through: Submit produces the authoritative error.
  }

  const Response response = service_->Submit(request);
  if (!response.ok()) return MakeError(response.status);

  HttpResponse http;
  http.body = RenderResponse(response);
  return http;
}

HttpResponse QueryHandler::RunBatch(const std::string& body) {
  auto parsed = JsonValue::Parse(body);
  if (!parsed.ok()) {
    return MakeError(400, "bad_json", parsed.status().message());
  }
  const JsonValue& root = parsed.value();
  if (!root.is_object()) {
    return MakeError(400, "bad_json", "request body must be a JSON object");
  }
  const std::string scenario = root.GetString("scenario", "main");
  const JsonValue* sql = root.Find("sql");
  if (sql == nullptr || !sql->is_string()) {
    return MakeError(400, "bad_request",
                     "missing required string field \"sql\"");
  }
  const JsonValue* interventions = root.Find("interventions");
  if (interventions == nullptr || !interventions->is_array()) {
    return MakeError(400, "bad_request",
                     "missing required array field \"interventions\"");
  }

  std::vector<std::vector<whatif::UpdateSpec>> specs;
  specs.reserve(interventions->array().size());
  for (const JsonValue& group : interventions->array()) {
    if (!group.is_array()) {
      return MakeError(400, "bad_request",
                       "each intervention must be an array of updates");
    }
    std::vector<whatif::UpdateSpec> updates;
    updates.reserve(group.array().size());
    for (const JsonValue& u : group.array()) {
      if (!u.is_object()) {
        return MakeError(400, "bad_request",
                         "each update must be an object with \"attribute\" "
                         "and \"value\"");
      }
      whatif::UpdateSpec spec;
      spec.attribute = u.GetString("attribute");
      if (spec.attribute.empty()) {
        return MakeError(400, "bad_request",
                         "update is missing string field \"attribute\"");
      }
      const std::string func = u.GetString("func", "set");
      if (func == "set") {
        spec.func = sql::UpdateFuncKind::kSet;
      } else if (func == "scale") {
        spec.func = sql::UpdateFuncKind::kScale;
      } else if (func == "shift") {
        spec.func = sql::UpdateFuncKind::kShift;
      } else {
        return MakeError(400, "bad_request",
                         "\"func\" must be \"set\", \"scale\" or \"shift\"");
      }
      const JsonValue* value = u.Find("value");
      if (value == nullptr) {
        return MakeError(400, "bad_request",
                         "update is missing field \"value\"");
      }
      auto converted = JsonToValue(*value);
      if (!converted.ok()) return MakeError(converted.status());
      spec.constant = std::move(converted).value();
      updates.push_back(std::move(spec));
    }
    specs.push_back(std::move(updates));
  }

  auto result =
      service_->SubmitWhatIfBatch(scenario, sql->string_value(), specs);
  if (!result.ok()) return MakeError(result.status());

  JsonWriter w;
  w.BeginObject().Key("kind").String("whatif_batch");
  w.Key("items").BeginArray();
  for (const service::WhatIfBatchItem& item : result.value()) {
    w.BeginObject();
    if (item.ok()) {
      w.Key("status").String("ok");
      WriteWhatIfFields(&w, item.result);
    } else {
      w.Key("status").String(StatusCodeName(item.status.code()));
      w.Key("error").BeginObject()
          .Key("code").String(StatusCodeName(item.status.code()))
          .Key("http_status").Int(HttpStatusOf(item.status))
          .Key("message").String(item.status.message())
          .EndObject();
    }
    w.EndObject();
  }
  w.EndArray().EndObject();

  HttpResponse http;
  http.body = w.Take();
  return http;
}

HttpResponse QueryHandler::RunScenarioAction(const std::string& body) {
  auto parsed = JsonValue::Parse(body);
  if (!parsed.ok()) {
    return MakeError(400, "bad_json", parsed.status().message());
  }
  const JsonValue& root = parsed.value();
  if (!root.is_object()) {
    return MakeError(400, "bad_json", "request body must be a JSON object");
  }
  const std::string action = root.GetString("action");

  JsonWriter w;
  if (action == "create") {
    const std::string name = root.GetString("name");
    if (name.empty()) {
      return MakeError(400, "bad_request", "\"create\" requires \"name\"");
    }
    const Status s =
        service_->CreateScenario(name, root.GetString("parent", "main"));
    if (!s.ok()) return MakeError(s);
    w.BeginObject().Key("ok").Bool(true).Key("created").String(name)
        .EndObject();
  } else if (action == "apply") {
    const std::string scenario = root.GetString("scenario", "main");
    const JsonValue* sql = root.Find("sql");
    if (sql == nullptr || !sql->is_string()) {
      return MakeError(400, "bad_request",
                       "\"apply\" requires string field \"sql\"");
    }
    auto updated =
        service_->ApplyHypotheticalSql(scenario, sql->string_value());
    if (!updated.ok()) return MakeError(updated.status());
    w.BeginObject().Key("ok").Bool(true).Key("scenario").String(scenario)
        .Key("updated_rows").UInt(updated.value()).EndObject();
  } else if (action == "drop") {
    const std::string name = root.GetString("name");
    if (name.empty()) {
      return MakeError(400, "bad_request", "\"drop\" requires \"name\"");
    }
    const Status s = service_->DropScenario(name);
    if (!s.ok()) return MakeError(s);
    w.BeginObject().Key("ok").Bool(true).Key("dropped").String(name)
        .EndObject();
  } else {
    return MakeError(400, "bad_request",
                     "\"action\" must be \"create\", \"apply\" or \"drop\"");
  }

  HttpResponse http;
  http.body = w.Take();
  return http;
}

HttpResponse QueryHandler::ListScenarios() {
  JsonWriter w;
  w.BeginObject().Key("scenarios").BeginArray();
  for (const service::ScenarioInfo& info : service_->ListScenarios()) {
    w.BeginObject()
        .Key("name").String(info.name)
        .Key("parent").String(info.parent)
        .Key("updates_applied").UInt(info.updates_applied)
        .Key("overridden_cells").UInt(info.overridden_cells)
        .Key("delta_fingerprint")
        .String(StrFormat("%016llx",
                          static_cast<unsigned long long>(
                              info.delta_fingerprint)))
        .EndObject();
  }
  w.EndArray().EndObject();
  HttpResponse http;
  http.body = w.Take();
  return http;
}

HttpResponse QueryHandler::Metrics() {
  obs::MetricsSnapshot snapshot;
  if (registry_ != nullptr) snapshot = registry_->Snapshot();
  service::AppendServiceSeries(*service_, &snapshot);
  HttpResponse http;
  http.content_type = "text/plain; version=0.0.4";
  http.body = obs::RenderPrometheus(snapshot);
  return http;
}

HttpResponse QueryHandler::Healthz() {
  HttpResponse http;
  JsonWriter w;
  if (service_->draining()) {
    http.status = 503;
    w.BeginObject().Key("status").String("draining").EndObject();
  } else {
    w.BeginObject().Key("status").String("ok").EndObject();
  }
  http.body = w.Take();
  return http;
}

HttpResponse QueryHandler::Statusz() {
  HttpResponse http;
  http.body = service::StatuszJson(*service_, registry_);
  return http;
}

std::string QueryHandler::HandleLine(const std::string& scenario,
                                     const std::string& sql) {
  JsonWriter body;
  body.BeginObject().Key("scenario").String(scenario).Key("sql").String(sql)
      .EndObject();
  const HttpResponse response = RunQuery(body.Take(), Response::Kind::kNone);
  return response.body;
}

}  // namespace net
}  // namespace hyper
