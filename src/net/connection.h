#ifndef HYPER_NET_CONNECTION_H_
#define HYPER_NET_CONNECTION_H_

#include <atomic>
#include <cstdint>

#include "net/http.h"

namespace hyper {
namespace net {

/// Drives one accepted socket through its keep-alive lifetime: poll/read,
/// feed the incremental parser, dispatch complete requests to the handler,
/// write responses, loop while keep-alive holds. Owns and closes the fd.
///
/// Shutdown contract: `stop` is checked between requests and while waiting
/// for bytes. When it trips with no partial request buffered the connection
/// closes immediately; a request already in flight (or mid-read) is finished
/// and answered first — the service layer is draining by then, so new work
/// gets its 503 body rather than a dropped connection.
class HttpConnection {
 public:
  struct Stats {
    uint64_t requests = 0;
    uint64_t parse_errors = 0;
  };

  HttpConnection(int fd, HttpLimits limits, int idle_timeout_ms)
      : fd_(fd), parser_(limits), idle_timeout_ms_(idle_timeout_ms) {}
  ~HttpConnection();

  HttpConnection(const HttpConnection&) = delete;
  HttpConnection& operator=(const HttpConnection&) = delete;

  /// Blocks until the connection is done (peer close, error, idle timeout,
  /// Connection: close, or stop). Returns per-connection stats.
  Stats Serve(const HttpHandler& handler, const std::atomic<bool>& stop);

 private:
  bool WriteAll(const char* data, size_t len);
  /// Waits up to the poll quantum for readable bytes; returns false on
  /// timeout budget exhaustion, peer close, or socket error.
  enum class ReadResult { kData, kTimeout, kClosed };
  ReadResult ReadSome();

  int fd_;
  HttpParser parser_;
  int idle_timeout_ms_;
  int idle_left_ms_ = 0;
};

}  // namespace net
}  // namespace hyper

#endif  // HYPER_NET_CONNECTION_H_
