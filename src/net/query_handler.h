#ifndef HYPER_NET_QUERY_HANDLER_H_
#define HYPER_NET_QUERY_HANDLER_H_

#include <string>

#include "net/http.h"
#include "obs/metrics.h"
#include "service/scenario_service.h"

namespace hyper {
namespace net {

/// Maps a Status onto an HTTP status code. Governance aborts follow the
/// serving contract: kDeadlineExceeded→504, kResourceExhausted→429,
/// kUnavailable→429 when shed by a full admission queue (the message says
/// "overloaded" — retry the same server) and 503 when draining (retry
/// elsewhere), kCancelled→499. Client mistakes (parse errors, unknown
/// scenarios, wrong statement kinds) map into the 4xx range.
int HttpStatusOf(const Status& status);

/// The single request-parsing path of the serving layer: HTTP requests,
/// `scenario_server --stdin` lines and the demo mode all funnel through
/// here, so wire behavior cannot diverge between transports.
///
/// Routes:
///   POST /v1/whatif         one what-if statement (kind-checked)
///   POST /v1/howto          one how-to statement (kind-checked)
///   POST /v1/query          any statement (what-if / how-to / select)
///   POST /v1/whatif/batch   N interventions against one prepared plan
///   POST /v1/scenario       {"action":"create"|"apply"|"drop"} management
///   GET  /v1/scenario       list scenario branches
///   GET  /metrics           Prometheus text exposition
///   GET  /healthz           liveness + drain state
///   GET  /statusz           JSON status snapshot (admission, caches, metrics)
///
/// Request bodies accept "scenario" (default "main"), "sql", budget fields
/// "deadline_ms" / "max_rows" / "max_bytes" (zero = unlimited), and the
/// estimator overrides "estimator" ("frequency" | "forest") and "trees".
class QueryHandler {
 public:
  /// Neither pointer is owned. `registry` may be null (metrics routes then
  /// serve only the service-derived series).
  QueryHandler(service::ScenarioService* service,
               obs::MetricsRegistry* registry);

  /// HTTP entry point; thread-safe (the service handles its own locking).
  void Handle(const HttpRequest& request, HttpResponse* response);

  /// Adapter for HttpServer::Start. The handler must outlive the server.
  HttpHandler AsHandler();

  /// The stdin/demo path: runs `sql` against `scenario` exactly like
  /// POST /v1/query and returns the response body (success or the same
  /// structured error object the HTTP path sends).
  std::string HandleLine(const std::string& scenario, const std::string& sql);

 private:
  HttpResponse RunQuery(const std::string& body,
                        service::Response::Kind require_kind);
  HttpResponse RunBatch(const std::string& body);
  HttpResponse RunScenarioAction(const std::string& body);
  HttpResponse ListScenarios();
  HttpResponse Metrics();
  HttpResponse Healthz();
  HttpResponse Statusz();

  void CountRequest(const std::string& route, int http_status);

  service::ScenarioService* service_;
  obs::MetricsRegistry* registry_;
};

}  // namespace net
}  // namespace hyper

#endif  // HYPER_NET_QUERY_HANDLER_H_
