#include "net/listener.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/strings.h"
#include "net/connection.h"

namespace hyper {
namespace net {

HttpServer::HttpServer(HttpServerOptions options)
    : options_(std::move(options)) {
  if (options_.num_threads == 0) options_.num_threads = 1;
}

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Start(HttpHandler handler) {
  if (started_) return Status::FailedPrecondition("server already started");
  handler_ = std::move(handler);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(StrFormat("socket(): %s", std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument(
        StrFormat("invalid bind address '%s'", options_.bind_address.c_str()));
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal(StrFormat("bind(%s:%u): %s",
                                      options_.bind_address.c_str(),
                                      unsigned{options_.port}, err.c_str()));
  }
  if (::listen(listen_fd_, options_.backlog) < 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal(StrFormat("listen(): %s", err.c_str()));
  }

  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = options_.port;
  }

  stopping_.store(false);
  started_ = true;
  accept_thread_ = std::thread(&HttpServer::AcceptLoop, this);
  workers_.reserve(options_.num_threads);
  for (size_t i = 0; i < options_.num_threads; ++i) {
    workers_.emplace_back(&HttpServer::WorkerLoop, this);
  }
  return Status::OK();
}

void HttpServer::Stop() {
  if (!started_) return;
  started_ = false;
  stopping_.store(true);
  // Unblock accept(): shutdown() wakes a blocked accept on Linux; close()
  // finishes the job.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (accept_thread_.joinable()) accept_thread_.join();
  cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  // Drop connections that were accepted but never picked up.
  std::lock_guard<std::mutex> lock(mu_);
  for (const int fd : pending_) ::close(fd);
  pending_.clear();
}

void HttpServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (stopping_.load(std::memory_order_relaxed)) break;
      if (errno == ECONNABORTED) continue;
      break;  // listen socket is gone
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(mu_);
      pending_.push_back(fd);
    }
    cv_.notify_one();
  }
}

void HttpServer::WorkerLoop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] {
        return !pending_.empty() || stopping_.load(std::memory_order_relaxed);
      });
      if (pending_.empty()) return;  // stopping and drained
      fd = pending_.front();
      pending_.pop_front();
    }
    HttpConnection connection(fd, options_.limits, options_.idle_timeout_ms);
    const HttpConnection::Stats stats = connection.Serve(handler_, stopping_);
    requests_served_.fetch_add(stats.requests, std::memory_order_relaxed);
    parse_errors_.fetch_add(stats.parse_errors, std::memory_order_relaxed);
  }
}

HttpServer::Stats HttpServer::stats() const {
  Stats s;
  s.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  s.requests_served = requests_served_.load(std::memory_order_relaxed);
  s.parse_errors = parse_errors_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace net
}  // namespace hyper
