#include "net/listener.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/strings.h"
#include "net/connection.h"

namespace hyper {
namespace net {

HttpServer::HttpServer(HttpServerOptions options)
    : options_(std::move(options)) {
  if (options_.num_threads == 0) options_.num_threads = 1;
}

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Start(HttpHandler handler) {
  if (started_.load()) {
    return Status::FailedPrecondition("server already started");
  }
  handler_ = std::move(handler);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(StrFormat("socket(): %s", std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(fd);
    return Status::InvalidArgument(
        StrFormat("invalid bind address '%s'", options_.bind_address.c_str()));
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Internal(StrFormat("bind(%s:%u): %s",
                                      options_.bind_address.c_str(),
                                      unsigned{options_.port}, err.c_str()));
  }
  if (::listen(fd, options_.backlog) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Internal(StrFormat("listen(): %s", err.c_str()));
  }

  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = options_.port;
  }

  listen_fd_.store(fd);
  stopping_.store(false);
  started_.store(true);
  accept_thread_ = std::thread(&HttpServer::AcceptLoop, this);
  workers_.reserve(options_.num_threads);
  for (size_t i = 0; i < options_.num_threads; ++i) {
    workers_.emplace_back(&HttpServer::WorkerLoop, this);
  }
  return Status::OK();
}

void HttpServer::Stop() {
  if (!started_.exchange(false)) return;
  {
    // Published under mu_ so the store cannot land between a worker's
    // predicate check and its wait — otherwise the NotifyAll below can fire
    // before the worker blocks and the wakeup is lost (the worker would
    // sleep forever; TSan's scheduler hits this window reliably).
    MutexLock lock(&mu_);
    stopping_.store(true);
  }
  // Unblock accept(): shutdown() wakes a blocked accept on Linux; close()
  // finishes the job.
  const int fd = listen_fd_.exchange(-1);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  cv_.NotifyAll();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  // Drop connections that were accepted but never picked up.
  MutexLock lock(&mu_);
  for (const int pending_fd : pending_) ::close(pending_fd);
  pending_.clear();
}

void HttpServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int listen_fd = listen_fd_.load(std::memory_order_relaxed);
    if (listen_fd < 0) break;  // Stop() already closed it
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (stopping_.load(std::memory_order_relaxed)) break;
      if (errno == ECONNABORTED) continue;
      break;  // listen socket is gone
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    {
      MutexLock lock(&mu_);
      pending_.push_back(fd);
    }
    cv_.NotifyOne();
  }
}

void HttpServer::WorkerLoop() {
  for (;;) {
    int fd = -1;
    {
      MutexLock lock(&mu_);
      while (pending_.empty() &&
             !stopping_.load(std::memory_order_relaxed)) {
        cv_.Wait(mu_);
      }
      if (pending_.empty()) return;  // stopping and drained
      fd = pending_.front();
      pending_.pop_front();
    }
    HttpConnection connection(fd, options_.limits, options_.idle_timeout_ms);
    const HttpConnection::Stats stats = connection.Serve(handler_, stopping_);
    requests_served_.fetch_add(stats.requests, std::memory_order_relaxed);
    parse_errors_.fetch_add(stats.parse_errors, std::memory_order_relaxed);
  }
}

HttpServer::Stats HttpServer::stats() const {
  Stats s;
  s.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  s.requests_served = requests_served_.load(std::memory_order_relaxed);
  s.parse_errors = parse_errors_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace net
}  // namespace hyper
