#ifndef HYPER_NET_LISTENER_H_
#define HYPER_NET_LISTENER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "net/http.h"

namespace hyper {
namespace net {

struct HttpServerOptions {
  std::string bind_address = "127.0.0.1";
  /// 0 asks the kernel for an ephemeral port; read the result from port().
  uint16_t port = 8080;
  size_t num_threads = 4;
  HttpLimits limits;
  int idle_timeout_ms = 30000;
  int backlog = 128;
};

/// Blocking-socket HTTP server: one accept thread feeds a bounded-by-nothing
/// fd queue drained by `num_threads` workers, each of which owns one
/// connection for its whole keep-alive lifetime. Dependency-free (POSIX
/// sockets + std::thread); suitable for the query volumes a scenario
/// service sees, not for slowloris-grade fan-in.
class HttpServer {
 public:
  explicit HttpServer(HttpServerOptions options = {});
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens, and spins up the accept + worker threads. The handler
  /// runs on worker threads and must be thread-safe.
  Status Start(HttpHandler handler);

  /// Stops accepting, closes the listen socket, and joins every thread.
  /// Connections mid-request finish their current response first (see
  /// HttpConnection's stop contract). Idempotent.
  void Stop();

  /// The bound port (resolves ephemeral requests after Start).
  uint16_t port() const { return port_; }

  struct Stats {
    uint64_t connections_accepted = 0;
    uint64_t requests_served = 0;
    uint64_t parse_errors = 0;
  };
  Stats stats() const;

 private:
  void AcceptLoop();
  void WorkerLoop();

  HttpServerOptions options_;
  HttpHandler handler_;
  /// Atomic because Stop() writes -1 while AcceptLoop may still be reading
  /// the fd for accept() — the shutdown/close wakes that accept, but the
  /// load itself must not race the store.
  std::atomic<int> listen_fd_{-1};
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  /// Start/Stop are caller-serialized (see Start's precondition); atomic so
  /// a misuse is a clean read, not a data race.
  std::atomic<bool> started_{false};

  std::thread accept_thread_;
  std::vector<std::thread> workers_;

  Mutex mu_;
  CondVar cv_;
  std::deque<int> pending_ GUARDED_BY(mu_);  // accepted fds awaiting a worker

  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> requests_served_{0};
  std::atomic<uint64_t> parse_errors_{0};
};

}  // namespace net
}  // namespace hyper

#endif  // HYPER_NET_LISTENER_H_
