#include "net/connection.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

namespace hyper {
namespace net {

namespace {
// Poll quantum: how often the read loop re-checks the stop flag while idle.
constexpr int kPollQuantumMs = 200;
}  // namespace

HttpConnection::~HttpConnection() {
  if (fd_ >= 0) ::close(fd_);
}

bool HttpConnection::WriteAll(const char* data, size_t len) {
  size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd_, data + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

HttpConnection::ReadResult HttpConnection::ReadSome() {
  struct pollfd pfd;
  pfd.fd = fd_;
  pfd.events = POLLIN;
  pfd.revents = 0;
  const int ready = ::poll(&pfd, 1, kPollQuantumMs);
  if (ready < 0) {
    if (errno == EINTR) return ReadResult::kTimeout;
    return ReadResult::kClosed;
  }
  if (ready == 0) return ReadResult::kTimeout;
  char buf[8192];
  const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
  if (n > 0) {
    parser_.Feed(buf, static_cast<size_t>(n));
    return ReadResult::kData;
  }
  if (n < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) {
    return ReadResult::kTimeout;
  }
  return ReadResult::kClosed;  // orderly peer close or hard error
}

HttpConnection::Stats HttpConnection::Serve(const HttpHandler& handler,
                                            const std::atomic<bool>& stop) {
  Stats stats;
  for (;;) {
    idle_left_ms_ = idle_timeout_ms_;
    while (parser_.state() == HttpParser::State::kNeedMore) {
      // A stop with nothing buffered means no request is owed an answer;
      // mid-request bytes are read to completion so the (draining) service
      // can reject the request with a proper response instead of a RST.
      if (stop.load(std::memory_order_relaxed) && !parser_.has_buffered()) {
        return stats;
      }
      switch (ReadSome()) {
        case ReadResult::kData:
          idle_left_ms_ = idle_timeout_ms_;
          break;
        case ReadResult::kTimeout:
          idle_left_ms_ -= kPollQuantumMs;
          if (idle_left_ms_ <= 0) return stats;
          break;
        case ReadResult::kClosed:
          return stats;
      }
    }

    if (parser_.state() == HttpParser::State::kError) {
      ++stats.parse_errors;
      HttpResponse response;
      response.status = parser_.error_status();
      response.body = ErrorJson(parser_.error_status(), parser_.error_code(),
                                parser_.error_message());
      const std::string wire = SerializeResponse(response, false);
      WriteAll(wire.data(), wire.size());
      return stats;  // framing is unreliable after a parse error: close
    }

    ++stats.requests;
    const HttpRequest& request = parser_.request();
    HttpResponse response;
    handler(request, &response);
    const bool keep =
        request.keep_alive() && !stop.load(std::memory_order_relaxed);
    const std::string wire = SerializeResponse(response, keep);
    if (!WriteAll(wire.data(), wire.size())) return stats;
    if (!keep) return stats;
    parser_.Reset();  // may surface a pipelined request immediately
  }
}

}  // namespace net
}  // namespace hyper
