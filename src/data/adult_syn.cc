#include <memory>

#include "data/datasets.h"

namespace hyper::data {

namespace {

using causal::DiscreteMechanism;
using causal::Scm;

std::vector<Value> IntOutcomes(int n) {
  std::vector<Value> out;
  for (int i = 0; i < n; ++i) out.push_back(Value::Int(i));
  return out;
}

double AsD(const Value& v) { return v.AsDouble().value_or(0.0); }

Result<Scm> BuildScm() {
  Scm scm;
  auto discrete = [](std::vector<Value> outcomes,
                     DiscreteMechanism::WeightFn fn) {
    return std::make_unique<DiscreteMechanism>(std::move(outcomes),
                                               std::move(fn));
  };

  HYPER_RETURN_NOT_OK(scm.AddAttribute(
      "Age", {}, discrete(IntOutcomes(3), [](const std::vector<Value>&) {
        return std::vector<double>{0.35, 0.4, 0.25};
      })));
  HYPER_RETURN_NOT_OK(scm.AddAttribute(
      "Sex", {}, discrete(IntOutcomes(2), [](const std::vector<Value>&) {
        return std::vector<double>{0.52, 0.48};
      })));
  HYPER_RETURN_NOT_OK(scm.AddAttribute(
      "Education", {{"Age", ""}},
      discrete(IntOutcomes(4), [](const std::vector<Value>& ps) {
        const double age = AsD(ps[0]);
        return std::vector<double>{0.9 - 0.15 * age, 1.0,
                                   0.5 + 0.15 * age, 0.25 + 0.1 * age};
      })));
  // 0 = never married, 1 = married, 2 = divorced.
  HYPER_RETURN_NOT_OK(scm.AddAttribute(
      "Marital", {{"Age", ""}, {"Sex", ""}},
      discrete(IntOutcomes(3), [](const std::vector<Value>& ps) {
        const double age = AsD(ps[0]);
        return std::vector<double>{1.2 - 0.45 * age,
                                   0.35 + 0.45 * age,
                                   0.1 + 0.15 * age + 0.05 * AsD(ps[1])};
      })));
  HYPER_RETURN_NOT_OK(scm.AddAttribute(
      "Occupation", {{"Education", ""}, {"Sex", ""}},
      discrete(IntOutcomes(4), [](const std::vector<Value>& ps) {
        const double edu = AsD(ps[0]);
        return std::vector<double>{1.0 - 0.2 * edu, 0.9,
                                   0.35 + 0.25 * edu,
                                   0.15 + 0.25 * edu + 0.05 * AsD(ps[1])};
      })));
  HYPER_RETURN_NOT_OK(scm.AddAttribute(
      "Hours", {{"Marital", ""}},
      discrete(IntOutcomes(3), [](const std::vector<Value>& ps) {
        const double married = AsD(ps[0]) == 1.0 ? 1.0 : 0.0;
        return std::vector<double>{0.8 - 0.2 * married, 1.0,
                                   0.4 + 0.3 * married};
      })));
  HYPER_RETURN_NOT_OK(scm.AddAttribute(
      "Workclass", {{"Education", ""}},
      discrete(IntOutcomes(3), [](const std::vector<Value>& ps) {
        const double edu = AsD(ps[0]);
        return std::vector<double>{1.0, 0.6 + 0.1 * edu, 0.3 + 0.1 * edu};
      })));
  // Income > 50K: marital status dominates (§5.3: 38% married vs <9%
  // unmarried), then occupation and education; workclass is minor.
  HYPER_RETURN_NOT_OK(scm.AddAttribute(
      "Income",
      {{"Marital", ""},
       {"Occupation", ""},
       {"Education", ""},
       {"Workclass", ""},
       {"Hours", ""},
       {"Age", ""}},
      discrete(IntOutcomes(2), [](const std::vector<Value>& ps) {
        const double married = AsD(ps[0]) == 1.0 ? 1.0 : 0.0;
        double p = 0.02 + 0.28 * married + 0.07 * (AsD(ps[1]) / 3.0) +
                   0.06 * (AsD(ps[2]) / 3.0) + 0.015 * (AsD(ps[3]) / 2.0) +
                   0.025 * (AsD(ps[4]) / 2.0) + 0.015 * (AsD(ps[5]) / 2.0);
        p = std::min(0.95, std::max(0.02, p));
        return std::vector<double>{1.0 - p, p};
      })));
  return scm;
}

}  // namespace

Result<Dataset> MakeAdultSyn(const AdultOptions& options) {
  Dataset ds;
  ds.name = "adult-syn";
  ds.main_relation = "Adult";
  ds.flat_relation = "Adult";
  HYPER_ASSIGN_OR_RETURN(ds.scm, BuildScm());
  ds.graph = ds.scm.Graph();

  Schema schema("Adult",
                {{"Id", ValueType::kInt, Mutability::kImmutable},
                 {"Age", ValueType::kInt, Mutability::kImmutable},
                 {"Sex", ValueType::kInt, Mutability::kImmutable},
                 {"Education", ValueType::kInt, Mutability::kMutable},
                 {"Marital", ValueType::kInt, Mutability::kMutable},
                 {"Occupation", ValueType::kInt, Mutability::kMutable},
                 {"Hours", ValueType::kInt, Mutability::kMutable},
                 {"Workclass", ValueType::kInt, Mutability::kMutable},
                 {"Income", ValueType::kInt, Mutability::kMutable}},
                {"Id"});
  Table table(std::move(schema));
  table.Reserve(options.rows);

  // Compiled flat sampler (see german_syn.cc): identical data to the
  // SampleEntity path without per-row map allocations.
  HYPER_ASSIGN_OR_RETURN(causal::Scm::EntitySampler sampler,
                         ds.scm.CompileEntitySampler());
  const size_t ia = sampler.IndexOf("Age"), is = sampler.IndexOf("Sex"),
               ie = sampler.IndexOf("Education"),
               im = sampler.IndexOf("Marital"),
               io = sampler.IndexOf("Occupation"),
               ih = sampler.IndexOf("Hours"),
               iw = sampler.IndexOf("Workclass"),
               ii = sampler.IndexOf("Income");
  Rng rng(options.seed);
  std::vector<Value> a;
  for (size_t i = 0; i < options.rows; ++i) {
    HYPER_RETURN_NOT_OK(sampler.Sample(rng, &a));
    table.AppendUnchecked({Value::Int(static_cast<int64_t>(i)), a[ia], a[is],
                           a[ie], a[im], a[io], a[ih], a[iw], a[ii]});
  }
  HYPER_RETURN_NOT_OK(ds.db.AddTable(table));
  HYPER_RETURN_NOT_OK(ds.flat.AddTable(std::move(table)));
  return ds;
}

}  // namespace hyper::data
