#ifndef HYPER_DATA_DATASETS_H_
#define HYPER_DATA_DATASETS_H_

#include <cstdint>
#include <string>

#include "causal/graph.h"
#include "causal/scm.h"
#include "common/status.h"
#include "storage/database.h"

namespace hyper::data {

/// A synthetic dataset bundle: the relational database HypeR queries, a
/// flattened single-relation image for exact ground-truth evaluation, the
/// entity-level SCM that generated it, and the attribute-level causal graph
/// (with cross-relation links) handed to the engine.
///
/// All five paper datasets (§5.1) are generated from SCMs that follow the
/// causal graphs the paper cites (Chiappa 2019 for Adult/German; the paper's
/// own Figure 2 for Amazon); see DESIGN.md §2 for the substitution rationale.
struct Dataset {
  std::string name;
  /// Relational form: what the engine queries (may be multi-relation).
  Database db;
  /// Flattened single-relation form for per-tuple ground truth; equals the
  /// main relation for single-table datasets. For Student-Syn it is the
  /// participation rows joined with their student attributes (averaging the
  /// flat rows equals averaging per-student course averages because every
  /// student takes the same number of courses).
  Database flat;
  std::string flat_relation;
  /// Entity-level SCM over the flat schema (exact interventionals).
  causal::Scm scm;
  /// Attribute-level causal graph for the engine (relational links included).
  causal::CausalGraph graph;
  /// Relation carrying the usual update attributes.
  std::string main_relation;
};

// ---------------------------------------------------------------------------
// German credit (synthetic; graph follows Chiappa 2019 as cited by §5.1)
// ---------------------------------------------------------------------------

struct GermanOptions {
  size_t rows = 1000;
  uint64_t seed = 11;
  /// Continuous CreditAmount (root attribute) — the Figure 9 discretization
  /// experiment uses this variant.
  bool continuous_amount = false;
};

/// Attributes: Age{0,1,2}, Sex{0,1} (roots); Status{0..3}, Savings{0..2},
/// Housing{0..2}, CreditHistory{0..2}, CreditAmount{0..3 or continuous};
/// Credit{0,1}. Age confounds Status and Credit, so the correlational
/// Indep baseline over-estimates the effect of Status (Figure 10a).
Result<Dataset> MakeGermanSyn(const GermanOptions& options);

// ---------------------------------------------------------------------------
// Adult income (synthetic)
// ---------------------------------------------------------------------------

struct AdultOptions {
  size_t rows = 32000;
  uint64_t seed = 13;
};

/// Attributes: Age{0,1,2}, Sex{0,1} (roots); Education{0..3},
/// Marital{0,1,2}, Occupation{0..3}, Hours{0..2}, Workclass{0..2};
/// Income{0,1}. Marital status carries the dominant effect on income —
/// the §5.3 observation (38% vs <9%) is baked into the mechanism.
Result<Dataset> MakeAdultSyn(const AdultOptions& options);

// ---------------------------------------------------------------------------
// Amazon products + reviews (two relations; Figures 1-2)
// ---------------------------------------------------------------------------

struct AmazonOptions {
  size_t products = 3000;
  /// Expected reviews per product (uniform 1..2x-1).
  size_t reviews_per_product = 18;
  uint64_t seed = 17;
};

/// Product(PID, Category, Brand, Color, Quality, Price) and
/// Review(PID, ReviewID, Sentiment, Rating). Quality raises price and
/// ratings; price depresses ratings (cheaper laptops rate better, §5.3);
/// Apple's brand quality prior is highest. The flat form joins each review
/// with its product attributes.
Result<Dataset> MakeAmazonSyn(const AmazonOptions& options);

// ---------------------------------------------------------------------------
// Student participation (two relations, 5 courses per student; §5.1)
// ---------------------------------------------------------------------------

struct StudentOptions {
  size_t students = 2000;
  size_t courses_per_student = 5;
  uint64_t seed = 19;
};

/// Student(SID, Age, Gender, Country, Attendance) and
/// Participation(SID, CourseID, HandRaised, Discussion, Announcements,
/// Assignment, Grade). Attendance has the largest *total* effect on grades
/// (direct plus through discussion/announcements), matching §5.4.
Result<Dataset> MakeStudentSyn(const StudentOptions& options);

// ---------------------------------------------------------------------------
// Registry (bench harnesses look datasets up by paper name)
// ---------------------------------------------------------------------------

/// Names: "german", "german-syn-20k", "german-syn-1m", "german-syn-10m"
/// (scaled by `scale` in [0,1] to keep default bench runs fast), "adult",
/// "amazon", "student-syn".
Result<Dataset> MakeByName(const std::string& name, double scale = 1.0,
                           uint64_t seed = 23);

}  // namespace hyper::data

#endif  // HYPER_DATA_DATASETS_H_
