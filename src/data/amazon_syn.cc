#include <memory>

#include "data/datasets.h"

namespace hyper::data {

namespace {

using causal::DiscreteMechanism;
using causal::Scm;

double AsD(const Value& v) { return v.AsDouble().value_or(0.0); }

struct BrandInfo {
  const char* name;
  double quality_prior;  // base quality in [0, 1]
};

constexpr BrandInfo kLaptopBrands[] = {
    {"Apple", 0.85}, {"Dell", 0.72},  {"Toshiba", 0.66},
    {"Acer", 0.60},  {"Asus", 0.58},  {"HP", 0.55},
    {"Vaio", 0.52},
};
constexpr BrandInfo kCameraBrands[] = {{"Canon", 0.75}, {"Nikon", 0.7},
                                       {"Sony", 0.68}};
constexpr BrandInfo kBookBrands[] = {{"Fantasy Press", 0.5},
                                     {"Orbit", 0.55}};

struct CategoryInfo {
  const char* name;
  double base_price;
  double price_spread;
  const BrandInfo* brands;
  size_t num_brands;
};

constexpr CategoryInfo kCategories[] = {
    {"Laptop", 700, 500, kLaptopBrands, 7},
    {"DSLR Camera", 500, 300, kCameraBrands, 3},
    {"Sci Fi eBooks", 14, 10, kBookBrands, 2},
};

constexpr const char* kColors[] = {"Black", "Silver", "Red", "Blue"};

/// P(rating = k | quality, relative price): quality pushes ratings up;
/// paying more than the category norm pushes them down (§5.3's "reducing
/// laptop price increases average ratings").
std::vector<double> RatingWeights(double quality, double relative_price) {
  const double score = 2.4 * quality - 1.1 * relative_price;  // roughly [-1, 2]
  // Stars 1..5 map to targets [-0.625, 2.125]: even the best product sits
  // below the 5-star target, so premium brands keep headroom and benefit
  // most from price cuts (§5.3 reports Apple first) instead of saturating.
  std::vector<double> w(5);
  for (int k = 0; k < 5; ++k) {
    const double target = (k - 1.0) / 1.45;
    const double d = score - target;
    w[k] = std::exp(-1.4 * d * d);
  }
  return w;
}

std::vector<double> SentimentWeights(double quality, bool is_red) {
  const double base = quality + (is_red ? 0.07 : 0.0);
  std::vector<double> w(4);
  const double levels[4] = {0.1, 0.35, 0.6, 0.85};  // maps to -0.9..0.9
  for (int k = 0; k < 4; ++k) {
    const double d = base - levels[k];
    w[k] = std::exp(-6.0 * d * d);
  }
  return w;
}

/// Flat-entity SCM (one review joined with its product) used for ground
/// truth on review-level outcomes.
Result<Scm> BuildFlatScm() {
  Scm scm;
  auto discrete = [](std::vector<Value> outcomes,
                     DiscreteMechanism::WeightFn fn) {
    return std::make_unique<DiscreteMechanism>(std::move(outcomes),
                                               std::move(fn));
  };
  // Exogenous product attributes (held fixed under intervention).
  HYPER_RETURN_NOT_OK(scm.AddAttribute(
      "Quality", {},
      std::make_unique<causal::LinearGaussianMechanism>(
          std::vector<double>{}, 0.6, 0.12)));
  HYPER_RETURN_NOT_OK(scm.AddAttribute(
      "Price", {{"Quality", ""}},
      std::make_unique<causal::LinearGaussianMechanism>(
          std::vector<double>{600.0}, 300.0, 120.0)));
  std::vector<Value> ratings;
  for (int k = 1; k <= 5; ++k) ratings.push_back(Value::Int(k));
  HYPER_RETURN_NOT_OK(scm.AddAttribute(
      "Rating", {{"Price", ""}, {"Quality", ""}},
      discrete(std::move(ratings), [](const std::vector<Value>& ps) {
        const double relative = (AsD(ps[0]) - 700.0) / 500.0;
        return RatingWeights(AsD(ps[1]), relative);
      })));
  std::vector<Value> sentiments{Value::Double(-0.9), Value::Double(-0.3),
                                Value::Double(0.3), Value::Double(0.9)};
  HYPER_RETURN_NOT_OK(scm.AddAttribute(
      "Sentiment", {{"Quality", ""}},
      discrete(std::move(sentiments), [](const std::vector<Value>& ps) {
        return SentimentWeights(AsD(ps[0]), false);
      })));
  return scm;
}

}  // namespace

Result<Dataset> MakeAmazonSyn(const AmazonOptions& options) {
  Dataset ds;
  ds.name = "amazon-syn";
  ds.main_relation = "Product";
  ds.flat_relation = "FlatReview";
  HYPER_ASSIGN_OR_RETURN(ds.scm, BuildFlatScm());

  // Relational causal graph (Figure 2): Quality -> Price within a product;
  // Quality/Price -> Rating and Quality/Color -> Sentiment across the
  // Product-Review key link.
  ds.graph.AddEdge("Quality", "Price");
  ds.graph.AddEdge("Quality", "Rating", "PID");
  ds.graph.AddEdge("Price", "Rating", "PID");
  ds.graph.AddEdge("Quality", "Sentiment", "PID");
  ds.graph.AddEdge("Color", "Sentiment", "PID");

  Table product(Schema("Product",
                       {{"PID", ValueType::kInt, Mutability::kImmutable},
                        {"Category", ValueType::kString, Mutability::kImmutable},
                        {"Brand", ValueType::kString, Mutability::kImmutable},
                        {"Color", ValueType::kString, Mutability::kMutable},
                        {"Quality", ValueType::kDouble, Mutability::kMutable},
                        {"Price", ValueType::kDouble, Mutability::kMutable}},
                       {"PID"}));
  Table review(Schema("Review",
                      {{"PID", ValueType::kInt, Mutability::kImmutable},
                       {"ReviewID", ValueType::kInt, Mutability::kImmutable},
                       {"Sentiment", ValueType::kDouble, Mutability::kMutable},
                       {"Rating", ValueType::kInt, Mutability::kMutable}},
                      {"PID", "ReviewID"}));
  Table flat(Schema("FlatReview",
                    {{"RowId", ValueType::kInt, Mutability::kImmutable},
                     {"PID", ValueType::kInt, Mutability::kImmutable},
                     {"Category", ValueType::kString, Mutability::kImmutable},
                     {"Brand", ValueType::kString, Mutability::kImmutable},
                     {"Color", ValueType::kString, Mutability::kMutable},
                     {"Quality", ValueType::kDouble, Mutability::kMutable},
                     {"Price", ValueType::kDouble, Mutability::kMutable},
                     {"Sentiment", ValueType::kDouble, Mutability::kMutable},
                     {"Rating", ValueType::kInt, Mutability::kMutable}},
                    {"RowId"}));

  product.Reserve(options.products);
  // Expected review count (uniform 1..2x-1 per product); reserving the mean
  // keeps the growth doublings to at most one.
  review.Reserve(options.products * options.reviews_per_product);
  flat.Reserve(options.products * options.reviews_per_product);

  Rng rng(options.seed);
  int64_t review_id = 0;
  int64_t flat_id = 0;
  const double sentiment_levels[4] = {-0.9, -0.3, 0.3, 0.9};
  for (size_t p = 0; p < options.products; ++p) {
    const CategoryInfo& cat =
        kCategories[rng.Categorical({0.55, 0.25, 0.20})];
    const BrandInfo& brand =
        cat.brands[static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(cat.num_brands) - 1))];
    const char* color = kColors[static_cast<size_t>(rng.UniformInt(0, 3))];
    const double quality = std::min(
        0.98, std::max(0.05, brand.quality_prior + rng.Gaussian(0, 0.08)));
    const double price = std::max(
        1.0, cat.base_price + cat.price_spread * (quality - 0.6) * 2.0 +
                 rng.Gaussian(0, cat.price_spread * 0.25));
    product.AppendUnchecked({Value::Int(static_cast<int64_t>(p + 1)),
                             Value::String(cat.name),
                             Value::String(brand.name), Value::String(color),
                             Value::Double(quality), Value::Double(price)});

    const size_t num_reviews = 1 + static_cast<size_t>(rng.UniformInt(
                                       0, static_cast<int64_t>(
                                              2 * options.reviews_per_product -
                                              2)));
    const double relative = (price - cat.base_price) / cat.price_spread;
    for (size_t r = 0; r < num_reviews; ++r) {
      const size_t srow =
          rng.Categorical(SentimentWeights(quality, color == kColors[2]));
      const double sentiment = sentiment_levels[srow];
      const int rating =
          1 + static_cast<int>(rng.Categorical(RatingWeights(quality,
                                                             relative)));
      review.AppendUnchecked({Value::Int(static_cast<int64_t>(p + 1)),
                              Value::Int(++review_id),
                              Value::Double(sentiment), Value::Int(rating)});
      flat.AppendUnchecked({Value::Int(flat_id++),
                            Value::Int(static_cast<int64_t>(p + 1)),
                            Value::String(cat.name),
                            Value::String(brand.name), Value::String(color),
                            Value::Double(quality), Value::Double(price),
                            Value::Double(sentiment), Value::Int(rating)});
    }
  }
  HYPER_RETURN_NOT_OK(ds.db.AddTable(std::move(product)));
  HYPER_RETURN_NOT_OK(ds.db.AddTable(std::move(review)));
  HYPER_RETURN_NOT_OK(ds.flat.AddTable(std::move(flat)));
  return ds;
}

}  // namespace hyper::data
