#include <memory>

#include "data/datasets.h"

namespace hyper::data {

namespace {

using causal::DiscreteMechanism;
using causal::LinearGaussianMechanism;
using causal::ParentRef;
using causal::Scm;

std::vector<Value> IntOutcomes(int n) {
  std::vector<Value> out;
  for (int i = 0; i < n; ++i) out.push_back(Value::Int(i));
  return out;
}

double AsD(const Value& v) { return v.AsDouble().value_or(0.0); }

/// P(Credit = good | parents): Status and CreditHistory dominate (§5.3),
/// Age contributes directly (confounding Status for the Indep baseline).
double GoodCreditProbability(double status, double history, double savings,
                             double housing, double amount_norm, double age) {
  double p = 0.04 + 0.26 * (status / 3.0) + 0.22 * (history / 2.0) +
             0.08 * (savings / 2.0) + 0.06 * (housing / 2.0) +
             0.15 * amount_norm + 0.09 * (age / 2.0);
  return std::min(0.97, std::max(0.02, p));
}

Result<Scm> BuildScm(bool continuous_amount) {
  Scm scm;
  auto discrete = [](std::vector<Value> outcomes,
                     DiscreteMechanism::WeightFn fn) {
    return std::make_unique<DiscreteMechanism>(std::move(outcomes),
                                               std::move(fn));
  };

  HYPER_RETURN_NOT_OK(scm.AddAttribute(
      "Age", {},
      discrete(IntOutcomes(3), [](const std::vector<Value>&) {
        return std::vector<double>{0.30, 0.45, 0.25};
      })));
  HYPER_RETURN_NOT_OK(scm.AddAttribute(
      "Sex", {},
      discrete(IntOutcomes(2), [](const std::vector<Value>&) {
        return std::vector<double>{0.55, 0.45};
      })));
  // Checking-account status: older and (slightly) male-coded individuals
  // hold better accounts in the generator.
  HYPER_RETURN_NOT_OK(scm.AddAttribute(
      "Status", {{"Age", ""}, {"Sex", ""}},
      discrete(IntOutcomes(4), [](const std::vector<Value>& ps) {
        const double age = AsD(ps[0]);
        const double sex = AsD(ps[1]);
        return std::vector<double>{1.2 - 0.3 * age, 1.0,
                                   0.6 + 0.3 * age + 0.1 * sex,
                                   0.3 + 0.4 * age};
      })));
  HYPER_RETURN_NOT_OK(scm.AddAttribute(
      "Savings", {{"Age", ""}},
      discrete(IntOutcomes(3), [](const std::vector<Value>& ps) {
        const double age = AsD(ps[0]);
        return std::vector<double>{1.0 - 0.2 * age, 0.8,
                                   0.4 + 0.3 * age};
      })));
  HYPER_RETURN_NOT_OK(scm.AddAttribute(
      "Housing", {{"Age", ""}, {"Sex", ""}},
      discrete(IntOutcomes(3), [](const std::vector<Value>& ps) {
        const double age = AsD(ps[0]);
        return std::vector<double>{1.0 - 0.25 * age, 0.9,
                                   0.35 + 0.35 * age + 0.05 * AsD(ps[1])};
      })));
  HYPER_RETURN_NOT_OK(scm.AddAttribute(
      "CreditHistory", {{"Age", ""}},
      discrete(IntOutcomes(3), [](const std::vector<Value>& ps) {
        const double age = AsD(ps[0]);
        return std::vector<double>{0.9 - 0.25 * age, 1.0,
                                   0.4 + 0.45 * age};
      })));
  if (continuous_amount) {
    // Root continuous credit amount in the ballpark of [0, 10000].
    HYPER_RETURN_NOT_OK(scm.AddAttribute(
        "CreditAmount", {},
        std::make_unique<LinearGaussianMechanism>(std::vector<double>{},
                                                  4000.0, 2000.0)));
  } else {
    HYPER_RETURN_NOT_OK(scm.AddAttribute(
        "CreditAmount", {{"Savings", ""}},
        discrete(IntOutcomes(4), [](const std::vector<Value>& ps) {
          const double savings = AsD(ps[0]);
          return std::vector<double>{1.0, 0.9 + 0.2 * savings,
                                     0.5 + 0.3 * savings,
                                     0.2 + 0.3 * savings};
        })));
  }
  HYPER_RETURN_NOT_OK(scm.AddAttribute(
      "Credit",
      {{"Status", ""},
       {"CreditHistory", ""},
       {"Savings", ""},
       {"Housing", ""},
       {"CreditAmount", ""},
       {"Age", ""}},
      discrete(IntOutcomes(2), [continuous_amount](
                                   const std::vector<Value>& ps) {
        const double amount = AsD(ps[4]);
        const double amount_norm =
            continuous_amount
                ? std::min(1.0, std::max(0.0, amount / 10000.0))
                : amount / 3.0;
        const double p = GoodCreditProbability(AsD(ps[0]), AsD(ps[1]),
                                               AsD(ps[2]), AsD(ps[3]),
                                               amount_norm, AsD(ps[5]));
        return std::vector<double>{1.0 - p, p};
      })));
  return scm;
}

}  // namespace

Result<Dataset> MakeGermanSyn(const GermanOptions& options) {
  Dataset ds;
  ds.name = "german-syn";
  ds.main_relation = "German";
  ds.flat_relation = "German";
  HYPER_ASSIGN_OR_RETURN(ds.scm, BuildScm(options.continuous_amount));
  ds.graph = ds.scm.Graph();

  Schema schema(
      "German",
      {{"Id", ValueType::kInt, Mutability::kImmutable},
       {"Age", ValueType::kInt, Mutability::kImmutable},
       {"Sex", ValueType::kInt, Mutability::kImmutable},
       {"Status", ValueType::kInt, Mutability::kMutable},
       {"Savings", ValueType::kInt, Mutability::kMutable},
       {"Housing", ValueType::kInt, Mutability::kMutable},
       {"CreditHistory", ValueType::kInt, Mutability::kMutable},
       {"CreditAmount",
        options.continuous_amount ? ValueType::kDouble : ValueType::kInt,
        Mutability::kMutable},
       {"Credit", ValueType::kInt, Mutability::kMutable}},
      {"Id"});
  Table table(std::move(schema));
  table.Reserve(options.rows);

  // Compiled flat sampler: no per-row Assignment maps, so million-row
  // variants generate in one linear allocation-light pass. Same RNG stream
  // as SampleEntity, so the data is identical at any size.
  HYPER_ASSIGN_OR_RETURN(causal::Scm::EntitySampler sampler,
                         ds.scm.CompileEntitySampler());
  const size_t ia = sampler.IndexOf("Age"), is = sampler.IndexOf("Sex"),
               ist = sampler.IndexOf("Status"), isv = sampler.IndexOf("Savings"),
               ih = sampler.IndexOf("Housing"),
               ich = sampler.IndexOf("CreditHistory"),
               ica = sampler.IndexOf("CreditAmount"),
               ic = sampler.IndexOf("Credit");
  Rng rng(options.seed);
  std::vector<Value> a;
  for (size_t i = 0; i < options.rows; ++i) {
    HYPER_RETURN_NOT_OK(sampler.Sample(rng, &a));
    table.AppendUnchecked({Value::Int(static_cast<int64_t>(i)), a[ia], a[is],
                           a[ist], a[isv], a[ih], a[ich], a[ica], a[ic]});
  }
  HYPER_RETURN_NOT_OK(ds.db.AddTable(table));
  HYPER_RETURN_NOT_OK(ds.flat.AddTable(std::move(table)));
  return ds;
}

}  // namespace hyper::data
