#include <algorithm>

#include "common/strings.h"
#include "data/datasets.h"

namespace hyper::data {

Result<Dataset> MakeByName(const std::string& name, double scale,
                           uint64_t seed) {
  const std::string key = ToLower(name);
  const double s = std::clamp(scale, 0.001, 1.0);
  auto rows = [&](size_t full) {
    return std::max<size_t>(200, static_cast<size_t>(full * s));
  };

  if (key == "german") {
    GermanOptions opt;
    opt.rows = rows(1000);
    opt.seed = seed;
    return MakeGermanSyn(opt);
  }
  if (key == "german-syn-20k") {
    GermanOptions opt;
    opt.rows = rows(20000);
    opt.seed = seed;
    return MakeGermanSyn(opt);
  }
  if (key == "german-syn-20k-continuous") {
    GermanOptions opt;
    opt.rows = rows(20000);
    opt.seed = seed;
    opt.continuous_amount = true;
    return MakeGermanSyn(opt);
  }
  if (key == "german-syn-1m") {
    GermanOptions opt;
    opt.rows = rows(1000000);
    opt.seed = seed;
    return MakeGermanSyn(opt);
  }
  if (key == "german-syn-10m") {
    GermanOptions opt;
    opt.rows = rows(10000000);
    opt.seed = seed;
    return MakeGermanSyn(opt);
  }
  if (key == "adult") {
    AdultOptions opt;
    opt.rows = rows(32000);
    opt.seed = seed;
    return MakeAdultSyn(opt);
  }
  if (key == "amazon") {
    AmazonOptions opt;
    opt.products = rows(3000);
    opt.seed = seed;
    return MakeAmazonSyn(opt);
  }
  if (key == "student-syn") {
    StudentOptions opt;
    opt.students = rows(2000);
    opt.seed = seed;
    return MakeStudentSyn(opt);
  }
  return Status::NotFound("unknown dataset '" + name +
                          "'; known: german, german-syn-20k, "
                          "german-syn-20k-continuous, german-syn-1m, "
                          "german-syn-10m, adult, amazon, student-syn");
}

}  // namespace hyper::data
