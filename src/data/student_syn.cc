#include <memory>

#include "data/datasets.h"

namespace hyper::data {

namespace {

using causal::DiscreteMechanism;
using causal::Scm;

std::vector<Value> IntOutcomes(const std::vector<int64_t>& values) {
  std::vector<Value> out;
  for (int64_t v : values) out.push_back(Value::Int(v));
  return out;
}

double AsD(const Value& v) { return v.AsDouble().value_or(0.0); }

/// Grade distribution given participation signals. Attendance has the
/// largest *total* effect: its direct weight plus its influence through
/// discussion, announcements and hand-raising (§5.4's how-to answer).
std::vector<double> GradeWeights(double hand, double discussion,
                                 double announce, double assignment,
                                 double attendance) {
  const double score = 0.05 * (hand / 3.0) + 0.16 * (discussion / 3.0) +
                       0.10 * announce + 0.24 * (assignment / 100.0) +
                       0.45 * (attendance / 100.0);
  // Grades 0, 20, ..., 100 with a peak near score * 100.
  std::vector<double> w(6);
  for (int k = 0; k < 6; ++k) {
    const double target = k / 5.0;
    const double d = score - target;
    w[k] = std::exp(-10.0 * d * d);
  }
  return w;
}

/// Flat-entity SCM: one participation row with its student attributes.
Result<Scm> BuildFlatScm() {
  Scm scm;
  auto discrete = [](std::vector<Value> outcomes,
                     DiscreteMechanism::WeightFn fn) {
    return std::make_unique<DiscreteMechanism>(std::move(outcomes),
                                               std::move(fn));
  };
  HYPER_RETURN_NOT_OK(scm.AddAttribute(
      "Age", {}, discrete(IntOutcomes({0, 1, 2}),
                          [](const std::vector<Value>&) {
                            return std::vector<double>{0.4, 0.4, 0.2};
                          })));
  HYPER_RETURN_NOT_OK(scm.AddAttribute(
      "Gender", {}, discrete(IntOutcomes({0, 1}),
                             [](const std::vector<Value>&) {
                               return std::vector<double>{0.5, 0.5};
                             })));
  HYPER_RETURN_NOT_OK(scm.AddAttribute(
      "Country", {}, discrete(IntOutcomes({0, 1, 2, 3, 4}),
                              [](const std::vector<Value>&) {
                                return std::vector<double>{0.3, 0.25, 0.2,
                                                           0.15, 0.1};
                              })));
  HYPER_RETURN_NOT_OK(scm.AddAttribute(
      "Attendance", {{"Age", ""}, {"Country", ""}},
      discrete(IntOutcomes({40, 60, 80, 100}),
               [](const std::vector<Value>& ps) {
                 const double age = AsD(ps[0]);
                 const double country = AsD(ps[1]);
                 return std::vector<double>{
                     0.9 - 0.2 * age, 1.0, 0.6 + 0.25 * age,
                     0.3 + 0.25 * age + 0.05 * country};
               })));
  HYPER_RETURN_NOT_OK(scm.AddAttribute(
      "HandRaised", {{"Attendance", ""}},
      discrete(IntOutcomes({0, 1, 2, 3}), [](const std::vector<Value>& ps) {
        const double att = AsD(ps[0]) / 100.0;
        return std::vector<double>{1.1 - att, 0.9, 0.3 + 0.5 * att,
                                   0.1 + 0.6 * att};
      })));
  HYPER_RETURN_NOT_OK(scm.AddAttribute(
      "Discussion", {{"Attendance", ""}},
      discrete(IntOutcomes({0, 1, 2, 3}), [](const std::vector<Value>& ps) {
        const double att = AsD(ps[0]) / 100.0;
        return std::vector<double>{1.2 - 0.8 * att, 0.9, 0.25 + 0.55 * att,
                                   0.1 + 0.7 * att};
      })));
  HYPER_RETURN_NOT_OK(scm.AddAttribute(
      "Announcements", {{"Attendance", ""}},
      discrete(IntOutcomes({0, 1}), [](const std::vector<Value>& ps) {
        const double p = 0.25 + 0.6 * (AsD(ps[0]) / 100.0);
        return std::vector<double>{1.0 - p, p};
      })));
  HYPER_RETURN_NOT_OK(scm.AddAttribute(
      "Assignment", {{"Attendance", ""}},
      discrete(IntOutcomes({0, 25, 50, 75, 100}),
               [](const std::vector<Value>& ps) {
                 const double att = AsD(ps[0]) / 100.0;
                 return std::vector<double>{0.6 - 0.3 * att, 0.8 - 0.2 * att,
                                            1.0, 0.5 + 0.4 * att,
                                            0.25 + 0.5 * att};
               })));
  HYPER_RETURN_NOT_OK(scm.AddAttribute(
      "Grade",
      {{"HandRaised", ""},
       {"Discussion", ""},
       {"Announcements", ""},
       {"Assignment", ""},
       {"Attendance", ""}},
      discrete(IntOutcomes({0, 20, 40, 60, 80, 100}),
               [](const std::vector<Value>& ps) {
                 return GradeWeights(AsD(ps[0]), AsD(ps[1]), AsD(ps[2]),
                                     AsD(ps[3]), AsD(ps[4]));
               })));
  return scm;
}

}  // namespace

Result<Dataset> MakeStudentSyn(const StudentOptions& options) {
  Dataset ds;
  ds.name = "student-syn";
  ds.main_relation = "Student";
  ds.flat_relation = "FlatParticipation";
  HYPER_ASSIGN_OR_RETURN(ds.scm, BuildFlatScm());

  // Relational graph: student-level attributes drive participation-level
  // ones across the SID link.
  ds.graph.AddEdge("Age", "Attendance");
  ds.graph.AddEdge("Country", "Attendance");
  ds.graph.AddEdge("Attendance", "HandRaised", "SID");
  ds.graph.AddEdge("Attendance", "Discussion", "SID");
  ds.graph.AddEdge("Attendance", "Announcements", "SID");
  ds.graph.AddEdge("Attendance", "Assignment", "SID");
  ds.graph.AddEdge("HandRaised", "Grade");
  ds.graph.AddEdge("Discussion", "Grade");
  ds.graph.AddEdge("Announcements", "Grade");
  ds.graph.AddEdge("Assignment", "Grade");
  ds.graph.AddEdge("Attendance", "Grade", "SID");

  Table student(Schema("Student",
                       {{"SID", ValueType::kInt, Mutability::kImmutable},
                        {"Age", ValueType::kInt, Mutability::kImmutable},
                        {"Gender", ValueType::kInt, Mutability::kImmutable},
                        {"Country", ValueType::kInt, Mutability::kImmutable},
                        {"Attendance", ValueType::kInt, Mutability::kMutable}},
                       {"SID"}));
  Table participation(
      Schema("Participation",
             {{"SID", ValueType::kInt, Mutability::kImmutable},
              {"CourseID", ValueType::kInt, Mutability::kImmutable},
              {"HandRaised", ValueType::kInt, Mutability::kMutable},
              {"Discussion", ValueType::kInt, Mutability::kMutable},
              {"Announcements", ValueType::kInt, Mutability::kMutable},
              {"Assignment", ValueType::kInt, Mutability::kMutable},
              {"Grade", ValueType::kInt, Mutability::kMutable}},
             {"SID", "CourseID"}));
  Table flat(Schema(
      "FlatParticipation",
      {{"RowId", ValueType::kInt, Mutability::kImmutable},
       {"SID", ValueType::kInt, Mutability::kImmutable},
       {"Age", ValueType::kInt, Mutability::kImmutable},
       {"Gender", ValueType::kInt, Mutability::kImmutable},
       {"Country", ValueType::kInt, Mutability::kImmutable},
       {"Attendance", ValueType::kInt, Mutability::kMutable},
       {"HandRaised", ValueType::kInt, Mutability::kMutable},
       {"Discussion", ValueType::kInt, Mutability::kMutable},
       {"Announcements", ValueType::kInt, Mutability::kMutable},
       {"Assignment", ValueType::kInt, Mutability::kMutable},
       {"Grade", ValueType::kInt, Mutability::kMutable}},
      {"RowId"}));

  student.Reserve(options.students);
  participation.Reserve(options.students * options.courses_per_student);
  flat.Reserve(options.students * options.courses_per_student);

  Rng rng(options.seed);
  int64_t flat_id = 0;
  for (size_t s = 0; s < options.students; ++s) {
    // Sample the student-level prefix once, then per-course suffixes with
    // the same attendance (the entity-level SCM factorizes this way).
    HYPER_ASSIGN_OR_RETURN(causal::Assignment base, ds.scm.SampleEntity(rng));
    student.AppendUnchecked({Value::Int(static_cast<int64_t>(s)),
                             base.at("Age"), base.at("Gender"),
                             base.at("Country"), base.at("Attendance")});
    for (size_t c = 0; c < options.courses_per_student; ++c) {
      causal::Assignment row = base;
      if (c > 0) {
        // Resample the participation-level attributes for this course,
        // holding the student-level prefix fixed.
        for (const char* attr : {"HandRaised", "Discussion", "Announcements",
                                 "Assignment", "Grade"}) {
          std::vector<Value> parents;
          for (const causal::ParentRef& p : ds.scm.ParentsOf(attr)) {
            parents.push_back(row.at(p.attribute));
          }
          HYPER_ASSIGN_OR_RETURN(
              Value v, ds.scm.MechanismOf(attr).Sample(parents, rng));
          row[attr] = std::move(v);
        }
      }
      participation.AppendUnchecked(
          {Value::Int(static_cast<int64_t>(s)),
           Value::Int(static_cast<int64_t>(c)), row.at("HandRaised"),
           row.at("Discussion"), row.at("Announcements"),
           row.at("Assignment"), row.at("Grade")});
      flat.AppendUnchecked(
          {Value::Int(flat_id++), Value::Int(static_cast<int64_t>(s)),
           base.at("Age"), base.at("Gender"), base.at("Country"),
           base.at("Attendance"), row.at("HandRaised"), row.at("Discussion"),
           row.at("Announcements"), row.at("Assignment"), row.at("Grade")});
    }
  }
  HYPER_RETURN_NOT_OK(ds.db.AddTable(std::move(student)));
  HYPER_RETURN_NOT_OK(ds.db.AddTable(std::move(participation)));
  HYPER_RETURN_NOT_OK(ds.flat.AddTable(std::move(flat)));
  return ds;
}

}  // namespace hyper::data
