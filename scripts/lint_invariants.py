#!/usr/bin/env python3
"""Project-specific invariant linters for the HypeR serving layer.

Five rules, each encoding a contract the type system cannot express and a
bug class this codebase has to actively defend against:

  cache-key-governance   Cache-key structs (names ending in `Key`) must not
                         carry governance state (QueryBudget, CancelToken,
                         ExecGuard, deadlines). Keys are shared across
                         requests; a budget in the key either fragments the
                         cache (per-request keys never hit) or leaks one
                         request's governance into another's plan.

  unordered-iter         Serving-path code (whatif/ howto/ service/ net/
                         relational/ prob/) must not range-iterate a
                         same-file std::unordered_map/set: iteration order
                         is hash-seed dependent, and anything it feeds into
                         a merged or served result breaks the bit-identical
                         determinism contract. Sites that are provably
                         order-independent annotate the loop line (or the
                         line above) with:  // lint:allow(unordered-iter): why

  steady-clock           Hot evaluation loops (whatif/ howto/) must not call
                         steady_clock::now() directly — per-row clock reads
                         are the regression governance::LoopCheck exists to
                         prevent (it amortizes the clock over N iterations).
                         Annotate deliberate sites with
                         // lint:allow(steady-clock): why

  raw-atomic-partition   Partitioned-evaluation code (whatif/ howto/ learn/
                         relational/ storage/) must not accumulate results
                         through raw atomic read-modify-writes (.fetch_add /
                         .fetch_sub / .compare_exchange_*). Cross-thread RMW
                         folds are order-nondeterministic (fatal for the
                         bit-identical merge contract when doubles are
                         involved) and serialize on the contended cache
                         line; partial results belong in per-block partials
                         merged in block order. The work-stealing deques in
                         common/thread_pool.h are the sanctioned home for
                         scheduling atomics. Annotate deliberate sites
                         (e.g. monotonic counters never folded into served
                         values) with
                         // lint:allow(raw-atomic-partition): why

  void-cast              `(void)Foo(...)` silences [[nodiscard]] (see
                         common/status.h). A bare cast with no explanation
                         is an error swallowed without an argument; require
                         a comment on the same line or within the two lines
                         above saying why dropping the result is correct.

Usage: lint_invariants.py [paths...]   (default: src/)
Exit 0 when clean, 1 when any rule fired, 2 on usage errors.
"""

import os
import re
import sys

GOVERNANCE_TYPES = re.compile(
    r"\b(QueryBudget|CancelToken|ExecGuard|Deadline|time_point)\b")
KEY_STRUCT = re.compile(r"^\s*(?:struct|class)\s+(\w*Key)\b[^;]*$")
UNORDERED_DECL = re.compile(
    r"unordered_(?:map|set)<[^;\n]*>\s+(\w+)\s*(?:;|=|\{|\bGUARDED_BY)")
UNORDERED_DECL_CONT = re.compile(r"^\s*(\w+)\s*(?:;|=|\{|\bGUARDED_BY)")
RANGE_FOR = re.compile(r"for\s*\([^;)]*?:\s*(\w+)\s*\)")
STEADY_CLOCK = re.compile(r"steady_clock::now\s*\(")
VOID_CAST = re.compile(r"^\s*\(void\)\s*[\w.\->:]+\s*\(")
RAW_ATOMIC = re.compile(
    r"(?:\.|->)\s*(fetch_add|fetch_sub|compare_exchange_weak|"
    r"compare_exchange_strong)\s*\(")
ALLOW = "lint:allow"

SERVING_DIRS = ("whatif", "howto", "service", "net", "relational", "prob")
HOT_DIRS = ("whatif", "howto")
PARTITION_DIRS = ("whatif", "howto", "learn", "relational", "storage")


def has_comment_justification(lines, idx):
    """True when lines[idx] or the two lines above carry a comment."""
    if "//" in lines[idx]:
        return True
    for back in (1, 2):
        if idx - back >= 0 and lines[idx - back].lstrip().startswith("//"):
            return True
    return False


def lint_file(path, findings):
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
    except OSError as e:
        findings.append((path, 0, "io", str(e)))
        return
    lines = text.split("\n")
    parts = os.path.normpath(path).split(os.sep)
    in_serving = any(d in parts for d in SERVING_DIRS)
    in_hot = any(d in parts for d in HOT_DIRS)

    # --- cache-key-governance ---
    for i, line in enumerate(lines):
        m = KEY_STRUCT.match(line)
        if not m:
            continue
        # Scan the struct body until its closing brace at column 0/struct
        # indent ('};'). Key structs here are small; cap the scan.
        for j in range(i + 1, min(i + 120, len(lines))):
            body_line = lines[j]
            if re.match(r"^\s*};", body_line):
                break
            gm = GOVERNANCE_TYPES.search(body_line)
            if gm and ALLOW not in body_line:
                findings.append(
                    (path, j + 1, "cache-key-governance",
                     f"cache-key struct {m.group(1)} carries governance "
                     f"state ({gm.group(1)}); keys must be request-"
                     "independent"))

    # --- unordered-iter (serving dirs only) ---
    if in_serving:
        unordered_names = set()
        for i, line in enumerate(lines):
            dm = UNORDERED_DECL.search(line)
            if dm:
                unordered_names.add(dm.group(1))
            elif (i > 0 and "unordered_" in lines[i - 1]
                  and lines[i - 1].rstrip().endswith(">")):
                cm = UNORDERED_DECL_CONT.match(line)
                if cm:
                    unordered_names.add(cm.group(1))
        for i, line in enumerate(lines):
            fm = RANGE_FOR.search(line)
            if not fm or fm.group(1) not in unordered_names:
                continue
            window = lines[max(0, i - 1):i + 1]
            if any(ALLOW in w and "unordered-iter" in w for w in window):
                continue
            findings.append(
                (path, i + 1, "unordered-iter",
                 f"range-for over unordered container '{fm.group(1)}' on a "
                 "serving path; hash order is nondeterministic — sort "
                 "before merging/serving, or annotate "
                 "// lint:allow(unordered-iter): <why order cannot matter>"))

    # --- steady-clock (hot dirs only) ---
    if in_hot:
        for i, line in enumerate(lines):
            if STEADY_CLOCK.search(line) and not (
                    ALLOW in line and "steady-clock" in line):
                findings.append(
                    (path, i + 1, "steady-clock",
                     "naked steady_clock::now() in an evaluation hot path; "
                     "use governance::LoopCheck (amortized) or annotate "
                     "// lint:allow(steady-clock): <why>"))

    # --- raw-atomic-partition (partition-evaluation dirs only) ---
    if any(d in parts for d in PARTITION_DIRS):
        for i, line in enumerate(lines):
            am = RAW_ATOMIC.search(line)
            if not am:
                continue
            window = lines[max(0, i - 1):i + 1]
            if any(ALLOW in w and "raw-atomic-partition" in w
                   for w in window):
                continue
            findings.append(
                (path, i + 1, "raw-atomic-partition",
                 f"raw atomic RMW ({am.group(1)}) in partitioned-evaluation "
                 "code; fold into per-block partials merged in block order "
                 "(order-deterministic, contention-free), or annotate "
                 "// lint:allow(raw-atomic-partition): <why the fold order "
                 "cannot reach a served value>"))

    # --- void-cast ---
    for i, line in enumerate(lines):
        if VOID_CAST.match(line) and not has_comment_justification(lines, i):
            findings.append(
                (path, i + 1, "void-cast",
                 "(void)-discarded call with no justification comment; say "
                 "why dropping the result is correct (same line or the two "
                 "lines above)"))


def collect_files(paths):
    exts = (".h", ".cc", ".cpp", ".hpp")
    out = []
    for p in paths:
        if os.path.isfile(p):
            out.append(p)
        elif os.path.isdir(p):
            for root, _dirs, names in os.walk(p):
                for name in sorted(names):
                    if name.endswith(exts):
                        out.append(os.path.join(root, name))
        else:
            print(f"lint_invariants: no such path: {p}", file=sys.stderr)
            sys.exit(2)
    return out


def main(argv):
    paths = argv[1:] or ["src"]
    findings = []
    files = collect_files(paths)
    for path in files:
        lint_file(path, findings)
    for path, line, rule, msg in findings:
        print(f"{path}:{line}: [{rule}] {msg}")
    if findings:
        print(f"lint_invariants: {len(findings)} finding(s) "
              f"in {len(files)} file(s)")
        return 1
    print(f"lint_invariants: clean ({len(files)} file(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
