#!/usr/bin/env bash
# Pre-merge gate: configure + build + full test suite + perf gate.
#
# Usage: scripts/check.sh [build-dir]
#
# Exits non-zero on the first failure. The perf gate (`ctest -L perf`) runs
# the histogram/batched-inference parity tests and the bench smoke runs,
# which assert that the columnar engine reproduces the row interpreter, that
# cached/batched answers are bit-identical to fresh runs, and that
# PredictBatch matches per-row Predict — so a green check covers both
# correctness and the perf substrate's wiring.

set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

echo "== configure =="
cmake -B "$BUILD_DIR" -S . >/dev/null

echo "== build =="
cmake --build "$BUILD_DIR" -j"$(nproc)"

echo "== ctest =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)" -LE perf

echo "== perf gate (parity tests + bench smoke) =="
# bench_micro_smoke exists only when google-benchmark was found; ctest runs
# whatever perf tests are registered.
ctest --test-dir "$BUILD_DIR" --output-on-failure -L perf

# Sanitizer legs over the `service`-labeled tests (the scenario service,
# stage/plan caches, single-flight prepares, concurrent how-to scoring,
# and the governance suite with its fault-injection matrix and admission
# tests): TSan catches data races on the shared stage caches and the
# admission/cancellation state, ASan catches lifetime bugs in abort
# unwinding (an aborted request must not leave a stage half-built but
# referenced), UBSan catches undefined behavior in the hot loops and
# meter arithmetic. Each leg probes the toolchain first and is skipped
# only when its runtime is unusable.
run_sanitizer_leg() {
  local SAN="$1"         # thread | address | undefined
  local FLAG="-fsanitize=$SAN"
  local SAN_BUILD_DIR="${BUILD_DIR}-${2}"   # build dir suffix: tsan | asan | ubsan
  echo "== ${2} smoke (service-labeled tests) =="
  local PROBE
  PROBE="$(mktemp -d)"
  printf 'int main(){return 0;}\n' > "$PROBE/probe.cc"
  if ${CXX:-c++} "$FLAG" "$PROBE/probe.cc" -o "$PROBE/probe" 2>/dev/null \
      && "$PROBE/probe"; then
    rm -rf "$PROBE"
    cmake -B "$SAN_BUILD_DIR" -S . -DHYPER_SANITIZE="$SAN" >/dev/null
    cmake --build "$SAN_BUILD_DIR" -j"$(nproc)" --target service_test governance_test
    ctest --test-dir "$SAN_BUILD_DIR" --output-on-failure -L service
  else
    rm -rf "$PROBE"
    echo "${SAN}Sanitizer unavailable in this toolchain; skipping ${2} smoke"
  fi
}

run_sanitizer_leg thread tsan
run_sanitizer_leg address asan
run_sanitizer_leg undefined ubsan

echo "== deadline-stress smoke (randomized tight deadlines) =="
# Hammers the service with randomized near-zero deadlines and asserts every
# outcome is OK or a typed governance abort, then that the caches still
# serve bit-identical answers — a hang, crash or corruption fails the gate.
"$BUILD_DIR"/governance_test \
  --gtest_filter='GovernanceTest.RandomTightDeadlinesNeverHangOrCorrupt'

echo "== check passed =="
