#!/usr/bin/env bash
# Pre-merge gate: configure + build + full test suite + perf gate.
#
# Usage: scripts/check.sh [build-dir]
#
# Exits non-zero on the first failure. The perf gate (`ctest -L perf`) runs
# the histogram/batched-inference parity tests and the bench smoke runs,
# which assert that the columnar engine reproduces the row interpreter, that
# cached/batched answers are bit-identical to fresh runs, and that
# PredictBatch matches per-row Predict — so a green check covers both
# correctness and the perf substrate's wiring.

set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

echo "== configure =="
cmake -B "$BUILD_DIR" -S . >/dev/null

echo "== build =="
cmake --build "$BUILD_DIR" -j"$(nproc)"

echo "== ctest =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)" -LE 'perf|lint'

echo "== static analysis (invariant linter + thread-safety + clang-tidy) =="
# Three legs, mirroring the sanitizer probe-then-skip pattern:
#   1. scripts/lint_invariants.py — plain python3, always runs: governance
#      state out of cache keys, no unordered iteration on serving paths, no
#      naked clocks in hot loops, no unjustified (void)-dropped Status.
#   2. Clang Thread Safety Analysis — builds src/ under clang with
#      -Werror=thread-safety (HYPER_THREAD_SAFETY=ON) and runs the
#      negative-compile test proving the gate rejects unlocked guarded
#      access. Skipped when no clang++ is on PATH (gcc has no analysis).
#   3. clang-tidy over src/ with the repo .clang-tidy profile. Skipped when
#      no clang-tidy is on PATH.
python3 scripts/lint_invariants.py src
python3 tests/lint_invariants_test.py .
echo "lint summary: invariant linter clean (src/ + rule self-tests)"

if command -v clang++ >/dev/null 2>&1; then
  # Full src/ under -Werror=thread-safety, then the negative-compile test
  # proving the gate actually rejects unlocked guarded access.
  TSAFE_BUILD_DIR="${BUILD_DIR}-tsafe"
  cmake -B "$TSAFE_BUILD_DIR" -S . -DHYPER_THREAD_SAFETY=ON \
        -DCMAKE_CXX_COMPILER=clang++ >/dev/null
  cmake --build "$TSAFE_BUILD_DIR" -j"$(nproc)" --target hyper_core
  ctest --test-dir "$TSAFE_BUILD_DIR" --output-on-failure -R thread_safety_compile
  echo "lint summary: thread-safety analysis clean (src/ + negative-compile test)"
else
  echo "lint summary: thread-safety analysis SKIPPED (no clang++ on PATH)"
fi

if command -v clang-tidy >/dev/null 2>&1 || [ -n "${CLANG_TIDY:-}" ]; then
  scripts/run_tidy.sh "$BUILD_DIR"
  echo "lint summary: clang-tidy clean"
else
  echo "lint summary: clang-tidy SKIPPED (not on PATH)"
fi

echo "== perf gate (parity tests + bench smoke + 100k scale smoke) =="
# bench_micro_smoke exists only when google-benchmark was found; ctest runs
# whatever perf tests are registered. scale_perf_test is the 100k-row
# mirror of the bench scale sweep: legacy-vs-vectorized what-if bit
# equality at 1/2/4/8 threads plus kernel-vs-per-row bit equality across a
# segment boundary (bit-equality gates only — no timing assertions).
ctest --test-dir "$BUILD_DIR" --output-on-failure -L perf

# Sanitizer legs over the `service`-labeled tests (the scenario service,
# stage/plan caches, single-flight prepares, concurrent how-to scoring,
# the governance suite with its fault-injection matrix and admission
# tests, and the morsel/work-stealing scheduler suite): TSan catches data
# races on the shared stage caches, the admission/cancellation state, and
# the work-stealing deques under skewed load, ASan catches lifetime bugs
# in abort unwinding (an aborted request must not leave a stage half-built
# but referenced), UBSan catches undefined behavior in the hot loops and
# meter arithmetic. Each leg probes the toolchain first and is skipped
# only when its runtime is unusable.
run_sanitizer_leg() {
  local SAN="$1"         # thread | address | undefined
  local FLAG="-fsanitize=$SAN"
  local SAN_BUILD_DIR="${BUILD_DIR}-${2}"   # build dir suffix: tsan | asan | ubsan
  echo "== ${2} smoke (service-labeled tests) =="
  local PROBE
  PROBE="$(mktemp -d)"
  printf 'int main(){return 0;}\n' > "$PROBE/probe.cc"
  if ${CXX:-c++} "$FLAG" "$PROBE/probe.cc" -o "$PROBE/probe" 2>/dev/null \
      && "$PROBE/probe"; then
    rm -rf "$PROBE"
    cmake -B "$SAN_BUILD_DIR" -S . -DHYPER_SANITIZE="$SAN" >/dev/null
    cmake --build "$SAN_BUILD_DIR" -j"$(nproc)" --target service_test governance_test obs_test net_test durability_test morsel_test
    ctest --test-dir "$SAN_BUILD_DIR" --output-on-failure -L service
  else
    rm -rf "$PROBE"
    echo "${SAN}Sanitizer unavailable in this toolchain; skipping ${2} smoke"
  fi
}

run_sanitizer_leg thread tsan
run_sanitizer_leg address asan
run_sanitizer_leg undefined ubsan

echo "== deadline-stress smoke (randomized tight deadlines) =="
# Hammers the service with randomized near-zero deadlines and asserts every
# outcome is OK or a typed governance abort, then that the caches still
# serve bit-identical answers — a hang, crash or corruption fails the gate.
"$BUILD_DIR"/governance_test \
  --gtest_filter='GovernanceTest.RandomTightDeadlinesNeverHangOrCorrupt'

echo "== server smoke (HTTP serving vs in-process reference) =="
# End-to-end over a real socket: the served what-if must carry the same
# value bits as the in-process reference (the stdin transport shares the
# handler, so it IS the in-process path), governance aborts must arrive as
# their documented HTTP codes, the metrics counters must move, and SIGTERM
# must drain gracefully — finish the in-flight request, 503 new ones, exit 0.
SMOKE_Q='Use German When Status = 1 Update(Status) = 2 Output Count(Credit = 1)'
SMOKE_TMP="$(mktemp -d)"
smoke_fail() {
  echo "smoke: $1"
  [ -n "${SERVER_PID:-}" ] && kill "$SERVER_PID" 2>/dev/null || true
  exit 1
}

printf 'main|%s\n' "$SMOKE_Q" | "$BUILD_DIR"/scenario_server --stdin \
  > "$SMOKE_TMP/ref.json" 2>/dev/null
REF_VALUE="$(grep -o '"value":[^,}]*' "$SMOKE_TMP/ref.json" | head -n1)"
[ -n "$REF_VALUE" ] || smoke_fail "no reference value from --stdin"

"$BUILD_DIR"/scenario_server --port 0 --http-threads 2 \
  > "$SMOKE_TMP/server.log" 2>"$SMOKE_TMP/server.err" &
SERVER_PID=$!
PORT=""
for _ in $(seq 1 240); do
  PORT="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
          "$SMOKE_TMP/server.log")"
  [ -n "$PORT" ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || smoke_fail "server died on startup"
  sleep 0.5
done
[ -n "$PORT" ] || smoke_fail "server never reported its port"
URL="http://127.0.0.1:$PORT"
BODY="{\"sql\":\"$SMOKE_Q\"}"

COLD="$(curl -sf -X POST "$URL/v1/whatif" -d "$BODY" \
        | grep -o '"value":[^,}]*')"
WARM_JSON="$(curl -sf -X POST "$URL/v1/whatif" -d "$BODY")"
WARM="$(printf '%s' "$WARM_JSON" | grep -o '"value":[^,}]*')"
[ "$COLD" = "$REF_VALUE" ] && [ "$WARM" = "$REF_VALUE" ] \
  || smoke_fail "served value diverged: ref=$REF_VALUE cold=$COLD warm=$WARM"
printf '%s' "$WARM_JSON" | grep -q '"plan_cache_hit":true' \
  || smoke_fail "warm request missed the plan cache"

BATCH="$(curl -sf -X POST "$URL/v1/whatif/batch" \
  -d "{\"sql\":\"$SMOKE_Q\",\"interventions\":[[{\"attribute\":\"Status\",\"value\":2}]]}")"
printf '%s' "$BATCH" | grep -qF "$REF_VALUE" \
  || smoke_fail "batch item diverged from the single-query reference"

curl -sf -X POST "$URL/v1/scenario" \
  -d '{"action":"create","name":"smoke"}' >/dev/null \
  || smoke_fail "scenario create failed"
curl -sf "$URL/v1/scenario" | grep -q '"smoke"' \
  || smoke_fail "created scenario missing from the list"

METRICS="$(curl -sf "$URL/metrics")"
printf '%s\n' "$METRICS" \
  | grep -q 'hyper_http_requests_total{route="/v1/whatif",code="200"} [1-9]' \
  || smoke_fail "whatif request counter did not move"
printf '%s\n' "$METRICS" \
  | grep -q 'hyper_admission_total{outcome="admitted"} [1-9]' \
  || smoke_fail "admission counter did not move"
printf '%s\n' "$METRICS" | grep -q 'hyper_request_seconds_bucket{' \
  || smoke_fail "latency histogram missing from /metrics"

# Governance over the wire: an exhausted row budget is a 429.
GOV_CODE="$(curl -s -o /dev/null -w '%{http_code}' -X POST "$URL/v1/whatif" \
  -d "{\"max_rows\":1,\"sql\":\"$SMOKE_Q\"}")"
[ "$GOV_CODE" = "429" ] || smoke_fail "row-budget abort served as $GOV_CODE, want 429"

# Graceful drain: park a slow forest request in flight, SIGTERM, then a new
# request must bounce with 503 while the in-flight one still answers 200.
curl -s -X POST "$URL/v1/whatif" \
  -d "{\"estimator\":\"forest\",\"trees\":8192,\"sql\":\"$SMOKE_Q\"}" \
  -o "$SMOKE_TMP/slow.json" -w '%{http_code}' > "$SMOKE_TMP/slow.code" &
CURL_PID=$!
sleep 0.5
kill -TERM "$SERVER_PID"
sleep 0.3
DRAIN_CODE="$(curl -s -o /dev/null -w '%{http_code}' -X POST "$URL/v1/whatif" \
  -d "$BODY" || true)"
[ "$DRAIN_CODE" = "503" ] \
  || smoke_fail "expected 503 while draining, got $DRAIN_CODE"
wait "$CURL_PID" || true
[ "$(cat "$SMOKE_TMP/slow.code")" = "200" ] \
  || smoke_fail "in-flight request was dropped during drain ($(cat "$SMOKE_TMP/slow.code"))"
SERVER_EXIT=0
wait "$SERVER_PID" || SERVER_EXIT=$?
[ "$SERVER_EXIT" = "0" ] || smoke_fail "server exited $SERVER_EXIT after drain"
rm -rf "$SMOKE_TMP"
echo "server smoke passed: served value $REF_VALUE bit-equal to reference"

echo "== crash-recovery smoke (kill -9 mid-traffic, byte-identical answers) =="
# The durability acceptance gate, end to end over a real socket: mutate
# scenario state on a durable server, kill it with SIGKILL (no drain, no
# final snapshot — only the WAL survives), restart on the same data dir, and
# byte-diff the recovered answers and branch delta fingerprints against both
# the pre-crash server and a never-crashed in-memory reference.
DUR_TMP="$(mktemp -d)"
dur_fail() {
  echo "crash smoke: $1"
  [ -n "${DUR_PID:-}" ] && kill -9 "$DUR_PID" 2>/dev/null || true
  exit 1
}
# Starts a scenario_server ($1: extra args) and sets DUR_PID/DUR_URL.
dur_start() {
  : > "$DUR_TMP/server.log"
  # shellcheck disable=SC2086
  "$BUILD_DIR"/scenario_server --port 0 --http-threads 2 $1 \
    > "$DUR_TMP/server.log" 2>"$DUR_TMP/server.err" &
  DUR_PID=$!
  local PORT=""
  for _ in $(seq 1 240); do
    PORT="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
            "$DUR_TMP/server.log")"
    [ -n "$PORT" ] && break
    kill -0 "$DUR_PID" 2>/dev/null \
      || dur_fail "server died on startup: $(cat "$DUR_TMP/server.err")"
    sleep 0.5
  done
  [ -n "$PORT" ] || dur_fail "server never reported its port"
  DUR_URL="http://127.0.0.1:$PORT"
}
# Same mutation traffic against whichever server is up: branch, two applies,
# one apply on main.
dur_mutate() {
  curl -sf -X POST "$DUR_URL/v1/scenario" \
    -d '{"action":"create","name":"crashy"}' >/dev/null \
    || dur_fail "create failed"
  curl -sf -X POST "$DUR_URL/v1/scenario" \
    -d '{"action":"apply","scenario":"crashy","sql":"Use German When Savings = 0 Update(Credit) = 0 Output Count(*)"}' >/dev/null \
    || dur_fail "apply failed"
  curl -sf -X POST "$DUR_URL/v1/scenario" \
    -d '{"action":"apply","scenario":"main","sql":"Use German When Age = 1 Update(Savings) = 2 Output Count(*)"}' >/dev/null \
    || dur_fail "apply to main failed"
}
# Captures what must survive the crash: every branch's delta fingerprint and
# the what-if answer bytes on both branches.
dur_observe() {
  {
    curl -sf "$DUR_URL/v1/scenario" \
      | grep -o '"name":"[^"]*"\|"delta_fingerprint":"[^"]*"'
    curl -sf -X POST "$DUR_URL/v1/whatif" -d "$BODY" \
      | grep -o '"value":[^,}]*'
    curl -sf -X POST "$DUR_URL/v1/whatif" \
      -d "{\"scenario\":\"crashy\",\"sql\":\"$SMOKE_Q\"}" \
      | grep -o '"value":[^,}]*'
  } > "$1"
  [ -s "$1" ] || dur_fail "no observations captured into $1"
}

dur_start "--data-dir $DUR_TMP/data --fsync always"
dur_mutate
dur_observe "$DUR_TMP/before.txt"
kill -9 "$DUR_PID"
wait "$DUR_PID" 2>/dev/null || true

dur_start "--data-dir $DUR_TMP/data --fsync always"
grep -q "recovered" "$DUR_TMP/server.err" \
  || dur_fail "restarted server did not report recovery"
dur_observe "$DUR_TMP/after.txt"
kill -TERM "$DUR_PID"; wait "$DUR_PID" || dur_fail "recovered server exited non-zero"
diff "$DUR_TMP/before.txt" "$DUR_TMP/after.txt" \
  || dur_fail "post-recovery answers/fingerprints diverged from pre-crash"

# A server that never crashed and never journaled must agree too.
dur_start ""
dur_mutate
dur_observe "$DUR_TMP/reference.txt"
kill -TERM "$DUR_PID"; wait "$DUR_PID" || true
diff <(grep '"value"' "$DUR_TMP/before.txt") \
     <(grep '"value"' "$DUR_TMP/reference.txt") \
  || dur_fail "durable answers diverged from the in-memory reference"
rm -rf "$DUR_TMP"
echo "crash smoke passed: recovered answers byte-identical to pre-crash"

echo "== check passed =="
