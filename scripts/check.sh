#!/usr/bin/env bash
# Pre-merge gate: configure + build + full test suite + perf gate.
#
# Usage: scripts/check.sh [build-dir]
#
# Exits non-zero on the first failure. The perf gate (`ctest -L perf`) runs
# the histogram/batched-inference parity tests and the bench smoke runs,
# which assert that the columnar engine reproduces the row interpreter, that
# cached/batched answers are bit-identical to fresh runs, and that
# PredictBatch matches per-row Predict — so a green check covers both
# correctness and the perf substrate's wiring.

set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

echo "== configure =="
cmake -B "$BUILD_DIR" -S . >/dev/null

echo "== build =="
cmake --build "$BUILD_DIR" -j"$(nproc)"

echo "== ctest =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)" -LE perf

echo "== perf gate (parity tests + bench smoke) =="
# bench_micro_smoke exists only when google-benchmark was found; ctest runs
# whatever perf tests are registered.
ctest --test-dir "$BUILD_DIR" --output-on-failure -L perf

echo "== tsan smoke (service-labeled tests) =="
# The concurrency gate: rebuild with -DHYPER_SANITIZE=thread and run the
# scenario-service tests (shared plan cache, single-flight prepares,
# concurrent how-to scoring) under ThreadSanitizer. Skipped only when the
# toolchain has no usable TSan runtime.
TSAN_PROBE="$(mktemp -d)"
printf 'int main(){return 0;}\n' > "$TSAN_PROBE/probe.cc"
if ${CXX:-c++} -fsanitize=thread "$TSAN_PROBE/probe.cc" -o "$TSAN_PROBE/probe" 2>/dev/null \
    && "$TSAN_PROBE/probe"; then
  rm -rf "$TSAN_PROBE"
  TSAN_BUILD_DIR="${BUILD_DIR}-tsan"
  cmake -B "$TSAN_BUILD_DIR" -S . -DHYPER_SANITIZE=thread >/dev/null
  cmake --build "$TSAN_BUILD_DIR" -j"$(nproc)" --target service_test
  ctest --test-dir "$TSAN_BUILD_DIR" --output-on-failure -L service
else
  rm -rf "$TSAN_PROBE"
  echo "ThreadSanitizer unavailable in this toolchain; skipping tsan smoke"
fi

echo "== check passed =="
