#!/usr/bin/env bash
# Pre-merge gate: configure + build + full test suite + benchmark smoke.
#
# Usage: scripts/check.sh [build-dir]
#
# Exits non-zero on the first failure. The bench smoke run also asserts that
# the columnar engine reproduces the row interpreter's answers exactly, so a
# green check covers both correctness and the perf substrate's wiring.

set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

echo "== configure =="
cmake -B "$BUILD_DIR" -S . >/dev/null

echo "== build =="
cmake --build "$BUILD_DIR" -j"$(nproc)"

echo "== ctest =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"

echo "== bench smoke =="
if [ -x "$BUILD_DIR/bench_micro" ]; then
  (cd "$BUILD_DIR" && ./bench_micro --smoke)
else
  # google-benchmark is optional in CMakeLists.txt; without it the binary
  # is never built and the smoke stage has nothing to run.
  echo "bench_micro not built (google-benchmark missing); skipping smoke"
fi

echo "== scenario service smoke =="
# Exits non-zero on any cached/batched answer that is not bit-for-bit
# identical to a fresh single-query run.
(cd "$BUILD_DIR" && ./bench_scenarios --smoke)

echo "== check passed =="
