#!/usr/bin/env bash
# Pre-merge gate: configure + build + full test suite + perf gate.
#
# Usage: scripts/check.sh [build-dir]
#
# Exits non-zero on the first failure. The perf gate (`ctest -L perf`) runs
# the histogram/batched-inference parity tests and the bench smoke runs,
# which assert that the columnar engine reproduces the row interpreter, that
# cached/batched answers are bit-identical to fresh runs, and that
# PredictBatch matches per-row Predict — so a green check covers both
# correctness and the perf substrate's wiring.

set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

echo "== configure =="
cmake -B "$BUILD_DIR" -S . >/dev/null

echo "== build =="
cmake --build "$BUILD_DIR" -j"$(nproc)"

echo "== ctest =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)" -LE perf

echo "== perf gate (parity tests + bench smoke) =="
# bench_micro_smoke exists only when google-benchmark was found; ctest runs
# whatever perf tests are registered.
ctest --test-dir "$BUILD_DIR" --output-on-failure -L perf

echo "== check passed =="
