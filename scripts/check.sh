#!/usr/bin/env bash
# Pre-merge gate: configure + build + full test suite + perf gate.
#
# Usage: scripts/check.sh [build-dir]
#
# Exits non-zero on the first failure. The perf gate (`ctest -L perf`) runs
# the histogram/batched-inference parity tests and the bench smoke runs,
# which assert that the columnar engine reproduces the row interpreter, that
# cached/batched answers are bit-identical to fresh runs, and that
# PredictBatch matches per-row Predict — so a green check covers both
# correctness and the perf substrate's wiring.

set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

echo "== configure =="
cmake -B "$BUILD_DIR" -S . >/dev/null

echo "== build =="
cmake --build "$BUILD_DIR" -j"$(nproc)"

echo "== ctest =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)" -LE perf

echo "== perf gate (parity tests + bench smoke) =="
# bench_micro_smoke exists only when google-benchmark was found; ctest runs
# whatever perf tests are registered.
ctest --test-dir "$BUILD_DIR" --output-on-failure -L perf

# Sanitizer legs over the `service`-labeled tests (the scenario service,
# stage/plan caches, single-flight prepares, concurrent how-to scoring):
# TSan catches data races on the shared stage caches, ASan catches
# lifetime bugs in the stage graph (an evicted upstream stage must stay
# alive through its downstream shared_ptr holders). Each leg probes the
# toolchain first and is skipped only when its runtime is unusable.
run_sanitizer_leg() {
  local SAN="$1"         # thread | address
  local FLAG="-fsanitize=$SAN"
  local SAN_BUILD_DIR="${BUILD_DIR}-${2}"   # build dir suffix: tsan | asan
  echo "== ${2} smoke (service-labeled tests) =="
  local PROBE
  PROBE="$(mktemp -d)"
  printf 'int main(){return 0;}\n' > "$PROBE/probe.cc"
  if ${CXX:-c++} "$FLAG" "$PROBE/probe.cc" -o "$PROBE/probe" 2>/dev/null \
      && "$PROBE/probe"; then
    rm -rf "$PROBE"
    cmake -B "$SAN_BUILD_DIR" -S . -DHYPER_SANITIZE="$SAN" >/dev/null
    cmake --build "$SAN_BUILD_DIR" -j"$(nproc)" --target service_test
    ctest --test-dir "$SAN_BUILD_DIR" --output-on-failure -L service
  else
    rm -rf "$PROBE"
    echo "${SAN}Sanitizer unavailable in this toolchain; skipping ${2} smoke"
  fi
}

run_sanitizer_leg thread tsan
run_sanitizer_leg address asan

echo "== check passed =="
