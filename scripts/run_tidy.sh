#!/usr/bin/env bash
# Runs clang-tidy (config: repo-root .clang-tidy) over every src/ translation
# unit using the compilation database exported by CMake
# (CMAKE_EXPORT_COMPILE_COMMANDS is always on — see CMakeLists.txt).
#
# Usage: run_tidy.sh [build_dir]     (default: build)
# Exits 77 (ctest SKIP) when no clang-tidy is on PATH, 2 when the build dir
# has no compile_commands.json, 1 on findings, 0 when clean.
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$ROOT/build}"

TIDY="${CLANG_TIDY:-}"
if [ -z "$TIDY" ]; then
  for candidate in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
                   clang-tidy-15 clang-tidy-14; do
    if command -v "$candidate" >/dev/null 2>&1; then
      TIDY="$candidate"
      break
    fi
  done
fi
if [ -z "$TIDY" ]; then
  echo "SKIP: no clang-tidy on PATH"
  exit 77
fi
if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "ERROR: $BUILD_DIR/compile_commands.json not found — configure first:"
  echo "  cmake -B $BUILD_DIR"
  exit 2
fi

mapfile -t SOURCES < <(find "$ROOT/src" -name '*.cc' | sort)
echo "clang-tidy ($TIDY) over ${#SOURCES[@]} files"

FAILED=0
for src in "${SOURCES[@]}"; do
  if ! "$TIDY" -p "$BUILD_DIR" --quiet "$src"; then
    FAILED=1
  fi
done

if [ "$FAILED" -ne 0 ]; then
  echo "clang-tidy: findings above"
  exit 1
fi
echo "clang-tidy: clean"
exit 0
