// Quickstart: the paper's running example end to end.
//
// Builds the Figure 1 Amazon database (5 products, 6 reviews), declares the
// Figure 2 causal graph, and runs
//   - the Figure 4 what-if query  ("raise Asus prices 10% -> avg rating?")
//   - a Figure 5-style how-to query ("how to maximize Asus laptop ratings
//     by repricing within [500, 800]?").
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart

#include <cstdio>

#include "causal/graph.h"
#include "howto/engine.h"
#include "storage/database.h"
#include "whatif/engine.h"

using namespace hyper;

namespace {

Database Figure1Database() {
  Database db;
  Table product(Schema("Product",
                       {{"PID", ValueType::kInt, Mutability::kImmutable},
                        {"Category", ValueType::kString, Mutability::kImmutable},
                        {"Price", ValueType::kDouble, Mutability::kMutable},
                        {"Brand", ValueType::kString, Mutability::kImmutable},
                        {"Color", ValueType::kString, Mutability::kMutable},
                        {"Quality", ValueType::kDouble, Mutability::kMutable}},
                       {"PID"}));
  auto P = [&](int pid, const char* cat, double price, const char* brand,
               const char* color, double quality) {
    product.AppendUnchecked({Value::Int(pid), Value::String(cat),
                             Value::Double(price), Value::String(brand),
                             Value::String(color), Value::Double(quality)});
  };
  P(1, "Laptop", 999, "Vaio", "Silver", 0.7);
  P(2, "Laptop", 529, "Asus", "Black", 0.65);
  P(3, "Laptop", 599, "HP", "Silver", 0.5);
  P(4, "DSLR Camera", 549, "Canon", "Black", 0.75);
  P(5, "Sci Fi eBooks", 15.99, "Fantasy Press", "Blue", 0.4);

  Table review(Schema("Review",
                      {{"PID", ValueType::kInt, Mutability::kImmutable},
                       {"ReviewID", ValueType::kInt, Mutability::kImmutable},
                       {"Sentiment", ValueType::kDouble, Mutability::kMutable},
                       {"Rating", ValueType::kDouble, Mutability::kMutable}},
                      {"PID", "ReviewID"}));
  auto R = [&](int pid, int rid, double senti, double rating) {
    review.AppendUnchecked({Value::Int(pid), Value::Int(rid),
                            Value::Double(senti), Value::Double(rating)});
  };
  R(1, 1, -0.95, 2);
  R(2, 2, 0.7, 4);
  R(2, 3, -0.2, 1);
  R(3, 3, 0.23, 3);
  R(3, 5, 0.95, 5);
  R(4, 5, 0.7, 4);

  // Fixed example schema into an empty database: AddTable cannot fail.
  (void)db.AddTable(std::move(product));
  (void)db.AddTable(std::move(review));
  return db;
}

/// The Figure 2 dependency graph, grounded per Figure 3: solid edges within
/// a product, key-linked edges into its reviews, and the dashed cross-tuple
/// price dependency within a category.
causal::CausalGraph Figure2Graph() {
  causal::CausalGraph g;
  g.AddEdge("Quality", "Price");
  g.AddEdge("Color", "Sentiment", "PID");
  g.AddEdge("Quality", "Sentiment", "PID");
  g.AddEdge("Quality", "Rating", "PID");
  g.AddEdge("Price", "Rating", "PID");
  g.AddEdge("Price", "Rating", "Category");  // dashed: competitors' prices
  return g;
}

}  // namespace

int main() {
  Database db = Figure1Database();
  causal::CausalGraph graph = Figure2Graph();

  std::printf("Amazon database: %zu products, %zu reviews\n",
              db.GetTable("Product").value()->num_rows(),
              db.GetTable("Review").value()->num_rows());

  // ----------------------------------------------------------- what-if
  const char* whatif_query =
      "Use RelevantView As ("
      "  Select T1.PID, T1.Category, T1.Price, T1.Brand, "
      "         Avg(Sentiment) As Senti, Avg(T2.Rating) As Rtng "
      "  From Product As T1, Review As T2 "
      "  Where T1.PID = T2.PID "
      "  Group By T1.PID, T1.Category, T1.Price, T1.Brand) "
      "When Brand = 'Asus' "
      "Update(Price) = 1.1 * Pre(Price) "
      "Output Avg(Post(Rtng)) "
      "For Pre(Category) = 'Laptop'";

  whatif::WhatIfOptions options;
  // Six reviews are not enough to train a forest; the frequency estimator
  // computes exact empirical conditionals instead.
  options.estimator = learn::EstimatorKind::kFrequency;
  whatif::WhatIfEngine engine(&db, &graph, options);

  std::printf("\n-- Figure 4 what-if --\n%s\n", whatif_query);
  auto result = engine.RunSql(whatif_query);
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("expected avg laptop rating after the update: %.3f\n",
              result->value);
  std::printf("(view rows: %zu, updated tuples: %zu, blocks: %zu)\n",
              result->view_rows, result->updated_rows, result->num_blocks);

  // ----------------------------------------------------------- how-to
  const char* howto_query =
      "Use RelevantView As ("
      "  Select T1.PID, T1.Category, T1.Price, T1.Brand, "
      "         Avg(Sentiment) As Senti, Avg(T2.Rating) As Rtng "
      "  From Product As T1, Review As T2 "
      "  Where T1.PID = T2.PID "
      "  Group By T1.PID, T1.Category, T1.Price, T1.Brand) "
      "When Brand = 'Asus' "
      "HowToUpdate Price "
      "Limit 500 <= Post(Price) <= 800 And "
      "      L1(Pre(Price), Post(Price)) <= 400 "
      "ToMaximize Avg(Post(Rtng)) "
      "For Pre(Category) = 'Laptop'";

  howto::HowToOptions howto_options;
  howto_options.whatif = options;
  howto_options.num_buckets = 6;
  howto::HowToEngine howto_engine(&db, &graph, howto_options);

  std::printf("\n-- Figure 5-style how-to --\n%s\n", howto_query);
  auto plan = howto_engine.RunSql(howto_query);
  if (!plan.ok()) {
    std::printf("error: %s\n", plan.status().ToString().c_str());
    return 1;
  }
  std::printf("recommended plan: %s\n", plan->PlanToString().c_str());
  std::printf("estimated objective: %.3f (baseline %.3f), "
              "%zu candidate what-ifs evaluated\n",
              plan->objective_value, plan->baseline_value,
              plan->candidates_evaluated);
  return 0;
}
