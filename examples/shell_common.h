#ifndef HYPER_EXAMPLES_SHELL_COMMON_H_
#define HYPER_EXAMPLES_SHELL_COMMON_H_

// Result printers shared by the interactive shell (hyper_shell.cc) and the
// scenario server demo (scenario_server.cc).

#include <cstdio>
#include <utility>

#include "howto/engine.h"
#include "service/plan_cache.h"
#include "service/scenario_service.h"
#include "whatif/engine.h"

namespace hyper::examples {

inline void PrintWhatIf(const whatif::WhatIfResult& result) {
  std::printf("value: %.6g\n", result.value);
  std::printf("  view rows %zu | updated %zu | blocks %zu | patterns %zu\n",
              result.view_rows, result.updated_rows, result.num_blocks,
              result.num_patterns);
  if (!result.backdoor.empty()) {
    std::printf("  adjustment set: {");
    for (size_t i = 0; i < result.backdoor.size(); ++i) {
      std::printf("%s%s", i ? ", " : "", result.backdoor[i].c_str());
    }
    std::printf("}\n");
  }
  std::printf("  %.3fs total (%.3fs prepare%s, %.3fs eval, %.3fs training",
              result.total_seconds, result.prepare_seconds,
              result.plan_cache_hit ? " [plan cache hit]" : "",
              result.eval_seconds, result.train_seconds);
  if (result.pattern_cache_hits > 0) {
    std::printf(", %zu estimator(s) reused", result.pattern_cache_hits);
  }
  std::printf(")\n");
}

inline void PrintHowTo(const howto::HowToResult& result) {
  std::printf("plan: %s\n", result.PlanToString().c_str());
  std::printf("  objective %.6g (baseline %.6g), %zu candidates, %s solver\n",
              result.objective_value, result.baseline_value,
              result.candidates_evaluated,
              result.used_mck ? "MCK" : "branch&bound");
  std::printf("  %.3fs total (%.3fs prepare, %.3fs eval, %.3fs training",
              result.total_seconds, result.prepare_seconds,
              result.eval_seconds, result.train_seconds);
  if (result.plan_cache_hits > 0 || result.pattern_cache_hits > 0) {
    std::printf("; cache: %zu plan hit(s), %zu estimator(s) reused",
                result.plan_cache_hits, result.pattern_cache_hits);
  }
  std::printf(")\n");
}

inline void PrintCacheStats(const service::PlanCacheStats& stats) {
  auto line = [](const char* name, size_t entries, size_t capacity,
                 size_t hits, size_t misses, size_t coalesced,
                 size_t evictions) {
    std::printf(
        "%-7s %4zu/%zu entr%s | %zu hit(s), %zu miss(es), %zu coalesced, "
        "%zu eviction(s)\n",
        name, entries, capacity, entries == 1 ? "y" : "ies", hits, misses,
        coalesced, evictions);
  };
  line("plan", stats.entries, stats.capacity, stats.hits, stats.misses,
       stats.coalesced, stats.evictions);
  // Per-stage sections of the staged prepare pipeline: `miss(es)` counts
  // actual stage builds, so `learn` misses staying flat while `plan` misses
  // climb is estimator reuse at work.
  const std::pair<const char*, const service::StageStats*> stages[] = {
      {"scope", &stats.scope},
      {"causal", &stats.causal},
      {"learn", &stats.learn},
      {"query", &stats.query}};
  for (const auto& [name, s] : stages) {
    line(name, s->entries, s->capacity, s->hits, s->misses, s->coalesced,
         s->evictions);
  }
}

inline void PrintGovernanceStats(const service::GovernanceStats& stats) {
  std::printf(
      "admission: %llu admitted (%llu after queueing), %llu shed, "
      "%llu rejected draining | %zu in flight, %zu waiting%s\n",
      static_cast<unsigned long long>(stats.admitted),
      static_cast<unsigned long long>(stats.queued),
      static_cast<unsigned long long>(stats.shed),
      static_cast<unsigned long long>(stats.rejected_draining),
      stats.in_flight, stats.queued_now, stats.draining ? " [draining]" : "");
  std::printf(
      "outcomes: %llu completed, of which %llu deadline-exceeded, "
      "%llu resource-exhausted, %llu cancelled\n",
      static_cast<unsigned long long>(stats.completed),
      static_cast<unsigned long long>(stats.deadline_exceeded),
      static_cast<unsigned long long>(stats.resource_exhausted),
      static_cast<unsigned long long>(stats.cancelled));
}

}  // namespace hyper::examples

#endif  // HYPER_EXAMPLES_SHELL_COMMON_H_
