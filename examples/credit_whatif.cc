// Credit-scoring what-if analysis on the synthetic German dataset: shows how
// the causal adjustment changes answers relative to the correlational
// baseline, and what the engine picked as the adjustment (backdoor) set.
//
// Scenario: a bank asks "if we moved every customer to the best
// checking-account status, what share would be good credit risks?" — the
// correlational answer overstates the effect because older customers both
// hold better accounts and repay better (Age confounds Status and Credit).

#include <cstdio>

#include "baselines/ground_truth.h"
#include "data/datasets.h"
#include "sql/parser.h"
#include "whatif/engine.h"

using namespace hyper;

int main() {
  data::GermanOptions generator;
  generator.rows = 20000;
  auto ds = data::MakeGermanSyn(generator);
  if (!ds.ok()) {
    std::printf("dataset error: %s\n", ds.status().ToString().c_str());
    return 1;
  }
  std::printf("German credit dataset: %zu rows\n", ds->db.TotalRows());
  std::printf("causal graph: %s\n\n", ds->graph.ToString().c_str());

  const char* query =
      "Use German Update(Status) = 3 Output Avg(Post(Credit))";
  auto stmt = sql::ParseSql(query).value();
  std::printf("query: %s\n\n", query);

  // Exact answer from the generating structural equations.
  const double truth =
      baselines::GroundTruthWhatIf(ds->flat, ds->scm, *stmt.whatif).value();

  // HypeR with the causal graph.
  whatif::WhatIfOptions hyper_options;
  hyper_options.estimator = learn::EstimatorKind::kFrequency;
  auto hyper = whatif::WhatIfEngine(&ds->db, &ds->graph, hyper_options)
                   .Run(*stmt.whatif)
                   .value();

  // HypeR-NB: no graph knowledge, adjust on everything.
  whatif::WhatIfOptions nb_options = hyper_options;
  nb_options.backdoor = whatif::BackdoorMode::kAllAttributes;
  auto nb = whatif::WhatIfEngine(&ds->db, &ds->graph, nb_options)
                .Run(*stmt.whatif)
                .value();

  // Correlational baseline: conditions only on Status itself.
  whatif::WhatIfOptions indep_options = hyper_options;
  indep_options.backdoor = whatif::BackdoorMode::kUpdateOnly;
  auto indep = whatif::WhatIfEngine(&ds->db, &ds->graph, indep_options)
                   .Run(*stmt.whatif)
                   .value();

  std::printf("P(good credit | do(Status = best)):\n");
  std::printf("  ground truth (structural equations):  %.4f\n", truth);
  std::printf("  HypeR (backdoor adjustment):          %.4f\n", hyper.value);
  std::printf("  HypeR-NB (adjust on everything):      %.4f\n", nb.value);
  std::printf("  Indep (correlational, no adjustment): %.4f  <- inflated\n",
              indep.value);

  std::printf("\nadjustment set HypeR derived from the graph: {");
  for (size_t i = 0; i < hyper.backdoor.size(); ++i) {
    std::printf("%s%s", i ? ", " : "", hyper.backdoor[i].c_str());
  }
  std::printf("}\n");

  // A more selective question: only customers with poor history.
  const char* targeted =
      "Use German When CreditHistory = 0 Update(Status) = 3 "
      "Output Count(Credit = 1) For Pre(CreditHistory) = 0";
  auto targeted_result =
      whatif::WhatIfEngine(&ds->db, &ds->graph, hyper_options)
          .RunSql(targeted)
          .value();
  std::printf(
      "\ntargeted update (only poor-history customers): %.0f of %zu "
      "such customers would be good risks\n",
      targeted_result.value, targeted_result.updated_rows);
  return 0;
}
