// HypeR scenario server: the ScenarioService behind a real HTTP/JSON
// front-end (src/net), with metrics (src/obs) and graceful drain.
//
//   ./build/scenario_server                        # serve on 127.0.0.1:8080
//   ./build/scenario_server --port 0               # ephemeral port (printed)
//   ./build/scenario_server --http-threads 8 --max-concurrent 2 --max-queued 4
//   ./build/scenario_server --stdin                # line protocol:
//                                                  #   [scenario|]statement
//   ./build/scenario_server --demo                 # scripted walkthrough
//   ./build/scenario_server --data-dir /var/hyper  # durable sessions (WAL +
//                                                  # snapshots; recovers on
//                                                  # restart) --fsync always
//
// Every mode funnels through the same net::QueryHandler, so the wire
// behavior (JSON shapes, error objects, HTTP status mapping) is identical
// whether a statement arrives over a socket, stdin, or the demo script.
// SIGTERM/SIGINT drain gracefully: in-flight requests finish, new ones are
// rejected with 503, then the process exits 0. See examples/SCENARIOS.md
// for a curl walkthrough of every endpoint.

#include <csignal>
#include <cstdio>
#include <cstring>
#include <chrono>
#include <iostream>
#include <string>
#include <thread>

#include "common/strings.h"
#include "common/thread_pool.h"
#include "data/datasets.h"
#include "durability/manager.h"
#include "net/listener.h"
#include "net/query_handler.h"
#include "obs/metrics.h"
#include "service/scenario_service.h"

using namespace hyper;

namespace {

volatile std::sig_atomic_t g_shutdown = 0;

void HandleSignal(int) { g_shutdown = 1; }

void InstallSignalHandlers() {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = HandleSignal;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
}

/// Final snapshot on clean shutdown: the next start recovers from the
/// snapshot alone instead of replaying the whole log. Failure is non-fatal —
/// the WAL already holds everything the snapshot would.
void FinalSnapshot(service::ScenarioService& service) {
  if (!service.durable()) return;
  const Status s = service.SnapshotNow();
  if (!s.ok()) {
    std::fprintf(stderr, "final snapshot failed (WAL remains authoritative): "
                 "%s\n", s.ToString().c_str());
  } else {
    std::fprintf(stderr, "final snapshot written\n");
  }
}

/// Runs one request through the handler as if it had arrived over HTTP.
net::HttpResponse Call(net::QueryHandler& handler, const char* method,
                       const std::string& path, const std::string& body) {
  net::HttpRequest request;
  request.method = method;
  request.target = path;
  request.version = "HTTP/1.1";
  request.body = body;
  net::HttpResponse response;
  handler.Handle(request, &response);
  return response;
}

// Line protocol: '[scenario|]statement'. Every line answers with exactly the
// JSON object the HTTP path would send — including the structured error
// object for malformed lines — so scripts can consume stdout uniformly.
// Diagnostics go to stderr.
int RunStdin(service::ScenarioService& service, net::QueryHandler& handler) {
  std::fprintf(stderr, "reading '[scenario|]statement' lines from stdin\n");
  std::string line;
  size_t lineno = 0;
  while (std::getline(std::cin, line)) {
    ++lineno;
    std::string trimmed(Trim(line));
    if (trimmed.empty() || trimmed[0] == '#') continue;
    std::string scenario = "main";
    std::string sql = trimmed;
    const size_t bar = trimmed.find('|');
    if (bar != std::string::npos && trimmed.find(' ') > bar) {
      if (bar == 0) {
        std::printf("%s\n",
                    net::ErrorJson(400, "bad_request",
                                   StrFormat("line %zu: empty scenario "
                                             "before '|'", lineno))
                        .c_str());
        continue;
      }
      scenario = std::string(Trim(trimmed.substr(0, bar)));
      sql = std::string(Trim(trimmed.substr(bar + 1)));
      if (sql.empty()) {
        std::printf("%s\n",
                    net::ErrorJson(400, "bad_request",
                                   StrFormat("line %zu: missing statement "
                                             "after '%s|'", lineno,
                                             scenario.c_str()))
                        .c_str());
        continue;
      }
    }
    std::printf("%s\n", handler.HandleLine(scenario, sql).c_str());
    std::fflush(stdout);
  }
  service.BeginDrain();
  service.AwaitIdle();
  FinalSnapshot(service);
  std::fprintf(stderr, "eof: drained\n");
  return 0;
}

// The SCENARIOS.md walkthrough, issued through the handler end to end:
// branch, apply a hypothetical, compare worlds, sweep interventions as one
// batch, and read the metrics the workload produced.
int RunDemo(net::QueryHandler& handler) {
  const std::string query =
      "Use German When Status = 1 Update(Status) = 2 "
      "Output Count(Credit = 1)";
  auto show = [&](const char* label, const net::HttpResponse& r) {
    std::printf("-- %s [%d]\n%s\n", label, r.status, r.body.c_str());
  };

  const std::string whatif_body =
      "{\"scenario\":\"main\",\"sql\":\"" + query + "\"}";
  show("what-if (cold cache)",
       Call(handler, "POST", "/v1/whatif", whatif_body));
  show("what-if (warm cache)",
       Call(handler, "POST", "/v1/whatif", whatif_body));

  show("create scenario 'austerity'",
       Call(handler, "POST", "/v1/scenario",
            "{\"action\":\"create\",\"name\":\"austerity\"}"));
  show("apply hypothetical to 'austerity'",
       Call(handler, "POST", "/v1/scenario",
            "{\"action\":\"apply\",\"scenario\":\"austerity\",\"sql\":"
            "\"Use German When Savings = 0 Update(Credit) = 0 "
            "Output Count(*)\"}"));
  show("same what-if on 'austerity'",
       Call(handler, "POST", "/v1/whatif",
            "{\"scenario\":\"austerity\",\"sql\":\"" + query + "\"}"));
  show("same what-if on 'main' (isolated)",
       Call(handler, "POST", "/v1/whatif", whatif_body));

  show("intervention sweep (one prepared plan)",
       Call(handler, "POST", "/v1/whatif/batch",
            "{\"scenario\":\"main\",\"sql\":\"" + query +
                "\",\"interventions\":["
                "[{\"attribute\":\"Status\",\"value\":0}],"
                "[{\"attribute\":\"Status\",\"value\":1}],"
                "[{\"attribute\":\"Status\",\"value\":2}],"
                "[{\"attribute\":\"Status\",\"value\":3}]]}"));

  show("how-to (shared estimators)",
       Call(handler, "POST", "/v1/howto",
            "{\"scenario\":\"main\",\"sql\":\"Use German HowToUpdate Status "
            "ToMaximize Count(Credit = 1)\"}"));

  show("governed what-if (1ms deadline)",
       Call(handler, "POST", "/v1/howto",
            "{\"scenario\":\"main\",\"deadline_ms\":1,\"sql\":"
            "\"Use German HowToUpdate Status ToMaximize "
            "Count(Credit = 1)\"}"));

  show("scenario list", Call(handler, "GET", "/v1/scenario", ""));
  show("statusz", Call(handler, "GET", "/statusz", ""));
  return 0;
}

int Serve(service::ScenarioService& service, net::QueryHandler& handler,
          uint16_t port, size_t http_threads) {
  net::HttpServerOptions options;
  options.port = port;
  options.num_threads = http_threads;
  net::HttpServer server(options);
  const Status started = server.Start(handler.AsHandler());
  if (!started.ok()) {
    std::fprintf(stderr, "cannot start server: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  std::printf("scenario_server listening on %s:%u (%zu http thread(s))\n",
              options.bind_address.c_str(), unsigned{server.port()},
              http_threads);
  std::fflush(stdout);

  while (g_shutdown == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  // Graceful drain: stop admitting service work first, so requests arriving
  // during the drain get a clean 503 instead of a dropped connection; once
  // the last in-flight request finishes, tear the listener down.
  std::fprintf(stderr, "signal received: draining\n");
  service.BeginDrain();
  service.AwaitIdle();
  FinalSnapshot(service);
  server.Stop();
  const net::HttpServer::Stats stats = server.stats();
  const service::GovernanceStats gov = service.governance_stats();
  std::fprintf(stderr,
               "drained: %llu connection(s), %llu request(s), "
               "%llu completed, %llu rejected while draining\n",
               static_cast<unsigned long long>(stats.connections_accepted),
               static_cast<unsigned long long>(stats.requests_served),
               static_cast<unsigned long long>(gov.completed),
               static_cast<unsigned long long>(gov.rejected_draining));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dataset = "german-syn-20k";
  size_t threads = 0;
  size_t max_concurrent = 0;
  size_t max_queued = 0;
  long port = 8080;
  size_t http_threads = 4;
  bool use_stdin = false;
  bool use_demo = false;
  std::string data_dir;
  durability::FsyncPolicy fsync = durability::FsyncPolicy::kInterval;
  uint64_t snapshot_every = 256;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--max-concurrent") == 0 && i + 1 < argc) {
      max_concurrent =
          static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--max-queued") == 0 && i + 1 < argc) {
      max_queued = static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      port = std::strtol(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--http-threads") == 0 && i + 1 < argc) {
      http_threads =
          static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--data-dir") == 0 && i + 1 < argc) {
      data_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--fsync") == 0 && i + 1 < argc) {
      auto parsed = durability::ParseFsyncPolicy(argv[++i]);
      if (!parsed.ok()) {
        std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
        return 1;
      }
      fsync = parsed.value();
    } else if (std::strcmp(argv[i], "--snapshot-every") == 0 && i + 1 < argc) {
      snapshot_every = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--stdin") == 0) {
      use_stdin = true;
    } else if (std::strcmp(argv[i], "--demo") == 0) {
      use_demo = true;
    } else if (argv[i][0] != '-') {
      dataset = argv[i];
    }
  }
  if (port < 0 || port > 65535) {
    std::fprintf(stderr, "--port must be in [0, 65535]\n");
    return 1;
  }

  auto ds = data::MakeByName(dataset, /*scale=*/0.25);
  if (!ds.ok()) {
    std::fprintf(stderr, "%s\n", ds.status().ToString().c_str());
    return 1;
  }

  // The registry outlives the service (the service holds instrument
  // pointers into it).
  obs::MetricsRegistry registry;
  service::ServiceOptions options;
  options.whatif.estimator = learn::EstimatorKind::kFrequency;
  options.num_threads = threads;
  options.whatif.num_threads = threads;
  options.max_concurrent_requests = max_concurrent;
  options.max_queued_requests = max_queued;
  options.metrics = &registry;
  options.data_dir = data_dir;
  options.wal_fsync = fsync;
  options.snapshot_every_records = snapshot_every;
  service::ScenarioService service(std::move(ds->db), std::move(ds->graph),
                                   options);
  // A durable service that failed recovery refuses every state-changing op
  // with the recovery error; a server in that state is useless (and the
  // operator should know immediately), so fail fast.
  if (!service.recovery_status().ok()) {
    std::fprintf(stderr, "recovery failed: %s\n",
                 service.recovery_status().ToString().c_str());
    return 1;
  }
  if (service.durable()) {
    const durability::RecoveryInfo& rec = service.recovery_info();
    std::fprintf(
        stderr,
        "durable sessions: %s (fsync=%s); recovered %llu record(s) in %.3fs"
        "%s%s, snapshot %s\n",
        data_dir.c_str(), durability::FsyncPolicyName(fsync),
        static_cast<unsigned long long>(rec.records_replayed), rec.seconds,
        rec.tail_truncated ? ", torn tail truncated" : "",
        rec.records_skipped != 0 ? ", duplicates skipped" : "",
        rec.snapshot_loaded ? rec.snapshot_path.c_str() : "(none)");
  }
  net::QueryHandler handler(&service, &registry);
  std::fprintf(stderr, "scenario server: %s, %zu engine thread(s)\n",
               dataset.c_str(),
               threads == 0 ? ThreadPool::DefaultThreads() : threads);

  if (use_stdin) return RunStdin(service, handler);
  if (use_demo) return RunDemo(handler);
  InstallSignalHandlers();
  return Serve(service, handler, static_cast<uint16_t>(port), http_threads);
}
