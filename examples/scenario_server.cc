// Scenario server demo: the ScenarioService serving a multi-session
// exploration workload — named scenario branches, a shared estimator/plan
// cache, and batched what-if evaluation.
//
//   ./build/scenario_server                       # german-syn-20k, demo script
//   ./build/scenario_server amazon --threads 4
//   ./build/scenario_server --stdin               # line protocol:
//                                                 #   [scenario|]statement
//   ./build/scenario_server --max-concurrent 2 --max-queued 4
//                                                 # admission control: at most
//                                                 # 2 in flight, 4 queued,
//                                                 # surplus shed (Unavailable)
//
// The demo script walks the workload of examples/SCENARIOS.md: branch,
// apply a hypothetical, compare worlds, sweep interventions as one batch,
// and show what the cache saved.

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "common/stopwatch.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "data/datasets.h"
#include "examples/shell_common.h"
#include "service/scenario_service.h"

using namespace hyper;

namespace {

void PrintResponse(const std::string& label,
                   const service::Response& response) {
  std::printf("-- %s\n", label.c_str());
  if (!response.ok()) {
    std::printf("error: %s\n", response.status.ToString().c_str());
    return;
  }
  switch (response.kind) {
    case service::Response::Kind::kWhatIf:
      examples::PrintWhatIf(response.whatif);
      break;
    case service::Response::Kind::kHowTo:
      examples::PrintHowTo(response.howto);
      break;
    case service::Response::Kind::kSelect:
      std::printf("%s", response.table.ToString(10).c_str());
      break;
    case service::Response::Kind::kNone:
      break;
  }
}

// Line protocol: '[scenario|]statement'. Malformed lines (an empty scenario
// or a '|' with nothing after it) get a structured one-line diagnostic
// instead of being silently skipped or fed to the parser as garbage; EOF
// drains the service gracefully (in-flight work finishes, new work is
// rejected) and reports the admission/outcome counters.
int RunStdin(service::ScenarioService& service) {
  std::printf("reading '[scenario|]statement' lines from stdin\n");
  std::string line;
  size_t lineno = 0;
  while (std::getline(std::cin, line)) {
    ++lineno;
    std::string trimmed(Trim(line));
    if (trimmed.empty() || trimmed[0] == '#') continue;
    service::Request request;
    const size_t bar = trimmed.find('|');
    if (bar != std::string::npos && trimmed.find(' ') > bar) {
      if (bar == 0) {
        std::printf("error: line %zu: empty scenario before '|'\n", lineno);
        continue;
      }
      request.scenario = std::string(Trim(trimmed.substr(0, bar)));
      request.sql = std::string(Trim(trimmed.substr(bar + 1)));
      if (request.sql.empty()) {
        std::printf("error: line %zu: missing statement after '%s|'\n",
                    lineno, request.scenario.c_str());
        continue;
      }
    } else {
      request.sql = trimmed;
    }
    PrintResponse(request.scenario + ": " + request.sql,
                  service.Submit(request));
  }
  service.BeginDrain();
  service.AwaitIdle();
  std::printf("-- eof: drained\n");
  examples::PrintGovernanceStats(service.governance_stats());
  return 0;
}

int RunDemo(service::ScenarioService& service) {
  const std::string query =
      "Use German When Status = 1 Update(Status) = 2 "
      "Output Count(Credit = 1)";

  // 1. The same what-if twice: the second run reuses the prepared plan and
  //    its trained estimators.
  PrintResponse("what-if (cold cache)", service.Submit({"main", query, {}}));
  PrintResponse("what-if (warm cache)", service.Submit({"main", query, {}}));

  // 2. Branch a scenario and apply a hypothetical: later queries on the
  //    branch see the post-update world; 'main' is untouched.
  if (Status s = service.CreateScenario("austerity", "main"); !s.ok()) {
    std::printf("error: %s\n", s.ToString().c_str());
    return 1;
  }
  auto updated = service.ApplyHypotheticalSql(
      "austerity",
      "Use German When Savings = 0 Update(Credit) = 0 Output Count(*)");
  if (!updated.ok()) {
    std::printf("error: %s\n", updated.status().ToString().c_str());
    return 1;
  }
  std::printf("-- applied hypothetical to 'austerity': %zu row(s)\n",
              *updated);
  PrintResponse("same what-if on 'austerity'",
                service.Submit({"austerity", query, {}}));
  PrintResponse("same what-if on 'main' (isolated)",
                service.Submit({"main", query, {}}));

  // 3. Intervention sweep: N what-ifs over one shared view, evaluated as a
  //    single batch against one prepared plan.
  std::vector<std::vector<whatif::UpdateSpec>> interventions;
  for (int status = 0; status <= 3; ++status) {
    whatif::UpdateSpec spec;
    spec.attribute = "Status";
    spec.func = sql::UpdateFuncKind::kSet;
    spec.constant = Value::Int(status);
    interventions.push_back({spec});
  }
  Stopwatch batch_timer;
  auto batch = service.SubmitWhatIfBatch("main", query, interventions);
  if (!batch.ok()) {
    std::printf("error: %s\n", batch.status().ToString().c_str());
    return 1;
  }
  std::printf("-- intervention sweep (batch of %zu in %.3fs)\n",
              batch->size(), batch_timer.ElapsedSeconds());
  for (size_t i = 0; i < batch->size(); ++i) {
    const service::WhatIfBatchItem& item = (*batch)[i];
    if (item.ok()) {
      std::printf("  Status <- %d: value %.6g\n", static_cast<int>(i),
                  item.result.value);
    } else {
      std::printf("  Status <- %d: %s\n", static_cast<int>(i),
                  item.status.ToString().c_str());
    }
  }

  // 4. A how-to on the warm cache: candidate scoring shares the prepared
  //    plans the sweep just populated.
  PrintResponse(
      "how-to (shared estimators)",
      service.Submit({"main",
                      "Use German HowToUpdate Status "
                      "ToMaximize Count(Credit = 1)",
                      {}}));

  // 5. Mixed concurrent workload across branches.
  std::vector<service::Request> mixed;
  for (int i = 0; i < 4; ++i) {
    mixed.push_back({i % 2 == 0 ? "main" : "austerity", query, {}});
  }
  Stopwatch mixed_timer;
  std::vector<service::Response> responses = service.SubmitBatch(mixed);
  size_t ok = 0;
  for (const service::Response& r : responses) ok += r.ok() ? 1 : 0;
  std::printf("-- mixed batch: %zu/%zu ok in %.3fs\n", ok, responses.size(),
              mixed_timer.ElapsedSeconds());

  // 6. Resource governance: the same query under an already-expired
  //    deadline aborts with a typed status instead of running; the warm
  //    cache entries it would have used are untouched.
  service::Request governed{"main", query, {}};
  governed.budget.deadline_seconds = 1e-9;
  service::Response bounded = service.Submit(governed);
  std::printf("-- governed what-if (1ns deadline): %s\n",
              bounded.ok() ? "ok (?!)" : bounded.status.ToString().c_str());

  examples::PrintCacheStats(service.cache_stats());
  examples::PrintGovernanceStats(service.governance_stats());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dataset = "german-syn-20k";
  size_t threads = 0;
  size_t max_concurrent = 0;
  size_t max_queued = 0;
  bool use_stdin = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--max-concurrent") == 0 && i + 1 < argc) {
      max_concurrent =
          static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--max-queued") == 0 && i + 1 < argc) {
      max_queued = static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--stdin") == 0) {
      use_stdin = true;
    } else if (argv[i][0] != '-') {
      dataset = argv[i];
    }
  }

  auto ds = data::MakeByName(dataset, /*scale=*/0.25);
  if (!ds.ok()) {
    std::printf("%s\n", ds.status().ToString().c_str());
    return 1;
  }

  service::ServiceOptions options;
  options.whatif.estimator = learn::EstimatorKind::kFrequency;
  options.num_threads = threads;
  options.whatif.num_threads = threads;
  options.max_concurrent_requests = max_concurrent;
  options.max_queued_requests = max_queued;
  service::ScenarioService service(std::move(ds->db), std::move(ds->graph),
                                   options);
  std::printf("scenario server: %s, %zu thread(s)\n", dataset.c_str(),
              threads == 0 ? ThreadPool::DefaultThreads() : threads);

  return use_stdin ? RunStdin(service) : RunDemo(service);
}
