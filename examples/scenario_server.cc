// Scenario server demo: the ScenarioService serving a multi-session
// exploration workload — named scenario branches, a shared estimator/plan
// cache, and batched what-if evaluation.
//
//   ./build/scenario_server                       # german-syn-20k, demo script
//   ./build/scenario_server amazon --threads 4
//   ./build/scenario_server --stdin               # line protocol:
//                                                 #   [scenario|]statement
//
// The demo script walks the workload of examples/SCENARIOS.md: branch,
// apply a hypothetical, compare worlds, sweep interventions as one batch,
// and show what the cache saved.

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "common/stopwatch.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "data/datasets.h"
#include "examples/shell_common.h"
#include "service/scenario_service.h"

using namespace hyper;

namespace {

void PrintResponse(const std::string& label,
                   const service::Response& response) {
  std::printf("-- %s\n", label.c_str());
  if (!response.ok()) {
    std::printf("error: %s\n", response.status.ToString().c_str());
    return;
  }
  switch (response.kind) {
    case service::Response::Kind::kWhatIf:
      examples::PrintWhatIf(response.whatif);
      break;
    case service::Response::Kind::kHowTo:
      examples::PrintHowTo(response.howto);
      break;
    case service::Response::Kind::kSelect:
      std::printf("%s", response.table.ToString(10).c_str());
      break;
    case service::Response::Kind::kNone:
      break;
  }
}

int RunStdin(service::ScenarioService& service) {
  std::printf("reading '[scenario|]statement' lines from stdin\n");
  std::string line;
  while (std::getline(std::cin, line)) {
    std::string trimmed(Trim(line));
    if (trimmed.empty() || trimmed[0] == '#') continue;
    service::Request request;
    const size_t bar = trimmed.find('|');
    if (bar != std::string::npos && trimmed.find(' ') > bar) {
      request.scenario = trimmed.substr(0, bar);
      request.sql = trimmed.substr(bar + 1);
    } else {
      request.sql = trimmed;
    }
    PrintResponse(request.scenario + ": " + request.sql,
                  service.Submit(request));
  }
  return 0;
}

int RunDemo(service::ScenarioService& service) {
  const std::string query =
      "Use German When Status = 1 Update(Status) = 2 "
      "Output Count(Credit = 1)";

  // 1. The same what-if twice: the second run reuses the prepared plan and
  //    its trained estimators.
  PrintResponse("what-if (cold cache)", service.Submit({"main", query, {}}));
  PrintResponse("what-if (warm cache)", service.Submit({"main", query, {}}));

  // 2. Branch a scenario and apply a hypothetical: later queries on the
  //    branch see the post-update world; 'main' is untouched.
  if (Status s = service.CreateScenario("austerity", "main"); !s.ok()) {
    std::printf("error: %s\n", s.ToString().c_str());
    return 1;
  }
  auto updated = service.ApplyHypotheticalSql(
      "austerity",
      "Use German When Savings = 0 Update(Credit) = 0 Output Count(*)");
  if (!updated.ok()) {
    std::printf("error: %s\n", updated.status().ToString().c_str());
    return 1;
  }
  std::printf("-- applied hypothetical to 'austerity': %zu row(s)\n",
              *updated);
  PrintResponse("same what-if on 'austerity'",
                service.Submit({"austerity", query, {}}));
  PrintResponse("same what-if on 'main' (isolated)",
                service.Submit({"main", query, {}}));

  // 3. Intervention sweep: N what-ifs over one shared view, evaluated as a
  //    single batch against one prepared plan.
  std::vector<std::vector<whatif::UpdateSpec>> interventions;
  for (int status = 0; status <= 3; ++status) {
    whatif::UpdateSpec spec;
    spec.attribute = "Status";
    spec.func = sql::UpdateFuncKind::kSet;
    spec.constant = Value::Int(status);
    interventions.push_back({spec});
  }
  Stopwatch batch_timer;
  auto batch = service.SubmitWhatIfBatch("main", query, interventions);
  if (!batch.ok()) {
    std::printf("error: %s\n", batch.status().ToString().c_str());
    return 1;
  }
  std::printf("-- intervention sweep (batch of %zu in %.3fs)\n",
              batch->size(), batch_timer.ElapsedSeconds());
  for (size_t i = 0; i < batch->size(); ++i) {
    const service::WhatIfBatchItem& item = (*batch)[i];
    if (item.ok()) {
      std::printf("  Status <- %d: value %.6g\n", static_cast<int>(i),
                  item.result.value);
    } else {
      std::printf("  Status <- %d: %s\n", static_cast<int>(i),
                  item.status.ToString().c_str());
    }
  }

  // 4. A how-to on the warm cache: candidate scoring shares the prepared
  //    plans the sweep just populated.
  PrintResponse(
      "how-to (shared estimators)",
      service.Submit({"main",
                      "Use German HowToUpdate Status "
                      "ToMaximize Count(Credit = 1)",
                      {}}));

  // 5. Mixed concurrent workload across branches.
  std::vector<service::Request> mixed;
  for (int i = 0; i < 4; ++i) {
    mixed.push_back({i % 2 == 0 ? "main" : "austerity", query, {}});
  }
  Stopwatch mixed_timer;
  std::vector<service::Response> responses = service.SubmitBatch(mixed);
  size_t ok = 0;
  for (const service::Response& r : responses) ok += r.ok() ? 1 : 0;
  std::printf("-- mixed batch: %zu/%zu ok in %.3fs\n", ok, responses.size(),
              mixed_timer.ElapsedSeconds());

  examples::PrintCacheStats(service.cache_stats());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dataset = "german-syn-20k";
  size_t threads = 0;
  bool use_stdin = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--stdin") == 0) {
      use_stdin = true;
    } else if (argv[i][0] != '-') {
      dataset = argv[i];
    }
  }

  auto ds = data::MakeByName(dataset, /*scale=*/0.25);
  if (!ds.ok()) {
    std::printf("%s\n", ds.status().ToString().c_str());
    return 1;
  }

  service::ServiceOptions options;
  options.whatif.estimator = learn::EstimatorKind::kFrequency;
  options.num_threads = threads;
  options.whatif.num_threads = threads;
  service::ScenarioService service(std::move(ds->db), std::move(ds->graph),
                                   options);
  std::printf("scenario server: %s, %zu thread(s)\n", dataset.c_str(),
              threads == 0 ? ThreadPool::DefaultThreads() : threads);

  return use_stdin ? RunStdin(service) : RunDemo(service);
}
