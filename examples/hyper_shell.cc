// Interactive HypeR shell: load a built-in dataset (or your own CSVs) and
// run what-if / how-to / select statements against it — served through the
// ScenarioService, so queries hit the shared estimator/plan cache and can
// target named scenario branches.
//
//   ./build/examples/hyper_shell                 # german-syn-20k by default
//   ./build/examples/hyper_shell student-syn --threads 4
//   ./build/examples/hyper_shell --csv products.csv=Product
//                                --csv reviews.csv=Review   (repeatable)
//
// Shell commands:
//   \tables               list relations (of the current scenario)
//   \schema <relation>    show a schema
//   \graph                show the causal graph (when available)
//   \estimator f|t        frequency / forest (tree) estimator
//   \mode graph|nb|indep  backdoor mode
//   \sample <n>           HypeR-sampled training cap (0 = off)
//   \scenario list                 list scenario branches
//   \scenario new <name> [parent]  branch a scenario (default parent: current)
//   \scenario use <name>           switch the current scenario
//   \scenario drop <name>          delete a branch
//   \scenario apply <what-if>      apply the statement's deterministic update
//                                  to the current scenario (chained updates)
//   \budget deadline <sec> | rows <n> | bytes <n> | off | show
//                         per-request resource budget (0 = unlimited)
//   \cache stats|clear    shared estimator/plan cache + admission counters
//   \metrics              full metrics snapshot (the server's /statusz JSON)
//   \wal stats            durability state (needs --data-dir <dir>)
//   \quit
// Anything else is parsed as a HypeR statement (end with ';' or newline).

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "common/strings.h"
#include "data/datasets.h"
#include "durability/manager.h"
#include "examples/shell_common.h"
#include "obs/metrics.h"
#include "service/scenario_service.h"
#include "service/service_metrics.h"
#include "storage/csv.h"

using namespace hyper;

namespace {

struct ShellState {
  /// Declared before the service: the service holds instrument pointers
  /// into the registry, so the registry must be destroyed last.
  obs::MetricsRegistry registry;
  std::unique_ptr<service::ScenarioService> service;
  std::string scenario = "main";
  whatif::WhatIfOptions options;  // per-request override, tweakable live
  QueryBudget budget;             // per-request resource budget (\budget)
};

void RunStatement(ShellState& state, const std::string& text) {
  service::Request request;
  request.scenario = state.scenario;
  request.sql = text;
  request.whatif_options = state.options;
  request.budget = state.budget;
  service::Response response = state.service->Submit(request);
  if (!response.ok()) {
    std::printf("error: %s\n", response.status.ToString().c_str());
    return;
  }
  switch (response.kind) {
    case service::Response::Kind::kWhatIf:
      examples::PrintWhatIf(response.whatif);
      break;
    case service::Response::Kind::kHowTo:
      examples::PrintHowTo(response.howto);
      break;
    case service::Response::Kind::kSelect:
      std::printf("%s", response.table.ToString(20).c_str());
      break;
    case service::Response::Kind::kNone:
      break;
  }
}

void RunScenarioCommand(ShellState& state,
                        const std::vector<std::string>& parts,
                        const std::string& line) {
  const std::string sub = parts.size() > 1 ? parts[1] : "list";
  if (sub == "list") {
    for (const service::ScenarioInfo& info :
         state.service->ListScenarios()) {
      std::printf("%s%s%s%s: %zu update(s), %zu overridden cell(s)\n",
                  info.name == state.scenario ? "* " : "  ",
                  info.name.c_str(),
                  info.parent.empty() ? "" : " <- ",
                  info.parent.c_str(), info.updates_applied,
                  info.overridden_cells);
    }
  } else if (sub == "new" && parts.size() > 2) {
    const std::string parent = parts.size() > 3 ? parts[3] : state.scenario;
    Status status = state.service->CreateScenario(parts[2], parent);
    if (status.ok()) {
      state.scenario = parts[2];
      std::printf("scenario '%s' branched from '%s' (now current)\n",
                  parts[2].c_str(), parent.c_str());
    } else {
      std::printf("error: %s\n", status.ToString().c_str());
    }
  } else if (sub == "use" && parts.size() > 2) {
    if (state.service->HasScenario(parts[2])) {
      state.scenario = parts[2];
      std::printf("scenario: %s\n", state.scenario.c_str());
    } else {
      std::printf("error: scenario '%s' does not exist\n", parts[2].c_str());
    }
  } else if (sub == "drop" && parts.size() > 2) {
    Status status = state.service->DropScenario(parts[2]);
    if (!status.ok()) {
      std::printf("error: %s\n", status.ToString().c_str());
      return;
    }
    if (state.scenario == parts[2]) state.scenario = "main";
    std::printf("dropped '%s' (current: %s)\n", parts[2].c_str(),
                state.scenario.c_str());
  } else if (sub == "apply") {
    const size_t pos = line.find("apply");
    const std::string sql = std::string(Trim(line.substr(pos + 5)));
    auto updated = state.service->ApplyHypotheticalSql(state.scenario, sql);
    if (updated.ok()) {
      std::printf("applied to '%s': %zu row(s) updated\n",
                  state.scenario.c_str(), *updated);
    } else {
      std::printf("error: %s\n", updated.status().ToString().c_str());
    }
  } else {
    std::printf(
        "usage: \\scenario list | new <name> [parent] | use <name> | "
        "drop <name> | apply <what-if>\n");
  }
}

void RunCommand(ShellState& state, const std::string& line) {
  const std::vector<std::string> parts = Split(line, ' ');
  const std::string& cmd = parts[0];
  if (cmd == "\\tables") {
    auto db = state.service->EffectiveDatabase(state.scenario);
    if (!db.ok()) {
      std::printf("error: %s\n", db.status().ToString().c_str());
      return;
    }
    for (const std::string& name : (*db)->TableNames()) {
      std::printf("%s (%zu rows)\n", name.c_str(),
                  (*db)->GetTable(name).value()->num_rows());
    }
  } else if (cmd == "\\schema" && parts.size() > 1) {
    auto db = state.service->EffectiveDatabase(state.scenario);
    if (!db.ok()) {
      std::printf("error: %s\n", db.status().ToString().c_str());
      return;
    }
    auto table = (*db)->GetTable(parts[1]);
    if (table.ok()) {
      std::printf("%s\n", (*table)->schema().ToString().c_str());
    } else {
      std::printf("error: %s\n", table.status().ToString().c_str());
    }
  } else if (cmd == "\\graph") {
    const causal::CausalGraph* graph = state.service->graph();
    std::printf("%s\n", graph != nullptr ? graph->ToString().c_str()
                                         : "(no causal graph loaded)");
  } else if (cmd == "\\dot") {
    const causal::CausalGraph* graph = state.service->graph();
    std::printf("%s", graph != nullptr ? graph->ToDot().c_str()
                                       : "(no causal graph loaded)\n");
  } else if (cmd == "\\estimator" && parts.size() > 1) {
    state.options.estimator = parts[1][0] == 'f'
                                  ? learn::EstimatorKind::kFrequency
                                  : learn::EstimatorKind::kForest;
    std::printf("estimator: %s\n",
                learn::EstimatorKindName(state.options.estimator));
  } else if (cmd == "\\mode" && parts.size() > 1) {
    if (parts[1] == "graph") {
      state.options.backdoor = whatif::BackdoorMode::kGraph;
    } else if (parts[1] == "nb") {
      state.options.backdoor = whatif::BackdoorMode::kAllAttributes;
    } else if (parts[1] == "indep") {
      state.options.backdoor = whatif::BackdoorMode::kUpdateOnly;
    }
    std::printf("mode: %s\n", BackdoorModeName(state.options.backdoor));
  } else if (cmd == "\\sample" && parts.size() > 1) {
    state.options.sample_size =
        static_cast<size_t>(std::strtoull(parts[1].c_str(), nullptr, 10));
    std::printf("sample: %zu\n", state.options.sample_size);
  } else if (cmd == "\\scenario") {
    RunScenarioCommand(state, parts, line);
  } else if (cmd == "\\budget") {
    const std::string sub = parts.size() > 1 ? parts[1] : "show";
    if (sub == "off") {
      state.budget = QueryBudget{};
    } else if (sub == "deadline" && parts.size() > 2) {
      state.budget.deadline_seconds = std::strtod(parts[2].c_str(), nullptr);
    } else if (sub == "rows" && parts.size() > 2) {
      state.budget.max_rows_touched =
          static_cast<size_t>(std::strtoull(parts[2].c_str(), nullptr, 10));
    } else if (sub == "bytes" && parts.size() > 2) {
      state.budget.max_bytes_materialized =
          static_cast<size_t>(std::strtoull(parts[2].c_str(), nullptr, 10));
    } else if (sub != "show") {
      std::printf("usage: \\budget deadline <sec> | rows <n> | bytes <n> | "
                  "off | show\n");
      return;
    }
    std::printf("budget: deadline %.3gs, rows %zu, bytes %zu (0 = "
                "unlimited)\n",
                state.budget.deadline_seconds,
                state.budget.max_rows_touched,
                state.budget.max_bytes_materialized);
  } else if (cmd == "\\cache") {
    const std::string sub = parts.size() > 1 ? parts[1] : "stats";
    if (sub == "clear") {
      state.service->ClearCache();
      std::printf("plan cache cleared\n");
    } else {
      examples::PrintCacheStats(state.service->cache_stats());
      examples::PrintGovernanceStats(state.service->governance_stats());
    }
  } else if (cmd == "\\metrics") {
    // The same JSON document the server exposes on /statusz, so in-process
    // sessions read exactly what an operator scraping the server would.
    std::printf("%s\n",
                service::StatuszJson(*state.service, &state.registry).c_str());
  } else if (cmd == "\\wal") {
    const durability::WalStats w = state.service->wal_stats();
    if (!w.enabled) {
      std::printf("durability off (start with --data-dir <dir>)\n");
      return;
    }
    std::printf("wal: %s (fsync=%s)\n", w.dir.c_str(), w.fsync_policy);
    std::printf("  last lsn %llu, %llu append(s) / %llu byte(s), "
                "%llu fsync(s), %zu segment(s)\n",
                static_cast<unsigned long long>(w.last_lsn),
                static_cast<unsigned long long>(w.appends),
                static_cast<unsigned long long>(w.appended_bytes),
                static_cast<unsigned long long>(w.fsyncs), w.segments);
    std::printf("  snapshots: %llu written, last at lsn %llu, "
                "%llu record(s) since\n",
                static_cast<unsigned long long>(w.snapshots_written),
                static_cast<unsigned long long>(w.last_snapshot_lsn),
                static_cast<unsigned long long>(w.records_since_snapshot));
    const durability::RecoveryInfo& rec = w.recovery;
    if (rec.performed) {
      std::printf("  recovery: %llu replayed, %llu skipped, %.3fs%s%s\n",
                  static_cast<unsigned long long>(rec.records_replayed),
                  static_cast<unsigned long long>(rec.records_skipped),
                  rec.seconds,
                  rec.snapshot_loaded ? ", from snapshot" : "",
                  rec.tail_truncated ? ", torn tail truncated" : "");
    } else {
      std::printf("  recovery: fresh data dir (nothing to replay)\n");
    }
  } else if (cmd == "\\explain" && parts.size() > 1) {
    const std::string query = line.substr(line.find(' ') + 1);
    auto db = state.service->EffectiveDatabase(state.scenario);
    if (!db.ok()) {
      std::printf("error: %s\n", db.status().ToString().c_str());
      return;
    }
    whatif::WhatIfEngine engine(db->get(), state.service->graph(),
                                state.options);
    auto plan = engine.ExplainSql(query);
    if (plan.ok()) {
      std::printf("%s", plan->c_str());
    } else {
      std::printf("error: %s\n", plan.status().ToString().c_str());
    }
  } else {
    std::printf(
        "commands: \\tables \\schema <rel> \\graph \\dot "
        "\\explain <what-if> \\estimator f|t \\mode graph|nb|indep "
        "\\sample <n> \\scenario list|new|use|drop|apply "
        "\\budget deadline|rows|bytes|off|show "
        "\\cache stats|clear \\metrics \\wal stats \\quit\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  ShellState state;
  state.options.estimator = learn::EstimatorKind::kFrequency;

  std::string dataset = "german-syn-20k";
  size_t threads = 0;
  std::string data_dir;
  Database csv_db;
  bool loaded_csv = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--csv", 5) == 0 && i + 1 < argc) {
      // --csv path=Relation
      const std::string spec = argv[++i];
      const size_t eq = spec.find('=');
      const std::string path = spec.substr(0, eq);
      const std::string relation =
          eq == std::string::npos ? "Data" : spec.substr(eq + 1);
      auto table = ReadCsvFile(path, relation, {});
      if (!table.ok()) {
        std::printf("cannot load %s: %s\n", path.c_str(),
                    table.status().ToString().c_str());
        return 1;
      }
      if (!csv_db.AddTable(std::move(table).value()).ok()) return 1;
      loaded_csv = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--data-dir") == 0 && i + 1 < argc) {
      data_dir = argv[++i];
    } else if (argv[i][0] != '-') {
      dataset = argv[i];
    }
  }

  service::ServiceOptions service_options;
  service_options.num_threads = threads;
  service_options.whatif.num_threads = threads;
  service_options.metrics = &state.registry;
  service_options.data_dir = data_dir;

  if (!loaded_csv) {
    auto ds = data::MakeByName(dataset, /*scale=*/0.5);
    if (!ds.ok()) {
      std::printf("%s\n", ds.status().ToString().c_str());
      return 1;
    }
    state.service = std::make_unique<service::ScenarioService>(
        std::move(ds->db), std::move(ds->graph), service_options);
    std::printf("loaded %s: %zu rows\n", dataset.c_str(),
                state.service->EffectiveDatabase("main")
                    .value()
                    ->TotalRows());
  } else {
    state.service = std::make_unique<service::ScenarioService>(
        std::move(csv_db), service_options);
    std::printf("loaded CSV relations (no causal graph: engine runs in "
                "no-background mode)\n");
  }
  state.options.num_threads = threads;

  if (!state.service->recovery_status().ok()) {
    std::printf("recovery failed: %s\n",
                state.service->recovery_status().ToString().c_str());
    return 1;
  }
  if (state.service->durable()) {
    const durability::RecoveryInfo& rec = state.service->recovery_info();
    std::printf("durable sessions: %s (%llu record(s) replayed in %.3fs)\n",
                data_dir.c_str(),
                static_cast<unsigned long long>(rec.records_replayed),
                rec.seconds);
  }

  std::printf("HypeR shell. \\quit to exit, \\help for commands.\n");
  std::string line;
  while (true) {
    std::printf("hyper:%s> ", state.scenario.c_str());
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    std::string trimmed(Trim(line));
    if (trimmed.empty()) continue;
    if (trimmed == "\\quit" || trimmed == "\\q") break;
    if (!trimmed.empty() && trimmed.back() == ';') trimmed.pop_back();
    if (trimmed[0] == '\\') {
      RunCommand(state, trimmed);
    } else {
      RunStatement(state, trimmed);
    }
  }
  return 0;
}
