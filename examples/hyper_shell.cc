// Interactive HypeR shell: load a built-in dataset (or your own CSVs) and
// run what-if / how-to / select statements against it.
//
//   ./build/examples/hyper_shell                 # german-syn-20k by default
//   ./build/examples/hyper_shell student-syn
//   ./build/examples/hyper_shell --csv products.csv=Product
//                                --csv reviews.csv=Review   (repeatable)
//
// Shell commands:
//   \tables               list relations
//   \schema <relation>    show a schema
//   \graph                show the causal graph (when available)
//   \estimator f|t        frequency / forest (tree) estimator
//   \mode graph|nb|indep  backdoor mode
//   \sample <n>           HypeR-sampled training cap (0 = off)
//   \quit
// Anything else is parsed as a HypeR statement (end with ';' or newline).

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "common/strings.h"
#include "data/datasets.h"
#include "howto/engine.h"
#include "relational/select.h"
#include "sql/parser.h"
#include "storage/csv.h"
#include "whatif/engine.h"

using namespace hyper;

namespace {

void PrintResult(const whatif::WhatIfResult& result) {
  std::printf("value: %.6g\n", result.value);
  std::printf("  view rows %zu | updated %zu | blocks %zu | patterns %zu\n",
              result.view_rows, result.updated_rows, result.num_blocks,
              result.num_patterns);
  if (!result.backdoor.empty()) {
    std::printf("  adjustment set: {");
    for (size_t i = 0; i < result.backdoor.size(); ++i) {
      std::printf("%s%s", i ? ", " : "", result.backdoor[i].c_str());
    }
    std::printf("}\n");
  }
  std::printf("  %.3fs total (%.3fs training)\n", result.total_seconds,
              result.train_seconds);
}

void PrintHowTo(const howto::HowToResult& result) {
  std::printf("plan: %s\n", result.PlanToString().c_str());
  std::printf("  objective %.6g (baseline %.6g), %zu candidates, %s solver\n",
              result.objective_value, result.baseline_value,
              result.candidates_evaluated,
              result.used_mck ? "MCK" : "branch&bound");
}

struct ShellState {
  Database db;
  causal::CausalGraph graph;
  bool has_graph = false;
  whatif::WhatIfOptions options;
};

void RunStatement(ShellState& state, const std::string& text) {
  auto stmt = sql::ParseSql(text);
  if (!stmt.ok()) {
    std::printf("error: %s\n", stmt.status().ToString().c_str());
    return;
  }
  const causal::CausalGraph* graph = state.has_graph ? &state.graph : nullptr;
  if (stmt->whatif != nullptr) {
    whatif::WhatIfEngine engine(&state.db, graph, state.options);
    auto result = engine.Run(*stmt->whatif);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      return;
    }
    PrintResult(*result);
  } else if (stmt->howto != nullptr) {
    howto::HowToOptions options;
    options.whatif = state.options;
    howto::HowToEngine engine(&state.db, graph, options);
    auto result = engine.Run(*stmt->howto);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      return;
    }
    PrintHowTo(*result);
  } else if (stmt->select != nullptr) {
    auto table = relational::ExecuteSelect(state.db, *stmt->select);
    if (!table.ok()) {
      std::printf("error: %s\n", table.status().ToString().c_str());
      return;
    }
    std::printf("%s", table->ToString(20).c_str());
  }
}

void RunCommand(ShellState& state, const std::string& line) {
  const std::vector<std::string> parts = Split(line, ' ');
  const std::string& cmd = parts[0];
  if (cmd == "\\tables") {
    for (const std::string& name : state.db.TableNames()) {
      std::printf("%s (%zu rows)\n", name.c_str(),
                  state.db.GetTable(name).value()->num_rows());
    }
  } else if (cmd == "\\schema" && parts.size() > 1) {
    auto table = state.db.GetTable(parts[1]);
    if (table.ok()) {
      std::printf("%s\n", (*table)->schema().ToString().c_str());
    } else {
      std::printf("error: %s\n", table.status().ToString().c_str());
    }
  } else if (cmd == "\\graph") {
    std::printf("%s\n", state.has_graph ? state.graph.ToString().c_str()
                                        : "(no causal graph loaded)");
  } else if (cmd == "\\dot") {
    std::printf("%s", state.has_graph ? state.graph.ToDot().c_str()
                                      : "(no causal graph loaded)\n");
  } else if (cmd == "\\estimator" && parts.size() > 1) {
    state.options.estimator = parts[1][0] == 'f'
                                  ? learn::EstimatorKind::kFrequency
                                  : learn::EstimatorKind::kForest;
    std::printf("estimator: %s\n",
                learn::EstimatorKindName(state.options.estimator));
  } else if (cmd == "\\mode" && parts.size() > 1) {
    if (parts[1] == "graph") {
      state.options.backdoor = whatif::BackdoorMode::kGraph;
    } else if (parts[1] == "nb") {
      state.options.backdoor = whatif::BackdoorMode::kAllAttributes;
    } else if (parts[1] == "indep") {
      state.options.backdoor = whatif::BackdoorMode::kUpdateOnly;
    }
    std::printf("mode: %s\n", BackdoorModeName(state.options.backdoor));
  } else if (cmd == "\\sample" && parts.size() > 1) {
    state.options.sample_size =
        static_cast<size_t>(std::strtoull(parts[1].c_str(), nullptr, 10));
    std::printf("sample: %zu\n", state.options.sample_size);
  } else if (cmd == "\\explain" && parts.size() > 1) {
    const std::string query = line.substr(line.find(' ') + 1);
    const causal::CausalGraph* graph =
        state.has_graph ? &state.graph : nullptr;
    whatif::WhatIfEngine engine(&state.db, graph, state.options);
    auto plan = engine.ExplainSql(query);
    if (plan.ok()) {
      std::printf("%s", plan->c_str());
    } else {
      std::printf("error: %s\n", plan.status().ToString().c_str());
    }
  } else {
    std::printf(
        "commands: \\tables \\schema <rel> \\graph \\dot "
        "\\explain <what-if> \\estimator f|t \\mode graph|nb|indep "
        "\\sample <n> \\quit\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  ShellState state;
  state.options.estimator = learn::EstimatorKind::kFrequency;

  std::string dataset = "german-syn-20k";
  bool loaded_csv = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--csv", 5) == 0 && i + 1 < argc) {
      // --csv path=Relation
      const std::string spec = argv[++i];
      const size_t eq = spec.find('=');
      const std::string path = spec.substr(0, eq);
      const std::string relation =
          eq == std::string::npos ? "Data" : spec.substr(eq + 1);
      auto table = ReadCsvFile(path, relation, {});
      if (!table.ok()) {
        std::printf("cannot load %s: %s\n", path.c_str(),
                    table.status().ToString().c_str());
        return 1;
      }
      if (!state.db.AddTable(std::move(table).value()).ok()) return 1;
      loaded_csv = true;
    } else if (argv[i][0] != '-') {
      dataset = argv[i];
    }
  }
  if (!loaded_csv) {
    auto ds = data::MakeByName(dataset, /*scale=*/0.5);
    if (!ds.ok()) {
      std::printf("%s\n", ds.status().ToString().c_str());
      return 1;
    }
    state.db = std::move(ds->db);
    state.graph = std::move(ds->graph);
    state.has_graph = true;
    std::printf("loaded %s: %zu rows\n", dataset.c_str(),
                state.db.TotalRows());
  } else {
    std::printf("loaded %zu relation(s) from CSV (no causal graph: engine "
                "runs in no-background mode)\n",
                state.db.num_tables());
  }

  std::printf("HypeR shell. \\quit to exit, \\help for commands.\n");
  std::string line;
  while (true) {
    std::printf("hyper> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    std::string trimmed(Trim(line));
    if (trimmed.empty()) continue;
    if (trimmed == "\\quit" || trimmed == "\\q") break;
    if (!trimmed.empty() && trimmed.back() == ';') trimmed.pop_back();
    if (trimmed[0] == '\\') {
      RunCommand(state, trimmed);
    } else {
      RunStatement(state, trimmed);
    }
  }
  return 0;
}
