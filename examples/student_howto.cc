// How-to analysis on the student dataset: which intervention lifts average
// grades the most, under different budgets — plus the lexicographic
// multi-objective extension (§4.3, Example 11).

#include <cstdio>

#include "data/datasets.h"
#include "howto/engine.h"
#include "common/strings.h"
#include "sql/parser.h"

using namespace hyper;

int main() {
  data::StudentOptions generator;
  generator.students = 1500;
  auto ds = data::MakeStudentSyn(generator);
  if (!ds.ok()) {
    std::printf("dataset error: %s\n", ds.status().ToString().c_str());
    return 1;
  }
  std::printf("students: %zu, course enrollments: %zu\n",
              ds->db.GetTable("Student").value()->num_rows(),
              ds->db.GetTable("Participation").value()->num_rows());

  howto::HowToOptions options;
  options.whatif.estimator = learn::EstimatorKind::kFrequency;
  howto::HowToEngine engine(&ds->flat, &ds->graph, options);

  // 1. Unconstrained: push the strongest levers.
  {
    auto plan = engine.RunSql(
        "Use FlatParticipation HowToUpdate Assignment, Discussion "
        "ToMaximize Avg(Post(Grade))");
    if (!plan.ok()) {
      std::printf("error: %s\n", plan.status().ToString().c_str());
      return 1;
    }
    std::printf("\nunconstrained plan: %s\n", plan->PlanToString().c_str());
    std::printf("expected avg grade: %.2f (baseline %.2f)\n",
                plan->objective_value, plan->baseline_value);
  }

  // 2. Range-limited: assignments can only be nudged, not maxed.
  {
    auto plan = engine.RunSql(
        "Use FlatParticipation HowToUpdate Assignment "
        "Limit 25 <= Post(Assignment) <= 75 "
        "ToMaximize Avg(Post(Grade))");
    if (plan.ok()) {
      std::printf("\nrange-limited plan: %s -> %.2f\n",
                  plan->PlanToString().c_str(), plan->objective_value);
    }
  }

  // 3. Lexicographic: first maximize grades, then (at that grade level)
  //    maximize announcements read.
  {
    auto primary = sql::ParseSql(
        "Use FlatParticipation HowToUpdate Assignment, Announcements "
        "ToMaximize Avg(Post(Grade))");
    auto secondary = sql::ParseSql(
        "Use FlatParticipation HowToUpdate Assignment, Announcements "
        "ToMaximize Avg(Post(Announcements))");
    if (primary.ok() && secondary.ok()) {
      auto plan = engine.RunLexicographic(
          {primary->howto.get(), secondary->howto.get()});
      if (plan.ok()) {
        std::printf("\nlexicographic plan (grades first, announcements "
                    "second): %s\n",
                    plan->PlanToString().c_str());
        std::printf("primary objective preserved at %.2f\n",
                    plan->objective_value);
      } else {
        std::printf("\nlexicographic error: %s\n",
                    plan.status().ToString().c_str());
      }
    }
  }

  // 4. Per-attribute "budget of one": scan single-attribute plans.
  {
    std::printf("\nbest single-attribute intervention:\n");
    double best = -1e18;
    std::string best_plan;
    for (const char* attr : {"Attendance", "Assignment", "Discussion",
                             "Announcements", "HandRaised"}) {
      const std::string query =
          StrFormat("Use FlatParticipation HowToUpdate %s "
                    "ToMaximize Avg(Post(Grade))",
                    attr);
      auto plan = engine.RunSql(query);
      if (!plan.ok()) continue;
      std::printf("  %-14s -> %.2f\n", attr, plan->objective_value);
      if (plan->objective_value > best) {
        best = plan->objective_value;
        best_plan = plan->PlanToString();
      }
    }
    std::printf("winner: %s (expected avg grade %.2f)\n", best_plan.c_str(),
                best);
  }
  return 0;
}
