// Pricing analysis on the synthetic Amazon catalog (two relations joined in
// the Use view, as in the paper's Figure 4): per-brand repricing what-ifs
// with a post-update sentiment filter, and a multi-attribute update
// (price and color together).

#include <cstdio>

#include "data/datasets.h"
#include "whatif/engine.h"

using namespace hyper;

namespace {

const char* kView =
    "Use V As (Select T1.PID, T1.Category, T1.Brand, T1.Color, T1.Price, "
    "T1.Quality, Avg(T2.Sentiment) As Senti, Avg(T2.Rating) As Rtng "
    "From Product As T1, Review As T2 Where T1.PID = T2.PID "
    "Group By T1.PID, T1.Category, T1.Brand, T1.Color, T1.Price, "
    "T1.Quality) ";

}  // namespace

int main() {
  data::AmazonOptions generator;
  generator.products = 2000;
  generator.reviews_per_product = 12;
  auto ds = data::MakeAmazonSyn(generator);
  if (!ds.ok()) {
    std::printf("dataset error: %s\n", ds.status().ToString().c_str());
    return 1;
  }
  std::printf("Amazon catalog: %zu products, %zu reviews\n",
              ds->db.GetTable("Product").value()->num_rows(),
              ds->db.GetTable("Review").value()->num_rows());

  whatif::WhatIfOptions options;
  options.estimator = learn::EstimatorKind::kForest;
  options.forest.num_trees = 16;
  whatif::WhatIfEngine engine(&ds->db, &ds->graph, options);

  // 1. Brand-level repricing: 15% cut per brand, effect on its avg rating.
  std::printf("\n15%% price cut per laptop brand -> expected avg rating:\n");
  for (const char* brand : {"Apple", "Dell", "Asus", "HP"}) {
    const std::string query =
        std::string(kView) + "When Brand = '" + brand +
        "' Update(Price) = 0.85 * Pre(Price) Output Avg(Post(Rtng)) "
        "For Pre(Brand) = '" + brand + "'";
    auto result = engine.RunSql(query);
    if (!result.ok()) {
      std::printf("  %-8s error: %s\n", brand,
                  result.status().ToString().c_str());
      continue;
    }
    std::printf("  %-8s %.3f (over %zu products)\n", brand, result->value,
                result->updated_rows);
  }

  // 2. The Figure 4 sentiment filter: average rating of repriced Asus
  //    laptops among those whose post-update sentiment stays positive.
  {
    const std::string query =
        std::string(kView) +
        "When Brand = 'Asus' Update(Price) = 1.1 * Pre(Price) "
        "Output Avg(Post(Rtng)) "
        "For Pre(Category) = 'Laptop' And Pre(Brand) = 'Asus' "
        "And Post(Senti) > 0";
    auto result = engine.RunSql(query);
    if (result.ok()) {
      std::printf(
          "\nFigure 4 query (10%% Asus increase, Post(Senti) > 0 filter): "
          "avg rating %.3f\n",
          result->value);
    } else {
      std::printf("\nFigure 4 query error: %s\n",
                  result.status().ToString().c_str());
    }
  }

  // 3. Multi-attribute update: cut price AND recolor to red (the two
  //    attributes are causally unrelated, as §3.1 requires).
  {
    const std::string query =
        std::string(kView) +
        "When Category = 'DSLR Camera' "
        "Update(Price) = 0.9 * Pre(Price) And Update(Color) = 'Red' "
        "Output Avg(Post(Senti)) For Pre(Category) = 'DSLR Camera'";
    auto result = engine.RunSql(query);
    if (result.ok()) {
      std::printf(
          "\ncameras repriced -10%% and recolored red: expected avg "
          "sentiment %.3f\n",
          result->value);
    } else {
      std::printf("\nmulti-update error: %s\n",
                  result.status().ToString().c_str());
    }
  }
  return 0;
}
