// Reproduces the §5.4 how-to findings:
//   German-Syn: maximizing the share of good-credit individuals over
//   {Status, Savings, Housing, CreditAmount} under a global update budget —
//   HypeR's chosen plan matches Opt-HowTo's exhaustive ground-truth search
//   (the paper: updating account status + housing suffices).
//   Student-Syn: maximizing average grades with a budget of one attribute —
//   both pick Attendance.

#include <cstdio>

#include "baselines/opt_howto.h"
#include "bench/bench_util.h"
#include "data/datasets.h"
#include "howto/engine.h"
#include "sql/parser.h"

namespace hyper {
namespace {

void ComparePlans(const char* title, const howto::HowToResult& hyper,
                  const baselines::OptHowToResult& exact) {
  bench::Banner(title);
  std::printf("HypeR plan:     %s\n", hyper.PlanToString().c_str());
  std::printf("Opt-HowTo plan: {");
  for (size_t a = 0; a < exact.plan.size(); ++a) {
    if (a > 0) std::printf("; ");
    std::printf("%s", exact.plan[a].ToString().c_str());
  }
  std::printf("}\n");
  std::printf("HypeR objective (estimated): %.4f   baseline: %.4f\n",
              hyper.objective_value, hyper.baseline_value);
  std::printf("Opt-HowTo objective (ground truth): %.4f over %zu "
              "combinations\n",
              exact.objective_value, exact.combinations_evaluated);
  bool match = hyper.plan.size() == exact.plan.size();
  for (size_t a = 0; match && a < hyper.plan.size(); ++a) {
    if (hyper.plan[a].changed != exact.plan[a].changed) match = false;
    if (hyper.plan[a].changed && exact.plan[a].changed &&
        !hyper.plan[a].update.constant.Equals(exact.plan[a].update.constant)) {
      match = false;
    }
  }
  std::printf("plans match: %s\n", match ? "YES" : "no");
}

}  // namespace
}  // namespace hyper

int main(int argc, char** argv) {
  using namespace hyper;
  const bench::BenchFlags flags = bench::ParseFlags(argc, argv);

  // ------------------------------------------------------------ German-Syn
  {
    auto ds = bench::Unwrap(
        data::MakeByName("german-syn-20k", flags.ScaleOr(0.4), flags.seed),
        "german-syn");
    const char* query =
        "Use German HowToUpdate Status, Savings, Housing "
        "ToMaximize Avg(Post(Credit))";
    howto::HowToOptions options;
    options.whatif.estimator = learn::EstimatorKind::kFrequency;
    // A global L1 budget makes partial plans optimal (the §5.4 setting
    // where a subset of attributes suffices).
    options.global_l1_budget = 2.2;
    howto::HowToEngine engine(&ds.db, &ds.graph, options);
    auto stmt = bench::Unwrap(sql::ParseSql(query), "parse");
    auto hyper = bench::Unwrap(engine.Run(*stmt.howto), "HypeR how-to");

    auto candidates =
        bench::Unwrap(engine.EnumerateCandidates(*stmt.howto), "candidates");
    // Budget-filter the exhaustive search the same way (OptHowTo has no
    // budget row: emulate by dropping joint plans over budget via scorer
    // returning a heavily penalized value).
    auto truth =
        baselines::MakeGroundTruthScorer(&ds.db, &ds.scm, stmt.howto.get());
    const double budget = options.global_l1_budget;
    const sql::HowToStmt* stmt_ptr = stmt.howto.get();
    const data::Dataset* ds_ptr = &ds;
    auto budgeted_scorer =
        [truth, budget, stmt_ptr, ds_ptr](
            const std::vector<std::optional<whatif::UpdateSpec>>& plan)
        -> Result<double> {
      // Recompute the normalized L1 cost of the joint plan.
      const Table& t = *ds_ptr->db.GetTable("German").value();
      double cost = 0.0;
      for (const auto& update : plan) {
        if (!update.has_value()) continue;
        const size_t col = t.schema().IndexOf(update->attribute).value();
        double total = 0;
        for (size_t r = 0; r < t.num_rows(); ++r) {
          total += std::fabs(update->constant.AsDouble().value() -
                             t.At(r, col).AsDouble().value());
        }
        cost += total / static_cast<double>(t.num_rows());
      }
      if (cost > budget) return -1e9;  // infeasible joint plan
      return truth(plan);
    };
    auto exact = bench::Unwrap(
        baselines::OptHowTo(*stmt.howto, candidates, budgeted_scorer),
        "OptHowTo");
    ComparePlans(
        "§5.4 German-Syn: maximize P(good credit), global L1 budget 2.2",
        hyper, exact);
  }

  // ----------------------------------------------------------- Student-Syn
  {
    data::StudentOptions opt;
    opt.students = static_cast<size_t>(2000 * flags.ScaleOr(0.4));
    opt.seed = flags.seed;
    auto ds = bench::Unwrap(data::MakeStudentSyn(opt), "student-syn");

    // Budget of one attribute: run one single-attribute how-to per
    // candidate attribute and keep the best (HypeR side), versus the
    // exhaustive ground-truth scan.
    const char* attrs[] = {"Attendance", "Assignment", "Discussion",
                           "Announcements", "HandRaised"};
    bench::Banner(
        "§5.4 Student-Syn: maximize Avg(Grade), budget = one attribute");
    bench::TablePrinter table(
        {"attribute", "HypeR est.", "ground truth"});
    table.PrintHeader();
    std::string hyper_best_attr, truth_best_attr;
    double hyper_best = -1e18, truth_best = -1e18;
    for (const char* attr : attrs) {
      const std::string query =
          StrFormat("Use FlatParticipation HowToUpdate %s "
                    "ToMaximize Avg(Post(Grade))",
                    attr);
      howto::HowToOptions options;
      options.whatif.estimator = learn::EstimatorKind::kFrequency;
      howto::HowToEngine engine(&ds.flat, &ds.graph, options);
      auto stmt = bench::Unwrap(sql::ParseSql(query), "parse");
      auto hyper = bench::Unwrap(engine.Run(*stmt.howto), "how-to");

      auto candidates = bench::Unwrap(
          engine.EnumerateCandidates(*stmt.howto), "candidates");
      auto scorer = baselines::MakeGroundTruthScorer(&ds.flat, &ds.scm,
                                                     stmt.howto.get());
      auto exact = bench::Unwrap(
          baselines::OptHowTo(*stmt.howto, candidates, scorer), "OptHowTo");

      table.PrintRow({attr, bench::Fmt(hyper.objective_value, "%.3f"),
                      bench::Fmt(exact.objective_value, "%.3f")});
      if (hyper.objective_value > hyper_best) {
        hyper_best = hyper.objective_value;
        hyper_best_attr = attr;
      }
      if (exact.objective_value > truth_best) {
        truth_best = exact.objective_value;
        truth_best_attr = attr;
      }
    }
    std::printf("HypeR picks:        %s\n", hyper_best_attr.c_str());
    std::printf("ground truth picks: %s\n", truth_best_attr.c_str());
    std::printf("expected shape: both pick Attendance (§5.4)\n");
  }
  return 0;
}
