// Reproduces Figure 9: how-to query quality and running time as a function
// of the number of discretization buckets, on German-Syn with a continuous
// CreditAmount attribute.
//
// Shape to check against the paper:
//   (a) solution quality (ratio to the ground-truth optimum) improves with
//       more buckets and is within ~10% of optimal from ~4 buckets on;
//       HypeR's solution tracks Opt-discrete (exhaustive search over the
//       same discretized space).
//   (b) Opt-discrete's time grows much faster with buckets than HypeR's
//       (cross-product vs IP).

#include <cstdio>

#include "baselines/opt_howto.h"
#include "bench/bench_util.h"
#include "data/datasets.h"
#include "howto/engine.h"
#include "sql/parser.h"

namespace hyper {
namespace {

constexpr const char* kQuery =
    "Use German HowToUpdate CreditAmount, Status "
    "ToMaximize Avg(Post(Credit))";

}  // namespace
}  // namespace hyper

int main(int argc, char** argv) {
  using namespace hyper;
  const bench::BenchFlags flags = bench::ParseFlags(argc, argv);

  data::GermanOptions opt;
  opt.rows = static_cast<size_t>(20000 * flags.ScaleOr(0.4));
  opt.seed = flags.seed;
  opt.continuous_amount = true;
  auto ds = bench::Unwrap(data::MakeGermanSyn(opt), "german-syn continuous");
  std::printf("German-Syn (continuous CreditAmount) rows: %zu\n",
              ds.db.TotalRows());

  auto stmt = bench::Unwrap(sql::ParseSql(kQuery), "parse");

  // Ground-truth optimum over a fine grid (the paper's OptHowTo reference).
  double optimum = 0.0;
  {
    howto::HowToOptions fine;
    fine.whatif.estimator = learn::EstimatorKind::kFrequency;
    fine.num_buckets = 24;
    howto::HowToEngine engine(&ds.db, &ds.graph, fine);
    auto candidates =
        bench::Unwrap(engine.EnumerateCandidates(*stmt.howto), "candidates");
    auto scorer =
        baselines::MakeGroundTruthScorer(&ds.db, &ds.scm, stmt.howto.get());
    auto exact = bench::Unwrap(
        baselines::OptHowTo(*stmt.howto, candidates, scorer), "OptHowTo");
    optimum = exact.objective_value;
    std::printf("ground-truth optimum (24-bucket grid): %.4f\n\n", optimum);
  }

  bench::Banner("Figure 9: quality and time vs number of buckets");
  bench::TablePrinter table({"buckets", "HypeR-qual", "OptDisc-qual",
                             "HypeR(s)", "OptDisc(s)"});
  table.PrintHeader();

  for (size_t buckets : {1u, 2u, 4u, 6u, 8u, 10u}) {
    howto::HowToOptions options;
    options.whatif.estimator = learn::EstimatorKind::kFrequency;
    options.whatif.frequency_smoothing = 10.0;
    options.num_buckets = buckets;
    howto::HowToEngine engine(&ds.db, &ds.graph, options);

    Stopwatch hyper_timer;
    auto hyper = bench::Unwrap(engine.Run(*stmt.howto), "HypeR how-to");
    const double hyper_seconds = hyper_timer.ElapsedSeconds();
    // Evaluate HypeR's chosen plan against the ground truth.
    std::vector<std::optional<whatif::UpdateSpec>> plan;
    for (const auto& choice : hyper.plan) {
      if (choice.changed) {
        plan.emplace_back(choice.update);
      } else {
        plan.emplace_back(std::nullopt);
      }
    }
    auto scorer =
        baselines::MakeGroundTruthScorer(&ds.db, &ds.scm, stmt.howto.get());
    const double hyper_truth = bench::Unwrap(scorer(plan), "score plan");

    // Opt-discrete: exhaustive ground-truth search over the same buckets.
    auto candidates =
        bench::Unwrap(engine.EnumerateCandidates(*stmt.howto), "candidates");
    Stopwatch opt_timer;
    auto opt_disc = bench::Unwrap(
        baselines::OptHowTo(*stmt.howto, candidates, scorer), "OptDiscrete");
    const double opt_seconds = opt_timer.ElapsedSeconds();

    table.PrintRow({std::to_string(buckets),
                    bench::Fmt(hyper_truth / optimum, "%.4f"),
                    bench::Fmt(opt_disc.objective_value / optimum, "%.4f"),
                    bench::Fmt(hyper_seconds, "%.3f"),
                    bench::Fmt(opt_seconds, "%.3f")});
  }
  std::printf(
      "\nexpected shape: quality -> 1 with more buckets (within 10%% from "
      "~4); Opt-discrete time grows faster than HypeR's\n");
  return 0;
}
