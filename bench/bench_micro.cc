// Component-level micro-benchmarks (google-benchmark): relational executor,
// learners, causal machinery, and the IP solvers. Not tied to a paper
// figure; used to track regressions in the substrates.

#include <benchmark/benchmark.h>

#include "causal/graph.h"
#include "causal/ground.h"
#include "data/datasets.h"
#include "learn/forest.h"
#include "learn/frequency.h"
#include "opt/lp.h"
#include "opt/mck.h"
#include "opt/milp.h"
#include "relational/select.h"
#include "sql/parser.h"
#include "whatif/engine.h"

namespace hyper {
namespace {

const data::Dataset& AmazonDataset() {
  static const data::Dataset* ds = [] {
    data::AmazonOptions opt;
    opt.products = 1000;
    opt.reviews_per_product = 10;
    return new data::Dataset(std::move(data::MakeAmazonSyn(opt).value()));
  }();
  return *ds;
}

const data::Dataset& GermanDataset() {
  static const data::Dataset* ds = [] {
    data::GermanOptions opt;
    opt.rows = 20000;
    return new data::Dataset(std::move(data::MakeGermanSyn(opt).value()));
  }();
  return *ds;
}

void BM_ParseWhatIf(benchmark::State& state) {
  const std::string query =
      "Use RelevantView As (Select T1.PID, T1.Category, T1.Price, T1.Brand, "
      "Avg(Sentiment) As Senti, Avg(T2.Rating) As Rtng "
      "From Product As T1, Review As T2 Where T1.PID = T2.PID "
      "Group By T1.PID, T1.Category, T1.Price, T1.Brand) "
      "When Brand = 'Asus' Update(Price) = 1.1 * Pre(Price) "
      "Output Avg(Post(Rtng)) For Pre(Category) = 'Laptop' "
      "And Post(Senti) > 0.5";
  for (auto _ : state) {
    benchmark::DoNotOptimize(sql::ParseSql(query));
  }
}
BENCHMARK(BM_ParseWhatIf);

void BM_HashJoinGroupBy(benchmark::State& state) {
  const data::Dataset& ds = AmazonDataset();
  auto stmt = sql::ParseSql(
                  "Select T1.PID, T1.Price, Avg(T2.Rating) As Rtng "
                  "From Product As T1, Review As T2 Where T1.PID = T2.PID "
                  "Group By T1.PID, T1.Price")
                  .value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(relational::ExecuteSelect(ds.db, *stmt.select));
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(ds.db.GetTable("Review").value()->num_rows()));
}
BENCHMARK(BM_HashJoinGroupBy);

void BM_ForestTrain(benchmark::State& state) {
  const data::Dataset& ds = GermanDataset();
  const Table& t = *ds.db.GetTable("German").value();
  auto encoder =
      learn::FeatureEncoder::Fit(t, {"Status", "Age", "Sex"}).value();
  learn::Matrix x = encoder.EncodeAll(t).value();
  std::vector<double> y = learn::ExtractTarget(t, "Credit").value();
  learn::ForestOptions options;
  options.num_trees = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    learn::RandomForestRegressor forest(options);
    benchmark::DoNotOptimize(forest.Fit(x, y));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(x.size()));
}
BENCHMARK(BM_ForestTrain)->Arg(4)->Arg(16);

void BM_FrequencyFit(benchmark::State& state) {
  const data::Dataset& ds = GermanDataset();
  const Table& t = *ds.db.GetTable("German").value();
  auto encoder =
      learn::FeatureEncoder::Fit(t, {"Status", "Age", "Sex"}).value();
  learn::Matrix x = encoder.EncodeAll(t).value();
  std::vector<double> y = learn::ExtractTarget(t, "Credit").value();
  for (auto _ : state) {
    learn::FrequencyEstimator estimator;
    benchmark::DoNotOptimize(estimator.Fit(x, y));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(x.size()));
}
BENCHMARK(BM_FrequencyFit);

void BM_BlockDecomposition(benchmark::State& state) {
  const data::Dataset& ds = AmazonDataset();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        causal::TupleComponents::Build(ds.graph, ds.db));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(ds.db.TotalRows()));
}
BENCHMARK(BM_BlockDecomposition);

void BM_MinimalBackdoor(benchmark::State& state) {
  // A layered DAG with many candidate adjusters.
  causal::CausalGraph g;
  for (int i = 0; i < 12; ++i) {
    const std::string c = "C" + std::to_string(i);
    g.AddEdge(c, "B");
    g.AddEdge(c, "Y");
  }
  g.AddEdge("B", "Y");
  for (auto _ : state) {
    benchmark::DoNotOptimize(causal::MinimalBackdoorSet(g, "B", "Y"));
  }
}
BENCHMARK(BM_MinimalBackdoor);

void BM_SimplexLp(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(7);
  opt::LpProblem p;
  for (int j = 0; j < n; ++j) p.objective.push_back(rng.Uniform(0, 1));
  for (int i = 0; i < n / 2; ++i) {
    std::vector<double> row(n);
    for (int j = 0; j < n; ++j) row[j] = rng.Uniform(0, 1);
    p.AddRow(std::move(row), 1.0 + rng.Uniform());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt::SolveLp(p));
  }
}
BENCHMARK(BM_SimplexLp)->Arg(16)->Arg(64);

void BM_MckSolve(benchmark::State& state) {
  Rng rng(11);
  std::vector<opt::MckGroup> groups(8);
  for (auto& g : groups) {
    for (int i = 0; i < 10; ++i) {
      g.values.push_back(rng.Uniform(-1, 5));
      g.costs.push_back(rng.Uniform(0, 2));
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt::SolveMck(groups, 6.0));
  }
}
BENCHMARK(BM_MckSolve);

void BM_WhatIfEndToEnd(benchmark::State& state) {
  const data::Dataset& ds = GermanDataset();
  whatif::WhatIfOptions options;
  options.estimator = learn::EstimatorKind::kFrequency;
  whatif::WhatIfEngine engine(&ds.db, &ds.graph, options);
  auto stmt = sql::ParseSql(
                  "Use German Update(Status) = 3 Output Count(Credit = 1)")
                  .value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Run(*stmt.whatif));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(ds.db.TotalRows()));
}
BENCHMARK(BM_WhatIfEndToEnd);

}  // namespace
}  // namespace hyper

BENCHMARK_MAIN();
