// Component-level micro-benchmarks (google-benchmark): relational executor,
// learners, causal machinery, and the IP solvers. Not tied to a paper
// figure; used to track regressions in the substrates.
//
// In addition to the google-benchmark registrations, this binary runs a
// row-store-vs-columnar comparison suite (scan, group-by, predicate
// evaluation, what-if end to end) and emits one JSON record per comparison
// to BENCH_micro.json. `--smoke` skips the google benchmarks and runs the
// comparison suite at a reduced size — the pre-merge gate scripts/check.sh
// uses exactly that mode.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "bench/bench_util.h"
#include "causal/graph.h"
#include "causal/ground.h"
#include "common/simd.h"
#include "common/thread_pool.h"
#include "data/datasets.h"
#include "learn/forest.h"
#include "learn/frequency.h"
#include "opt/lp.h"
#include "opt/mck.h"
#include "opt/milp.h"
#include "relational/compiled.h"
#include "relational/eval.h"
#include "relational/select.h"
#include "sql/parser.h"
#include "storage/column.h"
#include "whatif/compile.h"
#include "whatif/engine.h"

namespace hyper {
namespace {

const data::Dataset& AmazonDataset() {
  static const data::Dataset* ds = [] {
    data::AmazonOptions opt;
    opt.products = 1000;
    opt.reviews_per_product = 10;
    return new data::Dataset(std::move(data::MakeAmazonSyn(opt).value()));
  }();
  return *ds;
}

const data::Dataset& GermanDataset() {
  static const data::Dataset* ds = [] {
    data::GermanOptions opt;
    opt.rows = 20000;
    return new data::Dataset(std::move(data::MakeGermanSyn(opt).value()));
  }();
  return *ds;
}

void BM_ParseWhatIf(benchmark::State& state) {
  const std::string query =
      "Use RelevantView As (Select T1.PID, T1.Category, T1.Price, T1.Brand, "
      "Avg(Sentiment) As Senti, Avg(T2.Rating) As Rtng "
      "From Product As T1, Review As T2 Where T1.PID = T2.PID "
      "Group By T1.PID, T1.Category, T1.Price, T1.Brand) "
      "When Brand = 'Asus' Update(Price) = 1.1 * Pre(Price) "
      "Output Avg(Post(Rtng)) For Pre(Category) = 'Laptop' "
      "And Post(Senti) > 0.5";
  for (auto _ : state) {
    benchmark::DoNotOptimize(sql::ParseSql(query));
  }
}
BENCHMARK(BM_ParseWhatIf);

void BM_HashJoinGroupBy(benchmark::State& state) {
  const data::Dataset& ds = AmazonDataset();
  auto stmt = sql::ParseSql(
                  "Select T1.PID, T1.Price, Avg(T2.Rating) As Rtng "
                  "From Product As T1, Review As T2 Where T1.PID = T2.PID "
                  "Group By T1.PID, T1.Price")
                  .value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(relational::ExecuteSelect(ds.db, *stmt.select));
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(ds.db.GetTable("Review").value()->num_rows()));
}
BENCHMARK(BM_HashJoinGroupBy);

void BM_ForestTrain(benchmark::State& state) {
  const data::Dataset& ds = GermanDataset();
  const Table& t = *ds.db.GetTable("German").value();
  auto encoder =
      learn::FeatureEncoder::Fit(t, {"Status", "Age", "Sex"}).value();
  learn::FeatureMatrix x = encoder.EncodeAll(t).value();
  std::vector<double> y = learn::ExtractTarget(t, "Credit").value();
  learn::ForestOptions options;
  options.num_trees = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    learn::RandomForestRegressor forest(options);
    benchmark::DoNotOptimize(forest.Fit(x, y));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(x.num_rows()));
}
BENCHMARK(BM_ForestTrain)->Arg(4)->Arg(16);

void BM_FrequencyFit(benchmark::State& state) {
  const data::Dataset& ds = GermanDataset();
  const Table& t = *ds.db.GetTable("German").value();
  auto encoder =
      learn::FeatureEncoder::Fit(t, {"Status", "Age", "Sex"}).value();
  learn::FeatureMatrix x = encoder.EncodeAll(t).value();
  std::vector<double> y = learn::ExtractTarget(t, "Credit").value();
  for (auto _ : state) {
    learn::FrequencyEstimator estimator;
    benchmark::DoNotOptimize(estimator.Fit(x, y));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(x.num_rows()));
}
BENCHMARK(BM_FrequencyFit);

void BM_BlockDecomposition(benchmark::State& state) {
  const data::Dataset& ds = AmazonDataset();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        causal::TupleComponents::Build(ds.graph, ds.db));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(ds.db.TotalRows()));
}
BENCHMARK(BM_BlockDecomposition);

void BM_MinimalBackdoor(benchmark::State& state) {
  // A layered DAG with many candidate adjusters.
  causal::CausalGraph g;
  for (int i = 0; i < 12; ++i) {
    const std::string c = "C" + std::to_string(i);
    g.AddEdge(c, "B");
    g.AddEdge(c, "Y");
  }
  g.AddEdge("B", "Y");
  for (auto _ : state) {
    benchmark::DoNotOptimize(causal::MinimalBackdoorSet(g, "B", "Y"));
  }
}
BENCHMARK(BM_MinimalBackdoor);

void BM_SimplexLp(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(7);
  opt::LpProblem p;
  for (int j = 0; j < n; ++j) p.objective.push_back(rng.Uniform(0, 1));
  for (int i = 0; i < n / 2; ++i) {
    std::vector<double> row(n);
    for (int j = 0; j < n; ++j) row[j] = rng.Uniform(0, 1);
    p.AddRow(std::move(row), 1.0 + rng.Uniform());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt::SolveLp(p));
  }
}
BENCHMARK(BM_SimplexLp)->Arg(16)->Arg(64);

void BM_MckSolve(benchmark::State& state) {
  Rng rng(11);
  std::vector<opt::MckGroup> groups(8);
  for (auto& g : groups) {
    for (int i = 0; i < 10; ++i) {
      g.values.push_back(rng.Uniform(-1, 5));
      g.costs.push_back(rng.Uniform(0, 2));
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt::SolveMck(groups, 6.0));
  }
}
BENCHMARK(BM_MckSolve);

void BM_WhatIfEndToEnd(benchmark::State& state) {
  const data::Dataset& ds = GermanDataset();
  whatif::WhatIfOptions options;
  options.estimator = learn::EstimatorKind::kFrequency;
  whatif::WhatIfEngine engine(&ds.db, &ds.graph, options);
  auto stmt = sql::ParseSql(
                  "Use German Update(Status) = 3 Output Count(Credit = 1)")
                  .value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Run(*stmt.whatif));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(ds.db.TotalRows()));
}
BENCHMARK(BM_WhatIfEndToEnd);

}  // namespace

// ---------------------------------------------------------------------------
// Row-store vs columnar comparison suite (JSON lines). These are the
// substrate measurements behind the columnar execution PR: every record
// reports seconds per repetition for the legacy row path, the columnar /
// compiled path, and the speedup.
// ---------------------------------------------------------------------------

void RunComparisonSuite(bool smoke, bench::JsonLines& out) {
  bench::Banner(smoke ? "row vs columnar comparison (smoke)"
                      : "row vs columnar comparison");

  data::AmazonOptions opt;
  opt.products = smoke ? 300 : 2000;
  opt.reviews_per_product = smoke ? 6 : 15;
  auto ds = bench::Unwrap(data::MakeAmazonSyn(opt), "amazon_syn");
  const Table& product = *ds.db.GetTable("Product").value();
  const Table& review = *ds.db.GetTable("Review").value();
  auto cproduct =
      bench::Unwrap(ColumnTable::FromTable(product), "columnarize Product");
  auto creview =
      bench::Unwrap(ColumnTable::FromTable(review), "columnarize Review");
  const size_t reps = smoke ? 10 : 30;
  double sink = 0.0;

  // 1. Full-column scan: sum Rating over every review tuple.
  {
    const size_t col = review.schema().IndexOf("Rating").value();
    const double row_s = bench::TimePerRep(reps, [&] {
      double s = 0.0;
      for (size_t r = 0; r < review.num_rows(); ++r) {
        s += review.At(r, col).AsDouble().value();
      }
      sink += s;
    });
    const Column& c = creview.col(col);
    const double col_s = bench::TimePerRep(reps, [&] {
      double s = 0.0;
      switch (c.kind) {
        case ColumnKind::kDouble:
          for (double v : c.f64) s += v;
          break;
        case ColumnKind::kInt64:
          for (int64_t v : c.i64) s += static_cast<double>(v);
          break;
        default:
          break;
      }
      sink += s;
    });
    out.Record("scan_sum_rating",
               {{"rows", static_cast<double>(review.num_rows())},
                {"row_store_s", row_s},
                {"columnar_s", col_s},
                {"speedup", row_s / col_s}});
  }

  // 2a. Group-by on a string column: average Price by Brand. The row path
  // hashes Value objects (string hashing per tuple); the columnar path
  // aggregates over dictionary codes with a dense per-code table.
  {
    const size_t brand = product.schema().IndexOf("Brand").value();
    const size_t price = product.schema().IndexOf("Price").value();
    const double row_s = bench::TimePerRep(reps, [&] {
      std::unordered_map<Value, std::pair<double, size_t>, ValueHash> groups;
      for (size_t r = 0; r < product.num_rows(); ++r) {
        auto& cell = groups[product.At(r, brand)];
        cell.first += product.At(r, price).AsDouble().value();
        cell.second += 1;
      }
      sink += static_cast<double>(groups.size());
    });
    const Column& bc = cproduct.col(brand);
    const Column& pc = cproduct.col(price);
    const double col_s = bench::TimePerRep(reps, [&] {
      std::vector<std::pair<double, size_t>> groups(cproduct.dict().size());
      for (size_t r = 0; r < bc.codes.size(); ++r) {
        auto& cell = groups[bc.codes[r]];
        cell.first += pc.f64[r];
        cell.second += 1;
      }
      sink += static_cast<double>(groups.size());
    });
    out.Record("groupby_brand_value_vs_dict",
               {{"rows", static_cast<double>(product.num_rows())},
                {"row_store_s", row_s},
                {"columnar_s", col_s},
                {"speedup", row_s / col_s}});
  }

  // 2b. Group-by on the join key: average Rating by PID (the psi group-mean
  // shape from the what-if engine).
  {
    const size_t pid = review.schema().IndexOf("PID").value();
    const size_t rating = review.schema().IndexOf("Rating").value();
    const double row_s = bench::TimePerRep(reps, [&] {
      std::unordered_map<Value, std::pair<double, size_t>, ValueHash> groups;
      for (size_t r = 0; r < review.num_rows(); ++r) {
        auto& cell = groups[review.At(r, pid)];
        cell.first += review.At(r, rating).AsDouble().value();
        cell.second += 1;
      }
      sink += static_cast<double>(groups.size());
    });
    const Column& kc = creview.col(pid);
    const Column& rc = creview.col(rating);
    const double col_s = bench::TimePerRep(reps, [&] {
      std::unordered_map<int64_t, std::pair<double, size_t>> groups;
      groups.reserve(kc.i64.size() / 4 + 1);
      for (size_t r = 0; r < kc.i64.size(); ++r) {
        auto& cell = groups[kc.i64[r]];
        cell.first += rc.kind == ColumnKind::kDouble
                          ? rc.f64[r]
                          : static_cast<double>(rc.i64[r]);
        cell.second += 1;
      }
      sink += static_cast<double>(groups.size());
    });
    out.Record("groupby_pid_value_vs_word",
               {{"rows", static_cast<double>(review.num_rows())},
                {"row_store_s", row_s},
                {"columnar_s", col_s},
                {"speedup", row_s / col_s}});
  }

  // 3. Predicate evaluation: the When-shaped filter
  //    Category = 'Laptop' And Price <= 800
  // interpreted per row (Env + name resolution), compiled per row, and as
  // a vectorized columnar mask.
  {
    auto pred = sql::MakeBinary(
        sql::BinaryOp::kAnd,
        sql::MakeBinary(sql::BinaryOp::kEq, sql::MakeColumnRef("", "Category"),
                        sql::MakeLiteral(Value::String("Laptop"))),
        sql::MakeBinary(sql::BinaryOp::kLe, sql::MakeColumnRef("", "Price"),
                        sql::MakeLiteral(Value::Double(800.0))));
    const Schema& schema = product.schema();
    const double interp_s = bench::TimePerRep(reps, [&] {
      size_t hits = 0;
      for (size_t r = 0; r < product.num_rows(); ++r) {
        relational::Env env;
        env.Bind(schema.relation_name(), &schema, &product.row(r));
        hits += relational::EvalPredicate(*pred, env).value() ? 1 : 0;
      }
      sink += static_cast<double>(hits);
    });
    const std::vector<relational::ScopedTuple> scope{
        relational::ScopedTuple{schema.relation_name(), &schema}};
    auto compiled =
        bench::Unwrap(relational::CompiledExpr::Compile(*pred, scope),
                      "compile predicate");
    const double compiled_s = bench::TimePerRep(reps, [&] {
      size_t hits = 0;
      for (size_t r = 0; r < product.num_rows(); ++r) {
        const relational::BoundRow frame{&product.row(r), nullptr};
        hits += compiled.EvalRowBool(&frame).value() ? 1 : 0;
      }
      sink += static_cast<double>(hits);
    });
    auto bound = bench::Unwrap(
        relational::ColumnBoundExpr::Bind(compiled, cproduct), "bind");
    const double mask_s = bench::TimePerRep(reps, [&] {
      auto mask = bound.EvalMask().value();
      size_t hits = 0;
      for (uint8_t m : mask) hits += m;
      sink += static_cast<double>(hits);
    });
    out.Record("predicate_interp_vs_compiled",
               {{"rows", static_cast<double>(product.num_rows())},
                {"interpreted_s", interp_s},
                {"compiled_s", compiled_s},
                {"columnar_mask_s", mask_s},
                {"speedup_compiled", interp_s / compiled_s},
                {"speedup_mask", interp_s / mask_s}});
  }

  // 4. What-if end to end, row interpreter vs columnar engine, with an
  // identical-answer assertion (fixed seed).
  {
    data::GermanOptions gopt;
    gopt.rows = smoke ? 5000 : 20000;
    auto gds = bench::Unwrap(data::MakeGermanSyn(gopt), "german_syn");
    auto stmt = bench::Unwrap(
        sql::ParseSql("Use German Update(Status) = 3 "
                      "Output Count(Credit = 1) For Pre(Age) = 1"),
        "parse");
    whatif::WhatIfOptions options;
    options.estimator = learn::EstimatorKind::kFrequency;
    options.use_columnar = false;
    whatif::WhatIfEngine row_engine(&gds.db, &gds.graph, options);
    options.use_columnar = true;
    whatif::WhatIfEngine col_engine(&gds.db, &gds.graph, options);

    const size_t e2e_reps = smoke ? 3 : 5;
    double row_value = 0.0, col_value = 0.0;
    const double row_s = bench::TimePerRep(e2e_reps, [&] {
      row_value = row_engine.Run(*stmt.whatif).value().value;
    });
    const double col_s = bench::TimePerRep(e2e_reps, [&] {
      col_value = col_engine.Run(*stmt.whatif).value().value;
    });
    if (row_value != col_value) {
      std::fprintf(stderr,
                   "[bench] row/columnar answers diverge: %.17g vs %.17g\n",
                   row_value, col_value);
      std::exit(1);
    }
    out.Record("whatif_e2e_german",
               {{"rows", static_cast<double>(gds.db.TotalRows())},
                {"row_store_s", row_s},
                {"columnar_s", col_s},
                {"speedup", row_s / col_s}});
  }

  // 5. Estimator training: exact sort-based tree splits vs pre-binned
  // histogram training, and per-row vs batched tree inference, on the
  // german-syn forest configuration (the what-if estimator workload).
  {
    data::GermanOptions gopt;
    gopt.rows = smoke ? 2000 : 7000;
    auto gds = bench::Unwrap(data::MakeGermanSyn(gopt), "german_syn");
    const Table& t = *gds.db.GetTable("German").value();
    auto encoder =
        bench::Unwrap(learn::FeatureEncoder::Fit(
                          t, {"Status", "Savings", "Housing", "CreditHistory",
                              "CreditAmount", "Age", "Sex"}),
                      "fit encoder");
    learn::FeatureMatrix x = bench::Unwrap(encoder.EncodeAll(t), "encode");
    std::vector<double> y =
        bench::Unwrap(learn::ExtractTarget(t, "Credit"), "target");

    learn::ForestOptions fo;
    fo.num_trees = 16;
    fo.num_threads = 1;  // single-core substrate measurement
    const size_t train_reps = smoke ? 3 : 5;

    fo.tree.use_histograms = false;
    const double exact_s = bench::TimePerRep(train_reps, [&] {
      learn::RandomForestRegressor forest(fo);
      bench::CheckOk(forest.Fit(x, y), "exact forest fit");
      sink += static_cast<double>(forest.num_trees());
    });
    fo.tree.use_histograms = true;
    const double hist_s = bench::TimePerRep(train_reps, [&] {
      learn::RandomForestRegressor forest(fo);
      bench::CheckOk(forest.Fit(x, y), "histogram forest fit");
      sink += static_cast<double>(forest.num_trees());
    });
    out.Record("estimator_train_forest",
               {{"rows", static_cast<double>(x.num_rows())},
                {"features", static_cast<double>(x.num_cols())},
                {"trees", static_cast<double>(fo.num_trees)},
                {"exact_s", exact_s},
                {"histogram_s", hist_s},
                {"speedup", exact_s / hist_s}});

    // Batched inference against per-row virtual Predict on the same forest,
    // with a bit-equality assertion (PredictBatch's contract).
    learn::RandomForestRegressor forest(fo);
    bench::CheckOk(forest.Fit(x, y), "forest fit");
    const size_t pred_reps = smoke ? 5 : 20;
    std::vector<double> per_row(x.num_rows());
    const double perrow_s = bench::TimePerRep(pred_reps, [&] {
      std::vector<double> point(x.num_cols());
      const learn::ConditionalMeanEstimator& est = forest;  // virtual per row
      for (size_t r = 0; r < x.num_rows(); ++r) {
        point.assign(x.row(r), x.row(r) + x.num_cols());
        per_row[r] = est.Predict(point);
      }
      sink += per_row.back();
    });
    std::vector<double> batched(x.num_rows());
    const double batch_s = bench::TimePerRep(pred_reps, [&] {
      forest.PredictBatch(x, batched);
      sink += batched.back();
    });
    if (std::memcmp(per_row.data(), batched.data(),
                    per_row.size() * sizeof(double)) != 0) {
      std::fprintf(stderr,
                   "[bench] PredictBatch diverges from per-row Predict\n");
      std::exit(1);
    }
    out.Record("predict_batch_forest",
               {{"rows", static_cast<double>(x.num_rows())},
                {"per_row_s", perrow_s},
                {"batched_s", batch_s},
                {"speedup", perrow_s / batch_s}});
  }

  // 6. What-if prepare/evaluate on the german-syn forest config: cold
  // prepare+train with exact vs histogram training, and warm Evaluate with
  // per-row vs batched inference (bit-equality enforced on the latter —
  // identical estimators, different loop).
  {
    data::GermanOptions gopt;
    gopt.rows = smoke ? 2000 : 7000;
    auto gds = bench::Unwrap(data::MakeGermanSyn(gopt), "german_syn");
    auto stmt = bench::Unwrap(
        sql::ParseSql("Use German When Status = 1 Update(Status) = 2 "
                      "Output Count(Credit = 1)"),
        "parse");
    const std::vector<whatif::UpdateSpec> specs =
        whatif::SpecsOfStatement(*stmt.whatif);

    whatif::WhatIfOptions base;
    base.estimator = learn::EstimatorKind::kForest;
    base.forest.num_trees = 16;
    base.num_threads = 1;

    auto cold_seconds = [&](const whatif::WhatIfOptions& options,
                            double* value) {
      whatif::WhatIfEngine engine(&gds.db, &gds.graph, options);
      const size_t reps = smoke ? 2 : 3;
      return bench::TimePerRep(reps, [&] {
        auto plan = bench::Unwrap(engine.Prepare(*stmt.whatif), "prepare");
        auto result = bench::Unwrap(engine.Evaluate(*plan, specs), "eval");
        *value = result.value;
        sink += result.value;
      });
    };

    whatif::WhatIfOptions exact_opt = base;
    exact_opt.forest.tree.use_histograms = false;
    exact_opt.batched_inference = false;
    double exact_value = 0.0, hist_value = 0.0;
    const double cold_exact_s = cold_seconds(exact_opt, &exact_value);
    const double cold_hist_s = cold_seconds(base, &hist_value);
    // German's features are small-cardinality, so histogram training is in
    // its parity regime and the answers must agree exactly; guard loosely
    // anyway in case the dataset generator changes shape.
    if (std::fabs(exact_value - hist_value) >
        1e-6 * std::max(1.0, std::fabs(exact_value))) {
      std::fprintf(stderr,
                   "[bench] histogram what-if diverges: %.17g vs %.17g\n",
                   exact_value, hist_value);
      std::exit(1);
    }
    out.Record("whatif_prepare_forest",
               {{"rows", static_cast<double>(gds.db.TotalRows())},
                {"exact_cold_s", cold_exact_s},
                {"histogram_cold_s", cold_hist_s},
                {"speedup", cold_exact_s / cold_hist_s}});

    // Warm Evaluate A/B on one shared plan per engine: estimators are
    // identical (histogram-trained), only the inference loop differs.
    auto warm_seconds = [&](const whatif::WhatIfOptions& options,
                            double* value) {
      whatif::WhatIfEngine engine(&gds.db, &gds.graph, options);
      auto plan = bench::Unwrap(engine.Prepare(*stmt.whatif), "prepare");
      *value =
          bench::Unwrap(engine.Evaluate(*plan, specs), "train eval").value;
      const size_t reps = smoke ? 5 : 10;
      return bench::TimePerRep(reps, [&] {
        auto result = bench::Unwrap(engine.Evaluate(*plan, specs), "eval");
        sink += result.value;
      });
    };
    whatif::WhatIfOptions per_row_opt = base;
    per_row_opt.batched_inference = false;
    double warm_perrow_value = 0.0, warm_batched_value = 0.0;
    const double warm_perrow_s = warm_seconds(per_row_opt, &warm_perrow_value);
    const double warm_batched_s = warm_seconds(base, &warm_batched_value);
    if (warm_perrow_value != warm_batched_value) {
      std::fprintf(stderr,
                   "[bench] batched evaluate diverges: %.17g vs %.17g\n",
                   warm_perrow_value, warm_batched_value);
      std::exit(1);
    }
    out.Record("whatif_evaluate_forest",
               {{"rows", static_cast<double>(gds.db.TotalRows())},
                {"per_row_s", warm_perrow_s},
                {"batched_s", warm_batched_s},
                {"speedup", warm_perrow_s / warm_batched_s}});
  }

  if (sink == 42.0) std::printf("(unlikely sink)\n");  // defeat DCE
}

// ---------------------------------------------------------------------------
// Scale sweep: per-kernel and end-to-end records at 10k / 100k / 1M rows on
// german-syn (1M only outside --smoke; scripts/check.sh runs the smoke
// sizes). Every A/B pair in here is a bit-equality contract — scalar vs
// SIMD kernels, per-row loops vs vectorized loops, morsel vs static
// scheduling — so any divergence aborts the bench with exit 1. The
// end-to-end record compares the engine's current defaults against the
// pre-vectorization configuration (scalar SIMD level, static shards,
// per-row expression loops) at the same thread budget.
// ---------------------------------------------------------------------------

void RunScaleSweep(bool smoke, bench::JsonLines& out) {
  bench::Banner(smoke ? "scale sweep (smoke: 10k, 100k)"
                      : "scale sweep (10k, 100k, 1M)");
  std::vector<size_t> sizes{10000, 100000};
  if (!smoke) sizes.push_back(1000000);
  double sink = 0.0;

  // Restores process-wide execution knobs even if a gate exits early is not
  // needed: gates call std::exit, and the knobs are process-local.
  const auto scalar_static_on = [] {
    simd::SetForceScalar(true);
    SetSchedulingMode(SchedulingMode::kStatic);
  };
  const auto scalar_static_off = [] {
    simd::SetForceScalar(false);
    SetSchedulingMode(SchedulingMode::kMorsel);
  };

  for (size_t n : sizes) {
    data::GermanOptions gopt;
    gopt.rows = n;
    auto gds = bench::Unwrap(data::MakeGermanSyn(gopt), "german_syn");
    const Table& t = *gds.db.GetTable("German").value();
    auto ct = bench::Unwrap(ColumnTable::FromTable(t), "columnarize German");
    const size_t reps = n >= 1000000 ? 3 : (n >= 100000 ? 10 : 30);
    const double rows = static_cast<double>(n);

    // --- When-mask kernel: per-row EvalBool vs scalar-mirror vs SIMD. ---
    {
      auto pred = sql::MakeBinary(
          sql::BinaryOp::kAnd,
          sql::MakeBinary(sql::BinaryOp::kEq, sql::MakeColumnRef("", "Status"),
                          sql::MakeLiteral(Value::Int(1))),
          sql::MakeBinary(sql::BinaryOp::kGe, sql::MakeColumnRef("", "Age"),
                          sql::MakeLiteral(Value::Int(1))));
      const Schema& schema = t.schema();
      const std::vector<relational::ScopedTuple> scope{
          relational::ScopedTuple{schema.relation_name(), &schema}};
      auto compiled = bench::Unwrap(
          relational::CompiledExpr::Compile(*pred, scope), "compile when");
      auto bound = bench::Unwrap(
          relational::ColumnBoundExpr::Bind(compiled, ct), "bind when");

      std::vector<uint8_t> per_row(n);
      const double per_row_s = bench::TimePerRep(reps, [&] {
        for (size_t r = 0; r < n; ++r) {
          per_row[r] = bound.EvalBool(r).value() ? 1 : 0;
        }
        sink += per_row[n - 1];
      });
      std::vector<uint8_t> scalar_mask, simd_mask;
      simd::SetForceScalar(true);
      const double scalar_s = bench::TimePerRep(reps, [&] {
        if (!bound.TryMaskKernel(&scalar_mask)) {
          std::fprintf(stderr, "[bench] when mask not kernel-eligible\n");
          std::exit(1);
        }
        sink += scalar_mask[n - 1];
      });
      simd::SetForceScalar(false);
      const double simd_s = bench::TimePerRep(reps, [&] {
        if (!bound.TryMaskKernel(&simd_mask)) {
          std::fprintf(stderr, "[bench] when mask not kernel-eligible\n");
          std::exit(1);
        }
        sink += simd_mask[n - 1];
      });
      if (std::memcmp(per_row.data(), scalar_mask.data(), n) != 0 ||
          std::memcmp(scalar_mask.data(), simd_mask.data(), n) != 0) {
        std::fprintf(stderr, "[bench] when-mask kernels diverge at %zu\n", n);
        std::exit(1);
      }
      out.Record("scale_when_mask",
                 {{"rows", rows},
                  {"per_row_s", per_row_s},
                  {"scalar_kernel_s", scalar_s},
                  {"simd_kernel_s", simd_s},
                  {"speedup_vs_per_row", per_row_s / simd_s},
                  {"simd_vs_scalar", scalar_s / simd_s},
                  {"equal", 1.0}});
    }

    // --- Numeric kernel: per-row Eval().AsDouble() vs the vectorized
    // evaluator (int64 arithmetic widened exactly like the scalar path). ---
    {
      auto expr = sql::MakeBinary(
          sql::BinaryOp::kAdd, sql::MakeColumnRef("", "CreditAmount"),
          sql::MakeBinary(sql::BinaryOp::kMul, sql::MakeLiteral(Value::Int(2)),
                          sql::MakeColumnRef("", "Age")));
      const Schema& schema = t.schema();
      const std::vector<relational::ScopedTuple> scope{
          relational::ScopedTuple{schema.relation_name(), &schema}};
      auto compiled = bench::Unwrap(
          relational::CompiledExpr::Compile(*expr, scope), "compile out");
      auto bound = bench::Unwrap(
          relational::ColumnBoundExpr::Bind(compiled, ct), "bind out");

      std::vector<double> per_row(n);
      const double per_row_s = bench::TimePerRep(reps, [&] {
        for (size_t r = 0; r < n; ++r) {
          per_row[r] = bound.Eval(r).value().AsDouble().value();
        }
        sink += per_row[n - 1];
      });
      std::vector<double> scalar_out, simd_out;
      std::vector<uint8_t> err;
      simd::SetForceScalar(true);
      const double scalar_s = bench::TimePerRep(reps, [&] {
        if (!bound.TryEvalDoubleKernel(&scalar_out, &err)) {
          std::fprintf(stderr, "[bench] out expr not kernel-eligible\n");
          std::exit(1);
        }
        sink += scalar_out[n - 1];
      });
      simd::SetForceScalar(false);
      const double simd_s = bench::TimePerRep(reps, [&] {
        if (!bound.TryEvalDoubleKernel(&simd_out, &err)) {
          std::fprintf(stderr, "[bench] out expr not kernel-eligible\n");
          std::exit(1);
        }
        sink += simd_out[n - 1];
      });
      if (std::memcmp(per_row.data(), scalar_out.data(),
                      n * sizeof(double)) != 0 ||
          std::memcmp(scalar_out.data(), simd_out.data(),
                      n * sizeof(double)) != 0) {
        std::fprintf(stderr, "[bench] numeric kernels diverge at %zu\n", n);
        std::exit(1);
      }
      out.Record("scale_eval_double",
                 {{"rows", rows},
                  {"per_row_s", per_row_s},
                  {"scalar_kernel_s", scalar_s},
                  {"simd_kernel_s", simd_s},
                  {"speedup_vs_per_row", per_row_s / simd_s},
                  {"simd_vs_scalar", scalar_s / simd_s},
                  {"equal", 1.0}});
    }

    // --- Override patching: ~25% of rows get one Status cell each;
    // morsel-parallel segment patching vs the static pre-PR schedule.
    // Both runs must produce byte-identical columns. ---
    {
      TableCellOverrides overrides;
      const size_t status = t.schema().IndexOf("Status").value();
      AttributeCellOverrides& cells = overrides[status];
      for (size_t r = 0; r < n; r += 4) cells.emplace(r, Value::Int(2));

      auto ct_static = bench::Unwrap(ColumnTable::FromTable(t), "columnarize");
      scalar_static_on();
      const double static_s = bench::TimePerRep(reps, [&] {
        bench::CheckOk(ct_static.ApplyOverrides(overrides), "patch static");
        sink += 1.0;
      });
      scalar_static_off();
      auto ct_morsel = bench::Unwrap(ColumnTable::FromTable(t), "columnarize");
      const double morsel_s = bench::TimePerRep(reps, [&] {
        bench::CheckOk(ct_morsel.ApplyOverrides(overrides), "patch morsel");
        sink += 1.0;
      });
      const Column& a = ct_static.col(status);
      const Column& b = ct_morsel.col(status);
      if (a.i64 != b.i64) {
        std::fprintf(stderr, "[bench] override patch diverges at %zu\n", n);
        std::exit(1);
      }
      out.Record("scale_apply_overrides",
                 {{"rows", rows},
                  {"cells", static_cast<double>(cells.size())},
                  {"static_s", static_s},
                  {"morsel_s", morsel_s},
                  {"speedup", static_s / morsel_s},
                  {"equal", 1.0}});
    }

    // --- Histogram training: SoA scatter + sibling subtraction at scale
    // (single-threaded substrate number; no scalar/SIMD A/B because the
    // scatter is inherently sequential per tree). ---
    {
      auto encoder =
          bench::Unwrap(learn::FeatureEncoder::Fit(
                            t, {"Status", "Savings", "Housing",
                                "CreditHistory", "CreditAmount", "Age", "Sex"}),
                        "fit encoder");
      learn::FeatureMatrix x = bench::Unwrap(encoder.EncodeAll(t), "encode");
      std::vector<double> y =
          bench::Unwrap(learn::ExtractTarget(t, "Credit"), "target");
      learn::ForestOptions fo;
      fo.num_trees = 2;
      fo.num_threads = 1;
      fo.tree.use_histograms = true;
      const size_t fit_reps = n >= 1000000 ? 1 : 3;
      const double hist_s = bench::TimePerRep(fit_reps, [&] {
        learn::RandomForestRegressor forest(fo);
        bench::CheckOk(forest.Fit(x, y), "histogram fit");
        sink += static_cast<double>(forest.num_trees());
      });
      out.Record("scale_hist_fit",
                 {{"rows", rows},
                  {"trees", static_cast<double>(fo.num_trees)},
                  {"histogram_s", hist_s},
                  {"rows_per_s", rows * fo.num_trees / hist_s}});
    }

    // --- End to end: warm Evaluate and cold Prepare+Evaluate, engine
    // defaults vs the pre-vectorization configuration (scalar kernels,
    // static shards, per-row loops) at the same thread budget. ---
    {
      auto stmt = bench::Unwrap(
          sql::ParseSql("Use German When Status = 1 Update(Status) = 2 "
                        "Output Count(Credit = 1)"),
          "parse");
      const std::vector<whatif::UpdateSpec> specs =
          whatif::SpecsOfStatement(*stmt.whatif);

      whatif::WhatIfOptions new_opt;
      new_opt.estimator = learn::EstimatorKind::kFrequency;
      whatif::WhatIfOptions legacy_opt = new_opt;
      legacy_opt.vectorized_exec = false;

      struct Arm {
        double cold_s = 0.0;
        double warm_s = 0.0;
        double value = 0.0;
      };
      auto run_arm = [&](const whatif::WhatIfOptions& options) {
        Arm arm;
        const size_t cold_reps = n >= 1000000 ? 2 : 3;
        arm.cold_s = bench::TimePerRep(cold_reps, [&] {
          whatif::WhatIfEngine engine(&gds.db, &gds.graph, options);
          auto plan = bench::Unwrap(engine.Prepare(*stmt.whatif), "prepare");
          auto result = bench::Unwrap(engine.Evaluate(*plan, specs), "eval");
          arm.value = result.value;
          sink += result.value;
        });
        whatif::WhatIfEngine engine(&gds.db, &gds.graph, options);
        auto plan = bench::Unwrap(engine.Prepare(*stmt.whatif), "prepare");
        sink += bench::Unwrap(engine.Evaluate(*plan, specs), "warmup").value;
        const size_t warm_reps = n >= 1000000 ? 3 : 5;
        arm.warm_s = bench::TimePerRep(warm_reps, [&] {
          auto result = bench::Unwrap(engine.Evaluate(*plan, specs), "eval");
          arm.value = result.value;
          sink += result.value;
        });
        return arm;
      };

      scalar_static_on();
      const Arm legacy = run_arm(legacy_opt);
      scalar_static_off();
      const Arm vectorized = run_arm(new_opt);
      if (legacy.value != vectorized.value) {
        std::fprintf(stderr,
                     "[bench] e2e arms diverge at %zu: %.17g vs %.17g\n", n,
                     legacy.value, vectorized.value);
        std::exit(1);
      }
      out.Record("scale_whatif_e2e",
                 {{"rows", rows},
                  {"legacy_cold_s", legacy.cold_s},
                  {"vectorized_cold_s", vectorized.cold_s},
                  {"cold_speedup", legacy.cold_s / vectorized.cold_s},
                  {"legacy_warm_s", legacy.warm_s},
                  {"vectorized_warm_s", vectorized.warm_s},
                  {"warm_speedup", legacy.warm_s / vectorized.warm_s},
                  {"equal", 1.0}});
    }
  }

  if (sink == 42.0) std::printf("(unlikely sink)\n");  // defeat DCE
}

}  // namespace hyper

int main(int argc, char** argv) {
  bool smoke = false;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(args.size());
  if (!smoke) {
    benchmark::Initialize(&filtered_argc, args.data());
    benchmark::RunSpecifiedBenchmarks();
  }
  hyper::bench::JsonLines out("BENCH_micro.json");
  hyper::RunComparisonSuite(smoke, out);
  hyper::RunScaleSweep(smoke, out);
  return 0;
}
