// Component-level micro-benchmarks (google-benchmark): relational executor,
// learners, causal machinery, and the IP solvers. Not tied to a paper
// figure; used to track regressions in the substrates.
//
// In addition to the google-benchmark registrations, this binary runs a
// row-store-vs-columnar comparison suite (scan, group-by, predicate
// evaluation, what-if end to end) and emits one JSON record per comparison
// to BENCH_micro.json. `--smoke` skips the google benchmarks and runs the
// comparison suite at a reduced size — the pre-merge gate scripts/check.sh
// uses exactly that mode.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "bench/bench_util.h"
#include "causal/graph.h"
#include "causal/ground.h"
#include "data/datasets.h"
#include "learn/forest.h"
#include "learn/frequency.h"
#include "opt/lp.h"
#include "opt/mck.h"
#include "opt/milp.h"
#include "relational/compiled.h"
#include "relational/eval.h"
#include "relational/select.h"
#include "sql/parser.h"
#include "storage/column.h"
#include "whatif/engine.h"

namespace hyper {
namespace {

const data::Dataset& AmazonDataset() {
  static const data::Dataset* ds = [] {
    data::AmazonOptions opt;
    opt.products = 1000;
    opt.reviews_per_product = 10;
    return new data::Dataset(std::move(data::MakeAmazonSyn(opt).value()));
  }();
  return *ds;
}

const data::Dataset& GermanDataset() {
  static const data::Dataset* ds = [] {
    data::GermanOptions opt;
    opt.rows = 20000;
    return new data::Dataset(std::move(data::MakeGermanSyn(opt).value()));
  }();
  return *ds;
}

void BM_ParseWhatIf(benchmark::State& state) {
  const std::string query =
      "Use RelevantView As (Select T1.PID, T1.Category, T1.Price, T1.Brand, "
      "Avg(Sentiment) As Senti, Avg(T2.Rating) As Rtng "
      "From Product As T1, Review As T2 Where T1.PID = T2.PID "
      "Group By T1.PID, T1.Category, T1.Price, T1.Brand) "
      "When Brand = 'Asus' Update(Price) = 1.1 * Pre(Price) "
      "Output Avg(Post(Rtng)) For Pre(Category) = 'Laptop' "
      "And Post(Senti) > 0.5";
  for (auto _ : state) {
    benchmark::DoNotOptimize(sql::ParseSql(query));
  }
}
BENCHMARK(BM_ParseWhatIf);

void BM_HashJoinGroupBy(benchmark::State& state) {
  const data::Dataset& ds = AmazonDataset();
  auto stmt = sql::ParseSql(
                  "Select T1.PID, T1.Price, Avg(T2.Rating) As Rtng "
                  "From Product As T1, Review As T2 Where T1.PID = T2.PID "
                  "Group By T1.PID, T1.Price")
                  .value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(relational::ExecuteSelect(ds.db, *stmt.select));
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(ds.db.GetTable("Review").value()->num_rows()));
}
BENCHMARK(BM_HashJoinGroupBy);

void BM_ForestTrain(benchmark::State& state) {
  const data::Dataset& ds = GermanDataset();
  const Table& t = *ds.db.GetTable("German").value();
  auto encoder =
      learn::FeatureEncoder::Fit(t, {"Status", "Age", "Sex"}).value();
  learn::Matrix x = encoder.EncodeAll(t).value();
  std::vector<double> y = learn::ExtractTarget(t, "Credit").value();
  learn::ForestOptions options;
  options.num_trees = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    learn::RandomForestRegressor forest(options);
    benchmark::DoNotOptimize(forest.Fit(x, y));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(x.size()));
}
BENCHMARK(BM_ForestTrain)->Arg(4)->Arg(16);

void BM_FrequencyFit(benchmark::State& state) {
  const data::Dataset& ds = GermanDataset();
  const Table& t = *ds.db.GetTable("German").value();
  auto encoder =
      learn::FeatureEncoder::Fit(t, {"Status", "Age", "Sex"}).value();
  learn::Matrix x = encoder.EncodeAll(t).value();
  std::vector<double> y = learn::ExtractTarget(t, "Credit").value();
  for (auto _ : state) {
    learn::FrequencyEstimator estimator;
    benchmark::DoNotOptimize(estimator.Fit(x, y));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(x.size()));
}
BENCHMARK(BM_FrequencyFit);

void BM_BlockDecomposition(benchmark::State& state) {
  const data::Dataset& ds = AmazonDataset();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        causal::TupleComponents::Build(ds.graph, ds.db));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(ds.db.TotalRows()));
}
BENCHMARK(BM_BlockDecomposition);

void BM_MinimalBackdoor(benchmark::State& state) {
  // A layered DAG with many candidate adjusters.
  causal::CausalGraph g;
  for (int i = 0; i < 12; ++i) {
    const std::string c = "C" + std::to_string(i);
    g.AddEdge(c, "B");
    g.AddEdge(c, "Y");
  }
  g.AddEdge("B", "Y");
  for (auto _ : state) {
    benchmark::DoNotOptimize(causal::MinimalBackdoorSet(g, "B", "Y"));
  }
}
BENCHMARK(BM_MinimalBackdoor);

void BM_SimplexLp(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(7);
  opt::LpProblem p;
  for (int j = 0; j < n; ++j) p.objective.push_back(rng.Uniform(0, 1));
  for (int i = 0; i < n / 2; ++i) {
    std::vector<double> row(n);
    for (int j = 0; j < n; ++j) row[j] = rng.Uniform(0, 1);
    p.AddRow(std::move(row), 1.0 + rng.Uniform());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt::SolveLp(p));
  }
}
BENCHMARK(BM_SimplexLp)->Arg(16)->Arg(64);

void BM_MckSolve(benchmark::State& state) {
  Rng rng(11);
  std::vector<opt::MckGroup> groups(8);
  for (auto& g : groups) {
    for (int i = 0; i < 10; ++i) {
      g.values.push_back(rng.Uniform(-1, 5));
      g.costs.push_back(rng.Uniform(0, 2));
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt::SolveMck(groups, 6.0));
  }
}
BENCHMARK(BM_MckSolve);

void BM_WhatIfEndToEnd(benchmark::State& state) {
  const data::Dataset& ds = GermanDataset();
  whatif::WhatIfOptions options;
  options.estimator = learn::EstimatorKind::kFrequency;
  whatif::WhatIfEngine engine(&ds.db, &ds.graph, options);
  auto stmt = sql::ParseSql(
                  "Use German Update(Status) = 3 Output Count(Credit = 1)")
                  .value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Run(*stmt.whatif));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(ds.db.TotalRows()));
}
BENCHMARK(BM_WhatIfEndToEnd);

}  // namespace

// ---------------------------------------------------------------------------
// Row-store vs columnar comparison suite (JSON lines). These are the
// substrate measurements behind the columnar execution PR: every record
// reports seconds per repetition for the legacy row path, the columnar /
// compiled path, and the speedup.
// ---------------------------------------------------------------------------

void RunComparisonSuite(bool smoke) {
  bench::JsonLines out("BENCH_micro.json");
  bench::Banner(smoke ? "row vs columnar comparison (smoke)"
                      : "row vs columnar comparison");

  data::AmazonOptions opt;
  opt.products = smoke ? 300 : 2000;
  opt.reviews_per_product = smoke ? 6 : 15;
  auto ds = bench::Unwrap(data::MakeAmazonSyn(opt), "amazon_syn");
  const Table& product = *ds.db.GetTable("Product").value();
  const Table& review = *ds.db.GetTable("Review").value();
  auto cproduct =
      bench::Unwrap(ColumnTable::FromTable(product), "columnarize Product");
  auto creview =
      bench::Unwrap(ColumnTable::FromTable(review), "columnarize Review");
  const size_t reps = smoke ? 10 : 30;
  double sink = 0.0;

  // 1. Full-column scan: sum Rating over every review tuple.
  {
    const size_t col = review.schema().IndexOf("Rating").value();
    const double row_s = bench::TimePerRep(reps, [&] {
      double s = 0.0;
      for (size_t r = 0; r < review.num_rows(); ++r) {
        s += review.At(r, col).AsDouble().value();
      }
      sink += s;
    });
    const Column& c = creview.col(col);
    const double col_s = bench::TimePerRep(reps, [&] {
      double s = 0.0;
      switch (c.kind) {
        case ColumnKind::kDouble:
          for (double v : c.f64) s += v;
          break;
        case ColumnKind::kInt64:
          for (int64_t v : c.i64) s += static_cast<double>(v);
          break;
        default:
          break;
      }
      sink += s;
    });
    out.Record("scan_sum_rating",
               {{"rows", static_cast<double>(review.num_rows())},
                {"row_store_s", row_s},
                {"columnar_s", col_s},
                {"speedup", row_s / col_s}});
  }

  // 2a. Group-by on a string column: average Price by Brand. The row path
  // hashes Value objects (string hashing per tuple); the columnar path
  // aggregates over dictionary codes with a dense per-code table.
  {
    const size_t brand = product.schema().IndexOf("Brand").value();
    const size_t price = product.schema().IndexOf("Price").value();
    const double row_s = bench::TimePerRep(reps, [&] {
      std::unordered_map<Value, std::pair<double, size_t>, ValueHash> groups;
      for (size_t r = 0; r < product.num_rows(); ++r) {
        auto& cell = groups[product.At(r, brand)];
        cell.first += product.At(r, price).AsDouble().value();
        cell.second += 1;
      }
      sink += static_cast<double>(groups.size());
    });
    const Column& bc = cproduct.col(brand);
    const Column& pc = cproduct.col(price);
    const double col_s = bench::TimePerRep(reps, [&] {
      std::vector<std::pair<double, size_t>> groups(cproduct.dict().size());
      for (size_t r = 0; r < bc.codes.size(); ++r) {
        auto& cell = groups[bc.codes[r]];
        cell.first += pc.f64[r];
        cell.second += 1;
      }
      sink += static_cast<double>(groups.size());
    });
    out.Record("groupby_brand_value_vs_dict",
               {{"rows", static_cast<double>(product.num_rows())},
                {"row_store_s", row_s},
                {"columnar_s", col_s},
                {"speedup", row_s / col_s}});
  }

  // 2b. Group-by on the join key: average Rating by PID (the psi group-mean
  // shape from the what-if engine).
  {
    const size_t pid = review.schema().IndexOf("PID").value();
    const size_t rating = review.schema().IndexOf("Rating").value();
    const double row_s = bench::TimePerRep(reps, [&] {
      std::unordered_map<Value, std::pair<double, size_t>, ValueHash> groups;
      for (size_t r = 0; r < review.num_rows(); ++r) {
        auto& cell = groups[review.At(r, pid)];
        cell.first += review.At(r, rating).AsDouble().value();
        cell.second += 1;
      }
      sink += static_cast<double>(groups.size());
    });
    const Column& kc = creview.col(pid);
    const Column& rc = creview.col(rating);
    const double col_s = bench::TimePerRep(reps, [&] {
      std::unordered_map<int64_t, std::pair<double, size_t>> groups;
      groups.reserve(kc.i64.size() / 4 + 1);
      for (size_t r = 0; r < kc.i64.size(); ++r) {
        auto& cell = groups[kc.i64[r]];
        cell.first += rc.kind == ColumnKind::kDouble
                          ? rc.f64[r]
                          : static_cast<double>(rc.i64[r]);
        cell.second += 1;
      }
      sink += static_cast<double>(groups.size());
    });
    out.Record("groupby_pid_value_vs_word",
               {{"rows", static_cast<double>(review.num_rows())},
                {"row_store_s", row_s},
                {"columnar_s", col_s},
                {"speedup", row_s / col_s}});
  }

  // 3. Predicate evaluation: the When-shaped filter
  //    Category = 'Laptop' And Price <= 800
  // interpreted per row (Env + name resolution), compiled per row, and as
  // a vectorized columnar mask.
  {
    auto pred = sql::MakeBinary(
        sql::BinaryOp::kAnd,
        sql::MakeBinary(sql::BinaryOp::kEq, sql::MakeColumnRef("", "Category"),
                        sql::MakeLiteral(Value::String("Laptop"))),
        sql::MakeBinary(sql::BinaryOp::kLe, sql::MakeColumnRef("", "Price"),
                        sql::MakeLiteral(Value::Double(800.0))));
    const Schema& schema = product.schema();
    const double interp_s = bench::TimePerRep(reps, [&] {
      size_t hits = 0;
      for (size_t r = 0; r < product.num_rows(); ++r) {
        relational::Env env;
        env.Bind(schema.relation_name(), &schema, &product.row(r));
        hits += relational::EvalPredicate(*pred, env).value() ? 1 : 0;
      }
      sink += static_cast<double>(hits);
    });
    const std::vector<relational::ScopedTuple> scope{
        relational::ScopedTuple{schema.relation_name(), &schema}};
    auto compiled =
        bench::Unwrap(relational::CompiledExpr::Compile(*pred, scope),
                      "compile predicate");
    const double compiled_s = bench::TimePerRep(reps, [&] {
      size_t hits = 0;
      for (size_t r = 0; r < product.num_rows(); ++r) {
        const relational::BoundRow frame{&product.row(r), nullptr};
        hits += compiled.EvalRowBool(&frame).value() ? 1 : 0;
      }
      sink += static_cast<double>(hits);
    });
    auto bound = bench::Unwrap(
        relational::ColumnBoundExpr::Bind(compiled, cproduct), "bind");
    const double mask_s = bench::TimePerRep(reps, [&] {
      auto mask = bound.EvalMask().value();
      size_t hits = 0;
      for (uint8_t m : mask) hits += m;
      sink += static_cast<double>(hits);
    });
    out.Record("predicate_interp_vs_compiled",
               {{"rows", static_cast<double>(product.num_rows())},
                {"interpreted_s", interp_s},
                {"compiled_s", compiled_s},
                {"columnar_mask_s", mask_s},
                {"speedup_compiled", interp_s / compiled_s},
                {"speedup_mask", interp_s / mask_s}});
  }

  // 4. What-if end to end, row interpreter vs columnar engine, with an
  // identical-answer assertion (fixed seed).
  {
    data::GermanOptions gopt;
    gopt.rows = smoke ? 5000 : 20000;
    auto gds = bench::Unwrap(data::MakeGermanSyn(gopt), "german_syn");
    auto stmt = bench::Unwrap(
        sql::ParseSql("Use German Update(Status) = 3 "
                      "Output Count(Credit = 1) For Pre(Age) = 1"),
        "parse");
    whatif::WhatIfOptions options;
    options.estimator = learn::EstimatorKind::kFrequency;
    options.use_columnar = false;
    whatif::WhatIfEngine row_engine(&gds.db, &gds.graph, options);
    options.use_columnar = true;
    whatif::WhatIfEngine col_engine(&gds.db, &gds.graph, options);

    const size_t e2e_reps = smoke ? 3 : 5;
    double row_value = 0.0, col_value = 0.0;
    const double row_s = bench::TimePerRep(e2e_reps, [&] {
      row_value = row_engine.Run(*stmt.whatif).value().value;
    });
    const double col_s = bench::TimePerRep(e2e_reps, [&] {
      col_value = col_engine.Run(*stmt.whatif).value().value;
    });
    if (row_value != col_value) {
      std::fprintf(stderr,
                   "[bench] row/columnar answers diverge: %.17g vs %.17g\n",
                   row_value, col_value);
      std::exit(1);
    }
    out.Record("whatif_e2e_german",
               {{"rows", static_cast<double>(gds.db.TotalRows())},
                {"row_store_s", row_s},
                {"columnar_s", col_s},
                {"speedup", row_s / col_s}});
  }

  if (sink == 42.0) std::printf("(unlikely sink)\n");  // defeat DCE
}

}  // namespace hyper

int main(int argc, char** argv) {
  bool smoke = false;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(args.size());
  if (!smoke) {
    benchmark::Initialize(&filtered_argc, args.data());
    benchmark::RunSpecifiedBenchmarks();
  }
  hyper::RunComparisonSuite(smoke);
  return 0;
}
