// Reproduces the §5.5 backdoor-set-size experiment: what-if runtime as the
// adjustment set grows. The paper grew the backdoor set from 2 attributes
// (age, sex) to all attributes and saw runtime rise from 7.2s to 22.45s on
// German-Syn(20k); we sweep the number of adjustment attributes by padding
// the dataset with synthetic confounder-like attributes and running in
// all-attributes mode with increasing subsets exposed.
//
// Also reports the §5.5 For-interaction: conditions on backdoor attributes
// in the For operator *reduce* runtime (the support index prunes to the
// qualifying slice).

#include <cstdio>

#include "bench/bench_util.h"
#include "data/datasets.h"
#include "whatif/engine.h"

namespace hyper {
namespace {

/// German table padded with `count` synthetic binary attributes.
Database PadGerman(const Database& db, size_t count, uint64_t seed) {
  const Table& base = *db.GetTable("German").value();
  std::vector<AttributeDef> attrs = base.schema().attributes();
  for (size_t i = 0; i < count; ++i) {
    attrs.push_back({"Z" + std::to_string(i), ValueType::kInt,
                     Mutability::kMutable});
  }
  Table extended(Schema("German", std::move(attrs), {"Id"}));
  Rng rng(seed);
  for (size_t r = 0; r < base.num_rows(); ++r) {
    Row row = base.row(r);
    for (size_t i = 0; i < count; ++i) {
      row.push_back(Value::Int(rng.UniformInt(0, 1)));
    }
    extended.AppendUnchecked(std::move(row));
  }
  Database out;
  bench::CheckOk(out.AddTable(std::move(extended)), "pad german");
  return out;
}

}  // namespace
}  // namespace hyper

int main(int argc, char** argv) {
  using namespace hyper;
  const bench::BenchFlags flags = bench::ParseFlags(argc, argv);

  auto ds = bench::Unwrap(
      data::MakeByName("german-syn-20k", flags.ScaleOr(0.5), flags.seed),
      "german-syn");
  std::printf("German-Syn rows: %zu\n", ds.db.TotalRows());

  bench::Banner("§5.5: what-if runtime vs adjustment-set size");
  bench::TablePrinter table({"backdoor-attrs", "time(s)"});
  table.PrintHeader();

  // Sweep: expose 0..8 extra synthetic attributes; the all-attributes mode
  // adjusts on every non-target column, so the feature count (and forest
  // training cost) grows with the pad width.
  for (size_t pad : {0u, 2u, 4u, 6u}) {
    Database padded = PadGerman(ds.db, pad, flags.seed);
    whatif::WhatIfOptions options;
    options.estimator = learn::EstimatorKind::kForest;
    options.forest.num_trees = 10;
    // Paper parity (sklearn default): every feature is considered at every
    // split, so training cost scales with the adjustment-set size.
    options.forest.sqrt_features = false;
    options.backdoor = whatif::BackdoorMode::kAllAttributes;
    options.seed = flags.seed;
    whatif::WhatIfEngine engine(&padded, nullptr, options);
    Stopwatch timer;
    auto result = bench::Unwrap(
        engine.RunSql("Use German Update(Status) = 3 "
                      "Output Count(Credit = 1)"),
        "what-if");
    table.PrintRow({std::to_string(result.backdoor.size()),
                    bench::Fmt(timer.ElapsedSeconds(), "%.3f")});
  }
  std::printf("expected shape: time grows with the adjustment-set size\n");

  bench::Banner(
      "§5.5: For conditions on adjustment attributes (paper: reduces "
      "runtime; here within noise — see EXPERIMENTS.md)");
  bench::TablePrinter for_table({"query", "time(s)"});
  for_table.PrintHeader();
  {
    Database padded = PadGerman(ds.db, 8, flags.seed);
    whatif::WhatIfOptions options;
    options.estimator = learn::EstimatorKind::kForest;
    options.forest.num_trees = 10;
    options.forest.sqrt_features = false;
    options.backdoor = whatif::BackdoorMode::kAllAttributes;
    options.seed = flags.seed;
    whatif::WhatIfEngine engine(&padded, nullptr, options);
    {
      Stopwatch timer;
      bench::Unwrap(engine.RunSql("Use German Update(Status) = 3 "
                                  "Output Count(Credit = 1)"),
                    "unconditioned");
      for_table.PrintRow({"no For conditions",
                          bench::Fmt(timer.ElapsedSeconds(), "%.3f")});
    }
    {
      Stopwatch timer;
      bench::Unwrap(
          engine.RunSql("Use German Update(Status) = 3 "
                        "Output Count(Credit = 1) "
                        "For Pre(Z0) = 1 And Pre(Z1) = 1 And Pre(Z2) = 1"),
          "conditioned");
      for_table.PrintRow({"3 For conditions on Z*",
                          bench::Fmt(timer.ElapsedSeconds(), "%.3f")});
    }
  }
  return 0;
}
