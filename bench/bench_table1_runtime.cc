// Reproduces Table 1: average runtime (seconds) of a Count what-if query per
// dataset, for HypeR (graph backdoor), HypeR-NB (no background knowledge)
// and the Indep baseline. The shape to check against the paper: Indep is the
// fastest, HypeR-NB is the slowest (its adjustment set is every attribute),
// and runtime grows with dataset size. The largest dataset also reports
// HypeR-sampled in parentheses, like the paper's last row.
//
// Default run scales the big datasets down; --full uses paper sizes
// (german-syn-1m -> 1M rows).

#include <cstdio>

#include "bench/bench_util.h"
#include "data/datasets.h"
#include "whatif/engine.h"

namespace hyper {
namespace {

struct Workload {
  const char* dataset;
  double default_scale;
  const char* query;
  bool report_sampled;  // add the HypeR-sampled figure (large datasets)
};

const Workload kWorkloads[] = {
    {"adult", 0.3,
     "Use Adult Update(Marital) = 1 Output Count(*) "
     "For Post(Income) = 1 And Pre(Age) = 1",
     false},
    {"german", 1.0,
     "Use German Update(Status) = 3 Output Count(Credit = 1) "
     "For Pre(Age) = 1",
     false},
    {"amazon", 0.3,
     "Use V As (Select T1.PID, T1.Category, T1.Brand, T1.Price, T1.Quality, "
     "Avg(T2.Rating) As Rtng From Product As T1, Review As T2 "
     "Where T1.PID = T2.PID Group By T1.PID, T1.Category, T1.Brand, "
     "T1.Price, T1.Quality) "
     "When Category = 'Laptop' Update(Price) = 1.1 * Pre(Price) "
     "Output Count(Rtng >= 4) For Pre(Category) = 'Laptop'",
     false},
    {"student-syn", 0.5,
     "Use V As (Select S.SID, S.Age, S.Gender, S.Country, S.Attendance, "
     "Avg(P.Grade) As AvgGrade From Student As S, Participation As P "
     "Where S.SID = P.SID "
     "Group By S.SID, S.Age, S.Gender, S.Country, S.Attendance) "
     "Update(Attendance) = 100 Output Count(AvgGrade >= 60)",
     false},
    {"german-syn-20k", 1.0,
     "Use German Update(Status) = 3 Output Count(Credit = 1) "
     "For Pre(Age) = 1",
     false},
    {"german-syn-1m", 0.1,
     "Use German Update(Status) = 3 Output Count(Credit = 1) "
     "For Pre(Age) = 1",
     true},
};

whatif::WhatIfOptions ModeOptions(whatif::BackdoorMode mode,
                                  size_t sample_size) {
  whatif::WhatIfOptions options;
  options.estimator = learn::EstimatorKind::kForest;
  options.forest.num_trees = 10;
  options.forest.tree.max_depth = 10;
  options.forest.tree.max_thresholds = 32;
  options.backdoor = mode;
  options.sample_size = sample_size;
  return options;
}

double TimeRun(const data::Dataset& ds, const char* query,
               const whatif::WhatIfOptions& options,
               double* value_out = nullptr) {
  whatif::WhatIfEngine engine(&ds.db, &ds.graph, options);
  Stopwatch timer;
  auto result = engine.RunSql(query);
  const double seconds = timer.ElapsedSeconds();
  if (!result.ok()) {
    std::fprintf(stderr, "[bench] query failed on %s: %s\n", ds.name.c_str(),
                 result.status().ToString().c_str());
    std::exit(1);
  }
  if (value_out != nullptr) *value_out = result->value;
  return seconds;
}

}  // namespace
}  // namespace hyper

int main(int argc, char** argv) {
  using namespace hyper;
  const bench::BenchFlags flags = bench::ParseFlags(argc, argv);

  bench::Banner(
      "Table 1: average what-if (Count) runtime in seconds per dataset");
  std::printf("expected shape: Indep < HypeR < HypeR-NB; grows with rows\n\n");

  bench::TablePrinter table(
      {"dataset", "rows", "HypeR", "HypeR-row", "HypeR-NB", "Indep"});
  table.PrintHeader();

  for (const auto& workload : kWorkloads) {
    const double scale = flags.ScaleOr(workload.default_scale);
    auto ds = bench::Unwrap(
        data::MakeByName(workload.dataset, scale, flags.seed), "dataset");

    // HypeR on the columnar engine vs the legacy row interpreter: the
    // answers must agree exactly (fixed seed) — only the latency may differ.
    double columnar_value = 0.0, row_value = 0.0;
    const double hyper_s =
        TimeRun(ds, workload.query,
                ModeOptions(whatif::BackdoorMode::kGraph, 0),
                &columnar_value);
    whatif::WhatIfOptions row_options =
        ModeOptions(whatif::BackdoorMode::kGraph, 0);
    row_options.use_columnar = false;
    const double hyper_row_s =
        TimeRun(ds, workload.query, row_options, &row_value);
    if (columnar_value != row_value) {
      std::fprintf(stderr,
                   "[bench] columnar/row answers diverge on %s: %.17g vs "
                   "%.17g\n",
                   workload.dataset, columnar_value, row_value);
      std::exit(1);
    }
    const double nb_s = TimeRun(
        ds, workload.query,
        ModeOptions(whatif::BackdoorMode::kAllAttributes, 0));
    const double indep_s =
        TimeRun(ds, workload.query,
                ModeOptions(whatif::BackdoorMode::kUpdateOnly, 0));

    std::string hyper_cell = bench::Fmt(hyper_s, "%.3f");
    std::string nb_cell = bench::Fmt(nb_s, "%.3f");
    if (workload.report_sampled && ds.db.TotalRows() > 50000) {
      const double sampled_s =
          TimeRun(ds, workload.query,
                  ModeOptions(whatif::BackdoorMode::kGraph, 50000));
      const double sampled_nb_s = TimeRun(
          ds, workload.query,
          ModeOptions(whatif::BackdoorMode::kAllAttributes, 50000));
      hyper_cell += " (" + bench::Fmt(sampled_s, "%.3f") + ")";
      nb_cell += " (" + bench::Fmt(sampled_nb_s, "%.3f") + ")";
    }
    table.PrintRow({workload.dataset, std::to_string(ds.db.TotalRows()),
                    hyper_cell, bench::Fmt(hyper_row_s, "%.3f"), nb_cell,
                    bench::Fmt(indep_s, "%.3f")});
  }
  std::printf(
      "\n(values in parentheses: HypeR(-NB)-sampled with a 50k training "
      "sample)\n");
  return 0;
}
