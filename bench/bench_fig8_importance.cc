// Reproduces Figure 8: what-if query output when each attribute is set to
// its minimum vs maximum value — a larger min/max gap marks a more important
// attribute.
//
// Shape to check against the paper:
//   (a) German: Status and CreditHistory show the widest gaps (dominant
//       drivers of credit), Housing and Savings much narrower.
//   (b) Adult: Marital, Occupation and Education dominate income; Workclass
//       ("Class") shows a small gap.

#include <cstdio>

#include "bench/bench_util.h"
#include "data/datasets.h"
#include "whatif/engine.h"

namespace hyper {
namespace {

struct Sweep {
  const char* attribute;
  int min_value;
  int max_value;
};

void RunPanel(const char* title, const data::Dataset& ds,
              const char* relation, const char* outcome_pred,
              const std::vector<Sweep>& sweeps,
              const bench::BenchFlags& flags) {
  bench::Banner(title);
  bench::TablePrinter table({"attribute", "min-output", "max-output", "gap"});
  table.PrintHeader();

  whatif::WhatIfOptions options;
  options.estimator = learn::EstimatorKind::kForest;
  options.forest.num_trees = 10;
  options.seed = flags.seed;
  whatif::WhatIfEngine engine(&ds.db, &ds.graph, options);

  const size_t rows = ds.db.TotalRows();
  for (const Sweep& sweep : sweeps) {
    auto run = [&](int value) {
      const std::string query =
          StrFormat("Use %s Update(%s) = %d Output Count(%s)", relation,
                    sweep.attribute, value, outcome_pred);
      return bench::Unwrap(engine.RunSql(query), sweep.attribute).value /
             static_cast<double>(rows);
    };
    const double lo = run(sweep.min_value);
    const double hi = run(sweep.max_value);
    table.PrintRow({sweep.attribute, bench::Fmt(lo, "%.3f"),
                    bench::Fmt(hi, "%.3f"), bench::Fmt(hi - lo, "%.3f")});
  }
}

}  // namespace
}  // namespace hyper

int main(int argc, char** argv) {
  using namespace hyper;
  const bench::BenchFlags flags = bench::ParseFlags(argc, argv);

  {
    auto german = bench::Unwrap(
        data::MakeByName("german-syn-20k", flags.ScaleOr(0.5), flags.seed),
        "german");
    RunPanel("Figure 8a: German — fraction with good credit (min vs max)",
             german, "German", "Credit = 1",
             {{"Status", 0, 3},
              {"CreditHistory", 0, 2},
              {"Housing", 0, 2},
              {"Savings", 0, 2}},
             flags);
    std::printf(
        "expected shape: Status and CreditHistory gaps dominate (§5.3)\n");
  }
  {
    auto adult = bench::Unwrap(
        data::MakeByName("adult", flags.ScaleOr(0.3), flags.seed), "adult");
    RunPanel("Figure 8b: Adult — fraction with income > 50K (min vs max)",
             adult, "Adult", "Income = 1",
             {{"Marital", 0, 1},
              {"Occupation", 0, 3},
              {"Education", 0, 3},
              {"Workclass", 0, 2}},
             flags);
    std::printf(
        "expected shape: Marital/Occupation/Education dominate; Workclass "
        "gap is small (§5.3)\n");
  }
  return 0;
}
