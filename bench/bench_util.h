#ifndef HYPER_BENCH_BENCH_UTIL_H_
#define HYPER_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/stopwatch.h"
#include "common/strings.h"

namespace hyper::bench {

/// Common bench flags. Every bench binary runs with no arguments at a
/// scaled-down size (so `for b in build/bench/*; do $b; done` finishes in
/// minutes); `--full` switches to paper-scale parameters.
struct BenchFlags {
  bool full = false;
  double scale = -1.0;  // explicit override of the dataset scale
  uint64_t seed = 23;

  /// Dataset scale to use: explicit --scale wins, then --full (1.0),
  /// else the bench's default.
  double ScaleOr(double default_scale) const {
    if (scale > 0) return scale;
    return full ? 1.0 : default_scale;
  }
};

inline BenchFlags ParseFlags(int argc, char** argv) {
  BenchFlags flags;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) {
      flags.full = true;
    } else if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      flags.scale = std::atof(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      flags.seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("flags: --full | --scale=<0..1> | --seed=<n>\n");
      std::exit(0);
    }
  }
  return flags;
}

/// Fixed-width table printer for paper-shaped output.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers, int width = 14)
      : headers_(std::move(headers)), width_(width) {}

  void PrintHeader() const {
    for (const std::string& h : headers_) {
      std::printf("%-*s", width_, h.c_str());
    }
    std::printf("\n");
    for (size_t i = 0; i < headers_.size() * static_cast<size_t>(width_);
         ++i) {
      std::printf("-");
    }
    std::printf("\n");
  }

  void PrintRow(const std::vector<std::string>& cells) const {
    for (const std::string& c : cells) {
      std::printf("%-*s", width_, c.c_str());
    }
    std::printf("\n");
  }

 private:
  std::vector<std::string> headers_;
  int width_;
};

inline std::string Fmt(double v, const char* fmt = "%.4g") {
  return StrFormat(fmt, v);
}

inline void Banner(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Appends one machine-readable benchmark record as a single JSON object per
/// line (the `BENCH_*.json` convention: one file per bench binary, one line
/// per measurement, numeric metrics only). The line is also echoed to stdout
/// so logs stay self-contained.
class JsonLines {
 public:
  /// Truncates `path` on construction: each bench run owns its file.
  explicit JsonLines(const std::string& path) : path_(path) {
    if (FILE* f = std::fopen(path_.c_str(), "w")) std::fclose(f);
  }

  void Record(const std::string& bench,
              const std::vector<std::pair<std::string, double>>& metrics) {
    std::string line = "{\"bench\":\"" + bench + "\"";
    for (const auto& [key, value] : metrics) {
      line += StrFormat(",\"%s\":%.6g", key.c_str(), value);
    }
    line += "}";
    std::printf("%s\n", line.c_str());
    if (FILE* f = std::fopen(path_.c_str(), "a")) {
      std::fprintf(f, "%s\n", line.c_str());
      std::fclose(f);
    }
  }

 private:
  std::string path_;
};

/// Times `fn` over `reps` repetitions and returns seconds per repetition.
/// Callers must fold some observable result of each repetition into a
/// variable that outlives the call, or the compiler may delete the work.
template <typename Fn>
double TimePerRep(size_t reps, Fn&& fn) {
  Stopwatch timer;
  for (size_t i = 0; i < reps; ++i) fn();
  return timer.ElapsedSeconds() / static_cast<double>(reps);
}

/// Aborts the bench with a message when a Result/Status is an error: bench
/// harnesses have no meaningful recovery path.
template <typename T>
T Unwrap(hyper::Result<T> result, const char* context) {
  if (!result.ok()) {
    std::fprintf(stderr, "[bench] %s failed: %s\n", context,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

inline void CheckOk(const hyper::Status& status, const char* context) {
  if (!status.ok()) {
    std::fprintf(stderr, "[bench] %s failed: %s\n", context,
                 status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace hyper::bench

#endif  // HYPER_BENCH_BENCH_UTIL_H_
