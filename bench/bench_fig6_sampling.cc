// Reproduces Figure 6: the effect of the HypeR-sampled training-sample size
// on (a) query-output stability and (b) running time, on the scaled
// German-Syn (1M) dataset.
//
// Shape to check against the paper: the standard deviation of the output
// shrinks as the sample grows (within ~1% of the mean from 100k samples in
// the paper; proportionally here), while HypeR-sampled runtime grows roughly
// linearly in the sample and undercuts full HypeR once the sample is smaller
// than the dataset.

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "data/datasets.h"
#include "whatif/engine.h"

namespace hyper {
namespace {

constexpr const char* kQuery =
    "Use German Update(Status) = 3 Output Count(Credit = 1) For Pre(Age) = 1";

whatif::WhatIfOptions Options(size_t sample, uint64_t seed) {
  whatif::WhatIfOptions options;
  options.estimator = learn::EstimatorKind::kForest;
  options.forest.num_trees = 10;
  options.forest.tree.max_depth = 10;
  options.backdoor = whatif::BackdoorMode::kGraph;
  options.sample_size = sample;
  options.seed = seed;
  return options;
}

}  // namespace
}  // namespace hyper

int main(int argc, char** argv) {
  using namespace hyper;
  const bench::BenchFlags flags = bench::ParseFlags(argc, argv);
  const double scale = flags.ScaleOr(0.2);  // 200k rows by default

  auto ds = bench::Unwrap(data::MakeByName("german-syn-1m", scale, flags.seed),
                          "dataset");
  const size_t n = ds.db.TotalRows();
  std::printf("German-Syn rows: %zu\n", n);

  // Reference: full HypeR (all rows used for training).
  double full_value = 0.0;
  double full_seconds = 0.0;
  {
    whatif::WhatIfEngine engine(&ds.db, &ds.graph, Options(0, flags.seed));
    Stopwatch timer;
    auto result = bench::Unwrap(engine.RunSql(kQuery), "full HypeR");
    full_seconds = timer.ElapsedSeconds();
    full_value = result.value;
  }

  bench::Banner("Figure 6a: HypeR-sampled output vs sample size");
  std::printf("full-HypeR output (reference line): %.4f\n\n", full_value);
  bench::TablePrinter quality(
      {"sample", "mean", "stddev", "rel-stddev", "|mean-full|"});
  quality.PrintHeader();

  const size_t samples[] = {n / 200, n / 40, n / 8, n / 4, n / 2};
  const int kRepeats = 5;
  std::vector<std::pair<size_t, double>> timing;
  for (size_t sample : samples) {
    if (sample == 0 || sample >= n) continue;
    double sum = 0, sq = 0, seconds = 0;
    for (int rep = 0; rep < kRepeats; ++rep) {
      whatif::WhatIfEngine engine(&ds.db, &ds.graph,
                                  Options(sample, flags.seed + 101 * rep));
      Stopwatch timer;
      auto result = bench::Unwrap(engine.RunSql(kQuery), "sampled HypeR");
      seconds += timer.ElapsedSeconds();
      sum += result.value;
      sq += result.value * result.value;
    }
    const double mean = sum / kRepeats;
    const double var = std::max(0.0, sq / kRepeats - mean * mean);
    const double stddev = std::sqrt(var);
    quality.PrintRow({std::to_string(sample), bench::Fmt(mean, "%.4f"),
                      bench::Fmt(stddev, "%.4f"),
                      bench::Fmt(stddev / mean, "%.4f"),
                      bench::Fmt(std::fabs(mean - full_value), "%.4f")});
    timing.emplace_back(sample, seconds / kRepeats);
  }

  bench::Banner("Figure 6b: running time vs sample size");
  bench::TablePrinter time_table({"sample", "HypeR-sampled(s)", "HypeR(s)"});
  time_table.PrintHeader();
  for (const auto& [sample, seconds] : timing) {
    time_table.PrintRow({std::to_string(sample), bench::Fmt(seconds, "%.3f"),
                         bench::Fmt(full_seconds, "%.3f")});
  }
  std::printf(
      "\nexpected shape: rel-stddev falls with sample size; sampled time "
      "grows ~linearly and stays below full HypeR\n");
  return 0;
}
