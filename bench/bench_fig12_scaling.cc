// Reproduces Figure 12: running time as a function of dataset size on
// German-Syn, averaged over several query variants.
//
//   (a) What-if: HypeR and Indep grow roughly linearly in rows; the sampled
//       variant flattens once the dataset exceeds the training sample.
//   (b) How-to: HypeR (IP over candidate what-ifs) stays far below
//       Opt-HowTo (exhaustive joint enumeration).

#include <cstdio>

#include "baselines/opt_howto.h"
#include "bench/bench_util.h"
#include "data/datasets.h"
#include "howto/engine.h"
#include "sql/parser.h"
#include "whatif/engine.h"

namespace hyper {
namespace {

const char* kWhatIfQueries[] = {
    "Use German Update(Status) = 3 Output Count(Credit = 1)",
    "Use German Update(Savings) = 2 Output Count(Credit = 1) "
    "For Pre(Age) = 1",
    "Use German Update(Housing) = 2 Output Avg(Post(Credit))",
    "Use German When Age = 2 Update(Status) = 0 Output Count(Credit = 1)",
    "Use German Update(CreditAmount) = 3 Output Count(Credit = 1) "
    "For Post(Credit) = 1",
};

constexpr const char* kHowToQuery =
    "Use German HowToUpdate Status, Savings, Housing "
    "ToMaximize Avg(Post(Credit))";

double AvgWhatIfSeconds(const data::Dataset& ds,
                        const whatif::WhatIfOptions& options) {
  whatif::WhatIfEngine engine(&ds.db, &ds.graph, options);
  double total = 0;
  size_t count = 0;
  for (const char* query : kWhatIfQueries) {
    Stopwatch timer;
    bench::Unwrap(engine.RunSql(query), "what-if");
    total += timer.ElapsedSeconds();
    ++count;
  }
  return total / static_cast<double>(count);
}

}  // namespace
}  // namespace hyper

int main(int argc, char** argv) {
  using namespace hyper;
  const bench::BenchFlags flags = bench::ParseFlags(argc, argv);

  const double top_scale = flags.ScaleOr(0.2);  // 200k default, 1M with --full
  const double fractions[] = {0.05, 0.25, 0.5, 1.0};

  bench::Banner("Figure 12a: what-if time vs dataset size (avg of 5 queries)");
  bench::TablePrinter what_table(
      {"rows", "HypeR(s)", "HypeR-sampled(s)", "Indep(s)"});
  what_table.PrintHeader();

  std::vector<std::pair<size_t, data::Dataset>> datasets;
  for (double fraction : fractions) {
    auto ds = bench::Unwrap(
        data::MakeByName("german-syn-1m", top_scale * fraction, flags.seed),
        "german-syn");
    datasets.emplace_back(ds.db.TotalRows(), std::move(ds));
  }

  for (auto& [rows, ds] : datasets) {
    whatif::WhatIfOptions hyper;
    hyper.estimator = learn::EstimatorKind::kForest;
    hyper.forest.num_trees = 10;
    hyper.seed = flags.seed;
    whatif::WhatIfOptions sampled = hyper;
    sampled.sample_size = 20000;
    whatif::WhatIfOptions indep = hyper;
    indep.backdoor = whatif::BackdoorMode::kUpdateOnly;

    what_table.PrintRow({std::to_string(rows),
                         bench::Fmt(AvgWhatIfSeconds(ds, hyper), "%.3f"),
                         bench::Fmt(AvgWhatIfSeconds(ds, sampled), "%.3f"),
                         bench::Fmt(AvgWhatIfSeconds(ds, indep), "%.3f")});
  }
  std::printf(
      "expected shape: HypeR/Indep ~linear in rows; sampled flattens beyond "
      "20k rows\n");

  bench::Banner("Figure 12b: how-to time vs dataset size");
  bench::TablePrinter how_table({"rows", "HypeR(s)", "Opt-HowTo(s)"});
  how_table.PrintHeader();
  for (auto& [rows, ds] : datasets) {
    howto::HowToOptions options;
    options.whatif.estimator = learn::EstimatorKind::kFrequency;
    howto::HowToEngine engine(&ds.db, &ds.graph, options);

    Stopwatch hyper_timer;
    bench::Unwrap(engine.RunSql(kHowToQuery), "how-to");
    const double hyper_seconds = hyper_timer.ElapsedSeconds();

    auto stmt = bench::Unwrap(sql::ParseSql(kHowToQuery), "parse");
    auto candidates =
        bench::Unwrap(engine.EnumerateCandidates(*stmt.howto), "candidates");
    auto scorer = baselines::MakeEngineScorer(&ds.db, &ds.graph,
                                              options.whatif,
                                              stmt.howto.get());
    Stopwatch opt_timer;
    bench::Unwrap(baselines::OptHowTo(*stmt.howto, candidates, scorer),
                  "OptHowTo");
    how_table.PrintRow({std::to_string(rows),
                        bench::Fmt(hyper_seconds, "%.3f"),
                        bench::Fmt(opt_timer.ElapsedSeconds(), "%.3f")});
  }
  std::printf("expected shape: Opt-HowTo well above HypeR at every size\n");
  return 0;
}
