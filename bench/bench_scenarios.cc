// Scenario-service benchmark: what the serving layer saves.
//
//   ./build/bench_scenarios              # scaled-down german-syn
//   ./build/bench_scenarios --full       # paper-scale
//   ./build/bench_scenarios --smoke      # tiny + correctness gate only
//
// Three measurements, each gated on bit-for-bit equality with fresh
// single-query runs (any mismatch exits non-zero, so scripts/check.sh can
// use --smoke as a pre-merge gate):
//
//   1. whatif_cold_vs_warm   — the same what-if cold (prepare + train) vs
//                              warm (plan + estimators from the cache).
//   2. sweep_batch           — N interventions over one shared view: fresh
//                              engine runs vs warm-cache singles vs one
//                              SubmitWhatIfBatch against one prepared plan.
//   3. howto_shared          — a how-to run with per-candidate retraining
//                              (legacy) vs shared-plan candidate scoring.
//   4. bench_howto           — parallel candidate scoring at 1/2/4/8 threads.
//   5. branch_fanout         — chained branch deltas, cold vs staged reuse.
//   6. governance_overhead   — warm what-if with a generous budget armed vs
//                              ungoverned; gated within 2%.
//   7. durability_recovery   — journaled applies vs in-memory applies, then
//                              a crash (no snapshot, no drain) and the WAL
//                              replay time to a bit-identical service.

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "data/datasets.h"
#include "howto/engine.h"
#include "service/scenario_service.h"
#include "sql/parser.h"
#include "whatif/engine.h"

using namespace hyper;
using bench::Banner;
using bench::CheckOk;
using bench::Fmt;
using bench::JsonLines;
using bench::TablePrinter;
using bench::Unwrap;

namespace {

size_t g_mismatches = 0;

void CheckEqual(double fresh, double served, const std::string& what) {
  // The service contract is bit-for-bit identity, not tolerance.
  if (std::memcmp(&fresh, &served, sizeof(double)) != 0) {
    std::fprintf(stderr,
                 "[bench_scenarios] MISMATCH %s: fresh %.17g vs served "
                 "%.17g\n",
                 what.c_str(), fresh, served);
    ++g_mismatches;
  }
}

whatif::WhatIfOptions ForestOptions(size_t num_trees) {
  whatif::WhatIfOptions options;
  options.estimator = learn::EstimatorKind::kForest;
  options.forest.num_trees = num_trees;
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchFlags flags = bench::ParseFlags(argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const double scale = flags.ScaleOr(smoke ? 0.05 : 0.35);
  const size_t num_trees = smoke ? 4 : 16;

  data::Dataset ds = Unwrap(
      data::MakeByName("german-syn-20k", scale, flags.seed), "make german");
  const whatif::WhatIfOptions options = ForestOptions(num_trees);
  JsonLines json("BENCH_scenarios.json");

  const std::string query =
      "Use German When Status = 1 Update(Status) = 2 "
      "Output Count(Credit = 1)";

  // -------------------------------------------------------------------
  Banner("1. repeated what-if: cold vs warm plan cache");
  service::ServiceOptions service_options;
  service_options.whatif = options;
  service_options.num_threads = 1;
  service::ScenarioService service(ds.db, ds.graph, service_options);

  whatif::WhatIfEngine fresh_engine(&ds.db, &ds.graph, options);
  const whatif::WhatIfResult fresh =
      Unwrap(fresh_engine.RunSql(query), "fresh what-if");

  service::Response cold = service.Submit({"main", query, {}});
  CheckOk(cold.status, "cold submit");
  CheckEqual(fresh.value, cold.whatif.value, "cold what-if");

  const size_t warm_reps = smoke ? 2 : 5;
  double warm_seconds = 0.0;
  for (size_t i = 0; i < warm_reps; ++i) {
    service::Response warm = service.Submit({"main", query, {}});
    CheckOk(warm.status, "warm submit");
    CheckEqual(fresh.value, warm.whatif.value, "warm what-if");
    if (!warm.whatif.plan_cache_hit) {
      std::fprintf(stderr, "[bench_scenarios] warm run missed the cache\n");
      ++g_mismatches;
    }
    warm_seconds += warm.whatif.total_seconds;
  }
  warm_seconds /= static_cast<double>(warm_reps);
  const double cold_seconds = cold.whatif.total_seconds;

  TablePrinter t1({"variant", "seconds", "speedup"});
  t1.PrintHeader();
  t1.PrintRow({"cold (prepare+train)", Fmt(cold_seconds), "1.0"});
  t1.PrintRow({"warm (cached plan)", Fmt(warm_seconds),
               Fmt(cold_seconds / warm_seconds, "%.1f")});
  json.Record("whatif_cold_vs_warm",
              {{"rows", static_cast<double>(fresh.view_rows)},
               {"cold_seconds", cold_seconds},
               {"warm_seconds", warm_seconds},
               {"speedup", cold_seconds / warm_seconds},
               {"equal", g_mismatches == 0 ? 1.0 : 0.0}});

  // -------------------------------------------------------------------
  Banner("2. intervention sweep: N singles vs batch on one prepared plan");
  const size_t sweep_n = smoke ? 4 : 12;
  std::vector<std::vector<whatif::UpdateSpec>> interventions;
  std::vector<std::string> sweep_sql;
  for (size_t i = 0; i < sweep_n; ++i) {
    whatif::UpdateSpec spec;
    spec.attribute = "Status";
    spec.func = sql::UpdateFuncKind::kSet;
    spec.constant = Value::Int(static_cast<int64_t>(i % 4));
    interventions.push_back({spec});
    sweep_sql.push_back(
        "Use German When Status = 1 Update(Status) = " +
        std::to_string(i % 4) + " Output Count(Credit = 1)");
  }

  // Fresh singles: a new engine run per intervention, nothing shared.
  std::vector<double> fresh_values(sweep_n);
  Stopwatch sweep_timer;
  for (size_t i = 0; i < sweep_n; ++i) {
    fresh_values[i] =
        Unwrap(fresh_engine.RunSql(sweep_sql[i]), "sweep fresh").value;
  }
  const double fresh_seconds = sweep_timer.ElapsedSeconds();

  // Warm-cache singles: one service, the plan is prepared once.
  service::ScenarioService sweep_service(ds.db, ds.graph, service_options);
  sweep_timer.Restart();
  for (size_t i = 0; i < sweep_n; ++i) {
    service::Response r = sweep_service.Submit({"main", sweep_sql[i], {}});
    CheckOk(r.status, "sweep single");
    CheckEqual(fresh_values[i], r.whatif.value, "sweep single " + sweep_sql[i]);
  }
  const double singles_seconds = sweep_timer.ElapsedSeconds();

  // Batch: one prepared plan, one sharded pass.
  service::ScenarioService batch_service(ds.db, ds.graph, service_options);
  sweep_timer.Restart();
  auto batch = Unwrap(
      batch_service.SubmitWhatIfBatch("main", query, interventions),
      "sweep batch");
  const double batch_seconds = sweep_timer.ElapsedSeconds();
  for (size_t i = 0; i < sweep_n; ++i) {
    CheckOk(batch[i].status, "sweep batch intervention status");
    CheckEqual(fresh_values[i], batch[i].result.value,
               "sweep batch intervention " + std::to_string(i));
  }

  TablePrinter t2({"variant", "seconds", "speedup"});
  t2.PrintHeader();
  t2.PrintRow({"fresh singles", Fmt(fresh_seconds), "1.0"});
  t2.PrintRow({"warm singles", Fmt(singles_seconds),
               Fmt(fresh_seconds / singles_seconds, "%.1f")});
  t2.PrintRow({"one batch", Fmt(batch_seconds),
               Fmt(fresh_seconds / batch_seconds, "%.1f")});
  json.Record("sweep_batch",
              {{"n", static_cast<double>(sweep_n)},
               {"fresh_seconds", fresh_seconds},
               {"warm_singles_seconds", singles_seconds},
               {"batch_seconds", batch_seconds},
               {"speedup_warm", fresh_seconds / singles_seconds},
               {"speedup_batch", fresh_seconds / batch_seconds},
               {"equal", g_mismatches == 0 ? 1.0 : 0.0}});

  // -------------------------------------------------------------------
  Banner("3. how-to: per-candidate retraining vs shared estimators");
  const std::string howto_sql =
      "Use German HowToUpdate Status, Savings "
      "ToMaximize Count(Credit = 1)";
  howto::HowToOptions legacy;
  legacy.whatif = options;
  legacy.share_plans = false;
  howto::HowToOptions shared_options = legacy;
  shared_options.share_plans = true;

  howto::HowToEngine legacy_engine(&ds.db, &ds.graph, legacy);
  Stopwatch howto_timer;
  howto::HowToResult before = Unwrap(legacy_engine.RunSql(howto_sql),
                                     "how-to legacy");
  const double before_seconds = howto_timer.ElapsedSeconds();

  howto::HowToEngine shared_engine(&ds.db, &ds.graph, shared_options);
  howto_timer.Restart();
  howto::HowToResult after = Unwrap(shared_engine.RunSql(howto_sql),
                                    "how-to shared");
  const double after_seconds = howto_timer.ElapsedSeconds();

  CheckEqual(before.baseline_value, after.baseline_value, "how-to baseline");
  CheckEqual(before.objective_value, after.objective_value,
             "how-to objective");
  if (before.PlanToString() != after.PlanToString()) {
    std::fprintf(stderr, "[bench_scenarios] MISMATCH how-to plans: %s vs %s\n",
                 before.PlanToString().c_str(), after.PlanToString().c_str());
    ++g_mismatches;
  }
  for (size_t a = 0; a < before.candidates.size(); ++a) {
    for (size_t i = 0; i < before.candidates[a].size(); ++i) {
      CheckEqual(before.candidates[a][i].objective_value,
                 after.candidates[a][i].objective_value,
                 "how-to candidate " + std::to_string(a) + "/" +
                     std::to_string(i));
    }
  }

  TablePrinter t3({"variant", "seconds", "speedup", "trainings-saved"});
  t3.PrintHeader();
  t3.PrintRow({"per-candidate", Fmt(before_seconds), "1.0", "0"});
  t3.PrintRow({"shared plans", Fmt(after_seconds),
               Fmt(before_seconds / after_seconds, "%.1f"),
               Fmt(static_cast<double>(after.pattern_cache_hits), "%.0f")});
  json.Record("howto_shared",
              {{"candidates", static_cast<double>(before.candidates_evaluated)},
               {"legacy_seconds", before_seconds},
               {"shared_seconds", after_seconds},
               {"speedup", before_seconds / after_seconds},
               {"pattern_cache_hits",
                static_cast<double>(after.pattern_cache_hits)},
               {"equal", g_mismatches == 0 ? 1.0 : 0.0}});

  // -------------------------------------------------------------------
  Banner("4. bench_howto: parallel candidate scoring at 1/2/4/8 threads");
  // One shared plan cache, warmed once: the timed runs then measure the
  // candidate-scoring loop itself (per-candidate Evaluate sharded over the
  // pool), not plan construction or estimator training. Answers must be
  // bit-identical at every thread count.
  service::PlanCache howto_cache(64);
  const std::string howto_scope =
      "bench|" + std::to_string(ds.db.ContentFingerprint());
  auto howto_engine_at = [&](size_t threads) {
    howto::HowToOptions ho;
    ho.whatif = options;
    ho.whatif.num_threads = threads;
    ho.plan_cache = &howto_cache;
    ho.cache_scope = howto_scope;
    return howto::HowToEngine(&ds.db, &ds.graph, ho);
  };
  {
    // Warm: prepares the per-attribute plans and trains their estimators.
    Unwrap(howto_engine_at(1).RunSql(howto_sql), "how-to warm");
  }

  const size_t thread_counts[] = {1, 2, 4, 8};
  const size_t howto_reps = smoke ? 1 : 5;
  std::vector<double> howto_seconds;
  std::vector<howto::HowToResult> howto_results;
  for (size_t threads : thread_counts) {
    howto::HowToEngine engine = howto_engine_at(threads);
    double best = 0.0;
    for (size_t rep = 0; rep < howto_reps; ++rep) {
      howto_timer.Restart();
      howto::HowToResult r = Unwrap(engine.RunSql(howto_sql),
                                    "how-to parallel");
      const double seconds = howto_timer.ElapsedSeconds();
      if (rep == 0 || seconds < best) best = seconds;
      if (rep == 0) howto_results.push_back(std::move(r));
    }
    howto_seconds.push_back(best);
  }
  const size_t mismatches_before_howto = g_mismatches;
  const howto::HowToResult& serial = howto_results[0];
  for (size_t k = 1; k < howto_results.size(); ++k) {
    const howto::HowToResult& parallel = howto_results[k];
    const std::string tag =
        " @ " + std::to_string(thread_counts[k]) + " threads";
    CheckEqual(serial.baseline_value, parallel.baseline_value,
               "how-to parallel baseline" + tag);
    CheckEqual(serial.objective_value, parallel.objective_value,
               "how-to parallel objective" + tag);
    if (serial.PlanToString() != parallel.PlanToString()) {
      std::fprintf(stderr,
                   "[bench_scenarios] MISMATCH how-to plan%s: %s vs %s\n",
                   tag.c_str(), serial.PlanToString().c_str(),
                   parallel.PlanToString().c_str());
      ++g_mismatches;
    }
    if (serial.candidates.size() != parallel.candidates.size()) {
      std::fprintf(stderr,
                   "[bench_scenarios] MISMATCH how-to candidate shape%s\n",
                   tag.c_str());
      ++g_mismatches;
      continue;
    }
    for (size_t a = 0; a < serial.candidates.size(); ++a) {
      if (serial.candidates[a].size() != parallel.candidates[a].size()) {
        std::fprintf(stderr,
                     "[bench_scenarios] MISMATCH how-to candidate shape%s\n",
                     tag.c_str());
        ++g_mismatches;
        break;
      }
      for (size_t i = 0; i < serial.candidates[a].size(); ++i) {
        CheckEqual(serial.candidates[a][i].objective_value,
                   parallel.candidates[a][i].objective_value,
                   "how-to parallel candidate " + std::to_string(a) + "/" +
                       std::to_string(i) + tag);
      }
    }
  }

  TablePrinter t4({"threads", "seconds", "speedup"});
  t4.PrintHeader();
  std::vector<std::pair<std::string, double>> howto_record{
      {"candidates", static_cast<double>(serial.candidates_evaluated)},
      {"equal", 0.0}};  // patched below
  for (size_t k = 0; k < howto_results.size(); ++k) {
    t4.PrintRow({std::to_string(thread_counts[k]), Fmt(howto_seconds[k]),
                 Fmt(howto_seconds[0] / howto_seconds[k], "%.2f")});
    howto_record.emplace_back(
        "seconds_t" + std::to_string(thread_counts[k]), howto_seconds[k]);
    howto_record.emplace_back(
        "speedup_t" + std::to_string(thread_counts[k]),
        howto_seconds[0] / howto_seconds[k]);
  }
  howto_record[1].second = g_mismatches == mismatches_before_howto ? 1.0 : 0.0;
  json.Record("bench_howto", howto_record);

  // -------------------------------------------------------------------
  Banner("5. branch fan-out: chained 1-cell deltas, cold vs staged reuse");
  // Real branch traffic: N branches chained off main, each differing from
  // its parent by a single overridden cell on an attribute the measured
  // query's estimators never read (Savings is outside the {Age, Housing}
  // adjustment set, the update attribute and the For/Output references).
  // The staged pipeline must serve every branch's first query by patching
  // the trunk's columnar image and reusing its Causal/Learn stages — the
  // per-stage miss counters prove it — where the monolithic arm re-prepares
  // and retrains per branch. Answers are gated bit-identical across arms.
  const size_t fan_n = smoke ? 3 : 8;
  auto fan_branch_sql = [](size_t i) {
    return "Use German When Id = " + std::to_string(i) +
           " Update(Savings) = " + std::to_string(i % 3) + " Output Count(*)";
  };

  service::ServiceOptions staged_opts = service_options;
  service::ServiceOptions monolithic_opts = service_options;
  monolithic_opts.whatif.staged_prepare = false;

  struct FanArm {
    std::vector<double> values;
    std::vector<double> prepare_seconds;
    double submit_seconds = 0.0;
  };
  auto run_arm = [&](service::ScenarioService& svc) {
    FanArm arm;
    // Warm the trunk first: branch traffic rides on an already-serving
    // world in both arms.
    service::Response trunk = svc.Submit({"main", query, {}});
    CheckOk(trunk.status, "fan-out trunk");
    std::string parent = "main";
    for (size_t i = 0; i < fan_n; ++i) {
      const std::string name = "fan" + std::to_string(i);
      CheckOk(svc.CreateScenario(name, parent), "fan-out create");
      auto updated = svc.ApplyHypotheticalSql(name, fan_branch_sql(i));
      CheckOk(updated.status(), "fan-out delta");
      if (updated.ok() && *updated != 1) {
        std::fprintf(stderr, "[bench_scenarios] fan-out delta hit %zu rows\n",
                     *updated);
        ++g_mismatches;
      }
      Stopwatch branch_timer;
      service::Response r = svc.Submit({name, query, {}});
      arm.submit_seconds += branch_timer.ElapsedSeconds();
      CheckOk(r.status, "fan-out submit");
      arm.values.push_back(r.whatif.value);
      arm.prepare_seconds.push_back(r.whatif.prepare_seconds);
      parent = name;
    }
    return arm;
  };

  service::ScenarioService staged_svc(ds.db, ds.graph, staged_opts);
  const FanArm staged_arm = run_arm(staged_svc);
  service::ScenarioService monolithic_svc(ds.db, ds.graph, monolithic_opts);
  const FanArm cold_arm = run_arm(monolithic_svc);

  for (size_t i = 0; i < fan_n; ++i) {
    CheckEqual(cold_arm.values[i], staged_arm.values[i],
               "fan-out branch " + std::to_string(i));
  }
  // Per-stage prepare counters: N+1 plans (trunk + one per branch) were
  // assembled from ONE Causal build and ONE Learn build (training ran
  // exactly once); only the Scope image (patched, not re-encoded) and the
  // per-query constants rebuilt per branch.
  const service::PlanCacheStats fan_stats = staged_svc.cache_stats();
  auto gate_counter = [&](const char* what, size_t got, size_t want) {
    if (got != want) {
      std::fprintf(stderr,
                   "[bench_scenarios] stage counter %s = %zu, expected %zu\n",
                   what, got, want);
      ++g_mismatches;
    }
  };
  gate_counter("plan.misses", fan_stats.misses, fan_n + 1);
  gate_counter("scope.misses", fan_stats.scope.misses, fan_n + 1);
  gate_counter("causal.misses", fan_stats.causal.misses, 1);
  gate_counter("learn.misses", fan_stats.learn.misses, 1);
  gate_counter("query.misses", fan_stats.query.misses, fan_n + 1);

  double staged_prepare = 0.0, cold_prepare = 0.0;
  for (size_t i = 0; i < fan_n; ++i) {
    staged_prepare += staged_arm.prepare_seconds[i];
    cold_prepare += cold_arm.prepare_seconds[i];
  }
  const double fan_speedup = cold_prepare / staged_prepare;

  TablePrinter t5({"variant", "prepare-s/branch", "submit-s/branch",
                   "speedup"});
  t5.PrintHeader();
  t5.PrintRow({"cold (monolithic)",
               Fmt(cold_prepare / static_cast<double>(fan_n)),
               Fmt(cold_arm.submit_seconds / static_cast<double>(fan_n)),
               "1.0"});
  t5.PrintRow({"staged reuse",
               Fmt(staged_prepare / static_cast<double>(fan_n)),
               Fmt(staged_arm.submit_seconds / static_cast<double>(fan_n)),
               Fmt(fan_speedup, "%.1f")});
  std::printf("staged stage misses: scope %zu | causal %zu | learn %zu | "
              "query %zu (plans %zu)\n",
              fan_stats.scope.misses, fan_stats.causal.misses,
              fan_stats.learn.misses, fan_stats.query.misses,
              fan_stats.misses);
  json.Record(
      "branch_fanout",
      {{"n", static_cast<double>(fan_n)},
       {"cold_prepare_seconds", cold_prepare},
       {"staged_prepare_seconds", staged_prepare},
       {"cold_submit_seconds", cold_arm.submit_seconds},
       {"staged_submit_seconds", staged_arm.submit_seconds},
       {"speedup_prepare", fan_speedup},
       {"learn_prepares", static_cast<double>(fan_stats.learn.misses)},
       {"equal", g_mismatches == 0 ? 1.0 : 0.0}});

  // -------------------------------------------------------------------
  Banner("6. governance overhead: warm what-if, governed vs ungoverned");
  // A generous budget plus an attached (never tripped) cancel token arms
  // the full governance machinery — guard allocation, stage-boundary
  // checkpoints, row/byte meters, amortized loop checks — on a request
  // that never aborts. Gated: the governed warm path must stay within 2%
  // of the ungoverned one (rounds interleaved, best-of to shed scheduler
  // noise), and both must answer bit-identically. Reuses the section-1
  // service, whose plan cache is already warm for `query`: budgets never
  // enter cache keys, so both arms hit the same entries.
  const size_t gov_reps = smoke ? 150 : 300;
  service::Request ungoverned_req{"main", query, {}};
  service::Request governed_req{"main", query, {}};
  governed_req.budget.deadline_seconds = 3600.0;
  governed_req.budget.max_rows_touched = size_t{1} << 40;
  governed_req.budget.max_bytes_materialized = size_t{1} << 50;
  governed_req.cancel_token = CancelToken::Make();

  // Per-request minimum, arms interleaved pair-by-pair: the min over many
  // reps converges on each arm's no-interference floor, so the comparison
  // measures the intrinsic governed-path cost rather than scheduler noise
  // (per-round totals jitter more than the 2% budget being gated). At this
  // query's ~50us floor the 2% budget is ~1us — below scheduler resolution
  // on a loaded single-core box — so an over-budget measurement is
  // re-measured up to two more times and the gate takes the best attempt
  // (a real governed-path regression persists across attempts, a preempted
  // run does not), and the gate additionally grants a 3us absolute slack:
  // a delta that small is indistinguishable from timer granularity here,
  // while any real per-request regression worth failing the build over
  // clears it easily.
  Stopwatch gov_timer;
  double ungoverned_best = 1e30;
  double governed_best = 1e30;
  double gov_overhead = 1e30;
  for (int attempt = 0; attempt < 3; ++attempt) {
    for (size_t i = 0; i < gov_reps; ++i) {
      gov_timer.Restart();
      service::Response plain = service.Submit(ungoverned_req);
      ungoverned_best = std::min(ungoverned_best, gov_timer.ElapsedSeconds());
      CheckOk(plain.status, "governance ungoverned submit");
      CheckEqual(fresh.value, plain.whatif.value,
                 "governance ungoverned value");

      gov_timer.Restart();
      service::Response governed = service.Submit(governed_req);
      governed_best = std::min(governed_best, gov_timer.ElapsedSeconds());
      CheckOk(governed.status, "governance governed submit");
      CheckEqual(fresh.value, governed.whatif.value,
                 "governance governed value");
      if (!governed.whatif.plan_cache_hit) {
        std::fprintf(stderr,
                     "[bench_scenarios] governed run missed the warm cache "
                     "(budgets must not enter cache keys)\n");
        ++g_mismatches;
      }
    }
    gov_overhead =
        std::min(gov_overhead, governed_best / ungoverned_best - 1.0);
    if (gov_overhead <= 0.02) break;
  }
  const bool gov_within_budget =
      gov_overhead <= 0.02 || governed_best - ungoverned_best <= 3e-6;

  TablePrinter t6({"variant", "seconds", "overhead"});
  t6.PrintHeader();
  t6.PrintRow({"ungoverned warm", Fmt(ungoverned_best), "-"});
  t6.PrintRow({"governed warm", Fmt(governed_best),
               Fmt(gov_overhead * 100.0, "%.2f%%")});
  if (!gov_within_budget) {
    std::fprintf(stderr,
                 "[bench_scenarios] FAILED: governed warm path %.2f%% slower "
                 "than ungoverned (budget: 2%%)\n",
                 gov_overhead * 100.0);
    ++g_mismatches;
  }
  json.Record("governance_overhead",
              {{"reps", static_cast<double>(gov_reps)},
               {"ungoverned_seconds", ungoverned_best},
               {"governed_seconds", governed_best},
               {"overhead", gov_overhead},
               {"within_2pct", gov_within_budget ? 1.0 : 0.0},
               {"equal", g_mismatches == 0 ? 1.0 : 0.0}});

  // -------------------------------------------------------------------
  Banner("7. durability: WAL append overhead + crash-recovery time");
  // Same mutation traffic twice — once in-memory, once journaled — then a
  // simulated crash (service destroyed with no snapshot and no drain; only
  // the WAL survives) and a timed recovery that must land on bit-identical
  // branch fingerprints and answers.
  char dur_template[] = "/tmp/hyper_bench_dur_XXXXXX";
  const char* dur_dir = ::mkdtemp(dur_template);
  if (dur_dir == nullptr) {
    std::fprintf(stderr, "[bench_scenarios] cannot create durability dir\n");
    return 1;
  }
  const size_t dur_n = smoke ? 8 : 64;
  const auto apply_traffic = [&](service::ScenarioService& s) {
    CheckOk(s.CreateScenario("durable"), "create durable branch");
    for (size_t i = 0; i < dur_n; ++i) {
      const std::string sql =
          "Use German When Status = " + std::to_string(i % 3) +
          " Update(Savings) = " + std::to_string(i % 5) + " Output Count(*)";
      CheckOk(s.ApplyHypotheticalSql("durable", sql).status(),
              "durable apply");
    }
  };

  Stopwatch dur_timer;
  service::ServiceOptions mem_options = service_options;
  double mem_apply_seconds = 0.0;
  {
    service::ScenarioService mem_service(ds.db, ds.graph, mem_options);
    dur_timer.Restart();
    apply_traffic(mem_service);
    mem_apply_seconds = dur_timer.ElapsedSeconds();
  }

  service::ServiceOptions dur_options = service_options;
  dur_options.data_dir = dur_dir;
  dur_options.snapshot_every_records = 0;  // force a full-WAL replay below
  std::vector<service::ScenarioInfo> dur_live_infos;
  double dur_apply_seconds = 0.0;
  double dur_live_value = 0.0;
  uint64_t dur_wal_bytes = 0;
  {
    service::ScenarioService dur_service(ds.db, ds.graph, dur_options);
    CheckOk(dur_service.recovery_status(), "durable service construction");
    dur_timer.Restart();
    apply_traffic(dur_service);
    dur_apply_seconds = dur_timer.ElapsedSeconds();
    dur_live_infos = dur_service.ListScenarios();
    dur_wal_bytes = dur_service.wal_stats().appended_bytes;
    service::Response live = dur_service.Submit({"durable", query, {}});
    CheckOk(live.status, "durable live submit");
    dur_live_value = live.whatif.value;
  }  // crash: no snapshot, no drain

  dur_timer.Restart();
  service::ScenarioService recovered(ds.db, ds.graph, dur_options);
  const double recovery_wall = dur_timer.ElapsedSeconds();
  CheckOk(recovered.recovery_status(), "recovery");
  const double recovery_seconds = recovered.recovery_info().seconds;
  const auto recovered_infos = recovered.ListScenarios();
  if (recovered_infos.size() != dur_live_infos.size()) {
    std::fprintf(stderr, "[bench_scenarios] MISMATCH recovered %zu branches, "
                 "want %zu\n", recovered_infos.size(), dur_live_infos.size());
    ++g_mismatches;
  } else {
    for (size_t i = 0; i < recovered_infos.size(); ++i) {
      if (recovered_infos[i].delta_fingerprint !=
          dur_live_infos[i].delta_fingerprint) {
        std::fprintf(stderr,
                     "[bench_scenarios] MISMATCH fingerprint of '%s' after "
                     "recovery\n", recovered_infos[i].name.c_str());
        ++g_mismatches;
      }
    }
  }
  service::Response replayed = recovered.Submit({"durable", query, {}});
  CheckOk(replayed.status, "recovered submit");
  CheckEqual(dur_live_value, replayed.whatif.value, "recovered what-if");

  const uint64_t dur_records = recovered.recovery_info().records_replayed;
  TablePrinter t7({"measurement", "value"});
  t7.PrintHeader();
  t7.PrintRow({"applies in-memory", Fmt(mem_apply_seconds)});
  t7.PrintRow({"applies journaled (fsync=interval)", Fmt(dur_apply_seconds)});
  t7.PrintRow({"wal bytes", std::to_string(dur_wal_bytes)});
  t7.PrintRow({"recovery (replay " + std::to_string(dur_records) +
                   " records)",
               Fmt(recovery_seconds)});
  json.Record(
      "durability_recovery",
      {{"records", static_cast<double>(dur_records)},
       {"wal_bytes", static_cast<double>(dur_wal_bytes)},
       {"mem_apply_seconds", mem_apply_seconds},
       {"durable_apply_seconds", dur_apply_seconds},
       {"recovery_seconds", recovery_seconds},
       {"recovery_wall_seconds", recovery_wall},
       {"records_per_second",
        recovery_seconds > 0.0 ? static_cast<double>(dur_records) /
                                     recovery_seconds
                               : 0.0},
       {"equal", g_mismatches == 0 ? 1.0 : 0.0}});
  [[maybe_unused]] const int dur_rc =
      std::system(("rm -rf '" + std::string(dur_dir) + "'").c_str());

  if (g_mismatches > 0) {
    std::fprintf(stderr,
                 "[bench_scenarios] FAILED: %zu cached-vs-fresh mismatch(es)\n",
                 g_mismatches);
    return 1;
  }
  std::printf("\nall cached/batched answers bit-identical to fresh runs\n");
  return 0;
}
