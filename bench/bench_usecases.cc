// Reproduces the §5.3 real-world what-if narratives (query templates of
// Figure 7):
//   German: pushing Status / CreditHistory to their best values lifts most
//   individuals to good credit; to their worst values drops a large
//   fraction; updating both together moves even more (the paper reports
//   >81%, -30%, >70% respectively).
//   Adult:  everyone-married vs everyone-unmarried swings the >50K share
//   (paper: 38% vs <9%).
//   Amazon: pricing laptops at lower percentiles raises the share of
//   products with average rating > 4; Apple gains most from price cuts.

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "data/datasets.h"
#include "whatif/engine.h"

namespace hyper {
namespace {

whatif::WhatIfOptions DefaultOptions(uint64_t seed) {
  whatif::WhatIfOptions options;
  options.estimator = learn::EstimatorKind::kForest;
  options.forest.num_trees = 12;
  options.seed = seed;
  return options;
}

}  // namespace
}  // namespace hyper

int main(int argc, char** argv) {
  using namespace hyper;
  const bench::BenchFlags flags = bench::ParseFlags(argc, argv);

  // --------------------------------------------------------------- German
  {
    auto ds = bench::Unwrap(
        data::MakeByName("german-syn-20k", flags.ScaleOr(0.5), flags.seed),
        "german");
    const double n = static_cast<double>(ds.db.TotalRows());
    whatif::WhatIfEngine engine(&ds.db, &ds.graph,
                                DefaultOptions(flags.seed));
    auto frac = [&](const std::string& update) {
      return bench::Unwrap(
                 engine.RunSql("Use German " + update +
                               " Output Count(Credit = 1)"),
                 "german query")
                 .value /
             n;
    };
    bench::Banner("§5.3 German: fraction with good credit after update");
    bench::TablePrinter table({"hypothetical update", "P(good credit)"});
    table.PrintHeader();
    const double observed = frac("When Age = 99 Update(Status) = 0");
    table.PrintRow({"none (observed)", bench::Fmt(observed, "%.3f")});
    table.PrintRow({"Status := max", bench::Fmt(frac("Update(Status) = 3"),
                                                "%.3f")});
    table.PrintRow({"Status := min", bench::Fmt(frac("Update(Status) = 0"),
                                                "%.3f")});
    table.PrintRow({"History := max",
                    bench::Fmt(frac("Update(CreditHistory) = 2"), "%.3f")});
    table.PrintRow({"History := min",
                    bench::Fmt(frac("Update(CreditHistory) = 0"), "%.3f")});
    table.PrintRow(
        {"Status+History := max",
         bench::Fmt(frac("Update(Status) = 3 And Update(CreditHistory) = 2"),
                    "%.3f")});
    table.PrintRow({"Housing := max", bench::Fmt(frac("Update(Housing) = 2"),
                                                 "%.3f")});
    std::printf(
        "expected shape: Status/History max >> observed; min << observed; "
        "the pair moves most; Housing small (§5.3)\n");
  }

  // ---------------------------------------------------------------- Adult
  {
    auto ds = bench::Unwrap(
        data::MakeByName("adult", flags.ScaleOr(0.3), flags.seed), "adult");
    const double n = static_cast<double>(ds.db.TotalRows());
    whatif::WhatIfEngine engine(&ds.db, &ds.graph,
                                DefaultOptions(flags.seed));
    auto frac = [&](const char* update) {
      return bench::Unwrap(
                 engine.RunSql(std::string("Use Adult ") + update +
                               " Output Count(Income = 1)"),
                 "adult query")
                 .value /
             n;
    };
    bench::Banner("§5.3 Adult: fraction with income > 50K after update");
    bench::TablePrinter table({"hypothetical update", "P(income > 50K)"});
    table.PrintHeader();
    table.PrintRow({"everyone married",
                    bench::Fmt(frac("Update(Marital) = 1"), "%.3f")});
    table.PrintRow({"everyone unmarried",
                    bench::Fmt(frac("Update(Marital) = 0"), "%.3f")});
    table.PrintRow({"everyone divorced",
                    bench::Fmt(frac("Update(Marital) = 2"), "%.3f")});
    std::printf(
        "expected shape: married ~0.38, unmarried/divorced under ~0.10 "
        "(§5.3 reports 38%% vs <9%%)\n");
  }

  // --------------------------------------------------------------- Amazon
  {
    auto ds = bench::Unwrap(
        data::MakeByName("amazon", flags.ScaleOr(0.3), flags.seed), "amazon");
    // Price percentiles over laptops.
    const Table& product = *ds.db.GetTable("Product").value();
    std::vector<double> laptop_prices;
    for (size_t r = 0; r < product.num_rows(); ++r) {
      if (product.At(r, 1).Equals(Value::String("Laptop"))) {
        laptop_prices.push_back(product.At(r, 5).double_value());
      }
    }
    std::sort(laptop_prices.begin(), laptop_prices.end());
    auto percentile = [&](double p) {
      return laptop_prices[static_cast<size_t>(p * (laptop_prices.size() - 1))];
    };

    whatif::WhatIfOptions options = DefaultOptions(flags.seed);
    whatif::WhatIfEngine engine(&ds.db, &ds.graph, options);
    const std::string view =
        "Use V As (Select T1.PID, T1.Category, T1.Brand, T1.Price, "
        "T1.Quality, Avg(T2.Rating) As Rtng From Product As T1, "
        "Review As T2 Where T1.PID = T2.PID Group By T1.PID, T1.Category, "
        "T1.Brand, T1.Price, T1.Quality) When Category = 'Laptop' ";

    bench::Banner(
        "§5.3 Amazon: share of laptops with avg rating > 4 after repricing");
    bench::TablePrinter table({"laptops priced at", "P(avg rating > 4)"});
    table.PrintHeader();
    double count_laptops = 0;
    {
      auto result = bench::Unwrap(
          engine.RunSql(view + "Update(Price) = 1 * Pre(Price) "
                               "Output Count(*) For Pre(Category) = 'Laptop'"),
          "laptop count");
      count_laptops = result.value;
    }
    for (double pct : {0.8, 0.6, 0.4}) {
      const std::string query = view +
                                StrFormat("Update(Price) = %.2f "
                                          "Output Count(Rtng >= 4) "
                                          "For Pre(Category) = 'Laptop'",
                                          percentile(pct));
      auto result = bench::Unwrap(engine.RunSql(query), "amazon query");
      table.PrintRow({StrFormat("p%.0f = $%.0f", pct * 100, percentile(pct)),
                      bench::Fmt(result.value / count_laptops, "%.3f")});
    }
    std::printf(
        "expected shape: the share rises as prices drop to lower "
        "percentiles (§5.3)\n");

    // Brand ranking by rating gain from a 25% price cut.
    bench::Banner("§5.3 Amazon: avg-rating gain per brand from a 25% cut");
    bench::TablePrinter brands({"brand", "avg rating gain"});
    brands.PrintHeader();
    for (const char* brand :
         {"Apple", "Dell", "Toshiba", "Acer", "Asus", "HP"}) {
      const std::string brand_view =
          "Use V As (Select T1.PID, T1.Category, T1.Brand, T1.Price, "
          "T1.Quality, Avg(T2.Rating) As Rtng From Product As T1, "
          "Review As T2 Where T1.PID = T2.PID Group By T1.PID, T1.Category, "
          "T1.Brand, T1.Price, T1.Quality) When Brand = '" +
          std::string(brand) + "' ";
      auto cut = bench::Unwrap(
          engine.RunSql(brand_view +
                        "Update(Price) = 0.75 * Pre(Price) "
                        "Output Avg(Post(Rtng)) For Pre(Brand) = '" +
                        std::string(brand) + "'"),
          "brand cut");
      auto keep = bench::Unwrap(
          engine.RunSql(brand_view +
                        "Update(Price) = 1 * Pre(Price) "
                        "Output Avg(Post(Rtng)) For Pre(Brand) = '" +
                        std::string(brand) + "'"),
          "brand keep");
      brands.PrintRow({brand, bench::Fmt(cut.value - keep.value, "%.4f")});
    }
    std::printf(
        "expected shape: every gain >= 0 (price cuts help ratings). Note: "
        "the paper names Apple first; in our synthetic catalog premium "
        "brands sit near the 5-star ceiling, so budget brands gain more — "
        "a documented generator deviation (see EXPERIMENTS.md)\n");
  }
  return 0;
}
