// Reproduces Figure 10: what-if query output versus ground truth for every
// variant of HypeR and the Indep baseline.
//
//   (a) German-Syn: update each financial attribute to its maximum and
//       measure the probability of good credit. Shape: HypeR, HypeR-sampled
//       and HypeR-NB track the ground truth within a few percent; Indep
//       overshoots on Status (it mistakes the Age-driven correlation for a
//       causal effect).
//   (b) Student-Syn: update each participation attribute to its maximum and
//       measure the average grade. Shape: HypeR/HypeR-NB accurate, Indep
//       noisy/overshooting.

#include <cstdio>

#include "baselines/ground_truth.h"
#include "bench/bench_util.h"
#include "data/datasets.h"
#include "sql/parser.h"
#include "whatif/engine.h"

namespace hyper {
namespace {

whatif::WhatIfOptions Options(whatif::BackdoorMode mode, size_t sample,
                              uint64_t seed) {
  whatif::WhatIfOptions options;
  options.estimator = learn::EstimatorKind::kForest;
  options.forest.num_trees = 12;
  options.backdoor = mode;
  options.sample_size = sample;
  options.seed = seed;
  return options;
}

struct Update {
  const char* attribute;
  const char* value;
};

void RunPanel(const char* title, const data::Dataset& ds,
              const Database& engine_db, const causal::CausalGraph& graph,
              const char* relation, const char* output,
              const std::vector<Update>& updates, double denom,
              const bench::BenchFlags& flags) {
  bench::Banner(title);
  bench::TablePrinter table({"update", "GroundTruth", "HypeR",
                             "HypeR-sampled", "HypeR-NB", "Indep"});
  table.PrintHeader();

  for (const Update& u : updates) {
    const std::string query = StrFormat("Use %s Update(%s) = %s Output %s",
                                        relation, u.attribute, u.value,
                                        output);
    auto stmt = bench::Unwrap(sql::ParseSql(query), "parse");

    const double truth =
        bench::Unwrap(baselines::GroundTruthWhatIf(ds.flat, ds.scm,
                                                   *stmt.whatif),
                      "ground truth") /
        denom;
    auto run = [&](whatif::BackdoorMode mode, size_t sample) {
      whatif::WhatIfEngine engine(&engine_db, &graph,
                                  Options(mode, sample, flags.seed));
      return bench::Unwrap(engine.Run(*stmt.whatif), "engine").value / denom;
    };
    const size_t n = engine_db.TotalRows();
    table.PrintRow(
        {std::string(u.attribute) + "=" + u.value, bench::Fmt(truth, "%.4f"),
         bench::Fmt(run(whatif::BackdoorMode::kGraph, 0), "%.4f"),
         bench::Fmt(run(whatif::BackdoorMode::kGraph, n / 4), "%.4f"),
         bench::Fmt(run(whatif::BackdoorMode::kAllAttributes, 0), "%.4f"),
         bench::Fmt(run(whatif::BackdoorMode::kUpdateOnly, 0), "%.4f")});
  }
}

}  // namespace
}  // namespace hyper

int main(int argc, char** argv) {
  using namespace hyper;
  const bench::BenchFlags flags = bench::ParseFlags(argc, argv);

  {
    auto ds = bench::Unwrap(
        data::MakeByName("german-syn-1m", flags.ScaleOr(0.05), flags.seed),
        "german-syn");
    std::printf("German-Syn rows: %zu\n", ds.db.TotalRows());
    RunPanel("Figure 10a: German-Syn — P(good credit) after update",
             ds, ds.db, ds.graph, "German", "Avg(Post(Credit))",
             {{"Status", "3"},
              {"Savings", "2"},
              {"Housing", "2"},
              {"CreditAmount", "3"}},
             /*denom=*/1.0, flags);
    std::printf(
        "expected shape: HypeR variants within ~5%% of truth; Indep "
        "overshoots Status (§5.4)\n");
  }
  {
    data::StudentOptions opt;
    opt.students = static_cast<size_t>(2000 * flags.ScaleOr(0.5));
    opt.seed = flags.seed;
    auto ds = bench::Unwrap(data::MakeStudentSyn(opt), "student-syn");
    std::printf("\nStudent-Syn participation rows: %zu\n",
                ds.flat.TotalRows());
    // The engine runs on the flat participation table (one row per course
    // enrollment) — the average grade over it equals the average of
    // per-student course averages.
    RunPanel("Figure 10b: Student-Syn — average grade after update",
             ds, ds.flat, ds.graph, "FlatParticipation", "Avg(Post(Grade))",
             {{"Assignment", "100"},
              {"Attendance", "100"},
              {"Announcements", "1"},
              {"HandRaised", "3"},
              {"Discussion", "3"}},
             /*denom=*/1.0, flags);
    std::printf(
        "expected shape: HypeR/NB track truth; Indep inflated by "
        "correlation between participation signals\n");
  }
  return 0;
}
