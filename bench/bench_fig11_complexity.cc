// Reproduces Figure 11: running time as a function of query complexity on
// Student-Syn.
//
//   (a) What-if: more attributes in the For operator -> more estimator
//       features / more residual patterns -> time grows (moderately).
//   (b) How-to: more attributes in HowToUpdate -> HypeR grows linearly (IP
//       variables), Opt-HowTo grows exponentially (cross product).

#include <cstdio>

#include "baselines/opt_howto.h"
#include "bench/bench_util.h"
#include "data/datasets.h"
#include "howto/engine.h"
#include "sql/parser.h"
#include "whatif/engine.h"

namespace hyper {
namespace {

/// Adds `count` synthetic mutable attributes X0..Xk to the flat student
/// table (random small ints) — the paper likewise pads the dataset with
/// synthetic attributes to sweep query complexity.
Database WithSyntheticAttributes(const Database& db, const char* relation,
                                 size_t count, uint64_t seed) {
  const Table& base = *db.GetTable(relation).value();
  std::vector<AttributeDef> attrs = base.schema().attributes();
  for (size_t i = 0; i < count; ++i) {
    attrs.push_back({"X" + std::to_string(i), ValueType::kInt,
                     Mutability::kMutable});
  }
  std::vector<std::string> key;
  for (size_t k : base.schema().key_indices()) {
    key.push_back(base.schema().attribute(k).name);
  }
  Table extended(Schema(relation, std::move(attrs), key));
  Rng rng(seed);
  for (size_t r = 0; r < base.num_rows(); ++r) {
    Row row = base.row(r);
    for (size_t i = 0; i < count; ++i) {
      row.push_back(Value::Int(rng.UniformInt(0, 3)));
    }
    extended.AppendUnchecked(std::move(row));
  }
  Database out;
  bench::CheckOk(out.AddTable(std::move(extended)), "extend table");
  return out;
}

}  // namespace
}  // namespace hyper

int main(int argc, char** argv) {
  using namespace hyper;
  const bench::BenchFlags flags = bench::ParseFlags(argc, argv);

  data::StudentOptions opt;
  opt.students = static_cast<size_t>(2000 * flags.ScaleOr(0.5));
  opt.seed = flags.seed;
  auto ds = bench::Unwrap(data::MakeStudentSyn(opt), "student-syn");
  Database flat = WithSyntheticAttributes(ds.flat, "FlatParticipation", 10,
                                          flags.seed);
  std::printf("Student-Syn flat rows: %zu (+10 synthetic attributes)\n",
              flat.TotalRows());

  // (a) What-if runtime vs number of attributes in For.
  bench::Banner("Figure 11a: what-if time vs #attributes in For");
  bench::TablePrinter for_table({"for-attrs", "HypeR(s)", "Indep(s)"});
  for_table.PrintHeader();
  for (size_t k : {0u, 2u, 5u, 8u, 10u}) {
    std::string for_clause;
    for (size_t i = 0; i < k; ++i) {
      if (i > 0) for_clause += " And ";
      for_clause += StrFormat("Pre(X%zu) <= 3", i);
    }
    std::string query =
        "Use FlatParticipation Update(Attendance) = 100 "
        "Output Count(Grade >= 60)";
    if (k > 0) query += " For " + for_clause;

    auto time_mode = [&](whatif::BackdoorMode mode) {
      whatif::WhatIfOptions options;
      options.estimator = learn::EstimatorKind::kForest;
      options.forest.num_trees = 10;
      // Paper parity: sklearn's RandomForestRegressor considers every
      // feature at every split, so training cost grows with the number of
      // conditioning attributes.
      options.forest.sqrt_features = false;
      options.backdoor = mode;
      options.seed = flags.seed;
      whatif::WhatIfEngine engine(&flat, &ds.graph, options);
      Stopwatch timer;
      bench::Unwrap(engine.RunSql(query), "what-if");
      return timer.ElapsedSeconds();
    };
    for_table.PrintRow(
        {std::to_string(k),
         bench::Fmt(time_mode(whatif::BackdoorMode::kGraph), "%.3f"),
         bench::Fmt(time_mode(whatif::BackdoorMode::kUpdateOnly), "%.3f")});
  }
  std::printf("expected shape: HypeR time grows with For attributes; Indep "
              "flat-ish (no extra features)\n");

  // (b) How-to runtime vs number of HowToUpdate attributes.
  bench::Banner("Figure 11b: how-to time vs #attributes in HowToUpdate");
  bench::TablePrinter howto_table(
      {"attrs", "HypeR(s)", "Opt-HowTo(s)", "combinations"});
  howto_table.PrintHeader();
  const size_t max_attrs = flags.full ? 8 : 6;
  const size_t max_opt_attrs = flags.full ? 5 : 4;
  for (size_t k = 1; k <= max_attrs; ++k) {
    std::string attrs;
    for (size_t i = 0; i < k; ++i) {
      if (i > 0) attrs += ", ";
      attrs += StrFormat("X%zu", i);
    }
    const std::string query = "Use FlatParticipation HowToUpdate " + attrs +
                              " ToMaximize Avg(Post(Grade))";
    howto::HowToOptions options;
    options.whatif.estimator = learn::EstimatorKind::kFrequency;
    options.num_buckets = 4;
    howto::HowToEngine engine(&flat, &ds.graph, options);

    Stopwatch hyper_timer;
    bench::Unwrap(engine.RunSql(query), "HypeR how-to");
    const double hyper_seconds = hyper_timer.ElapsedSeconds();

    std::string opt_cell = "-";
    std::string combos_cell = "-";
    if (k <= max_opt_attrs) {
      auto stmt = bench::Unwrap(sql::ParseSql(query), "parse");
      auto candidates = bench::Unwrap(
          engine.EnumerateCandidates(*stmt.howto), "candidates");
      auto scorer = baselines::MakeEngineScorer(&flat, &ds.graph,
                                                options.whatif,
                                                stmt.howto.get());
      Stopwatch opt_timer;
      auto opt = bench::Unwrap(
          baselines::OptHowTo(*stmt.howto, candidates, scorer), "OptHowTo");
      opt_cell = bench::Fmt(opt_timer.ElapsedSeconds(), "%.3f");
      combos_cell = std::to_string(opt.combinations_evaluated);
    }
    howto_table.PrintRow({std::to_string(k), bench::Fmt(hyper_seconds, "%.3f"),
                          opt_cell, combos_cell});
  }
  std::printf(
      "expected shape: HypeR ~linear in attributes; Opt-HowTo exponential "
      "(skipped past %zu attributes)\n", max_opt_attrs);
  return 0;
}
