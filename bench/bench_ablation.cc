// Ablations called out in DESIGN.md §6 (not in the paper):
//   1. estimator kind (frequency vs forest) — quality and time on discrete
//      data, against exact ground truth;
//   2. block decomposition on vs off — same value, time comparison;
//   3. MCK fast path vs general branch-and-bound on the how-to IP — same
//      plan, solver-node and time comparison.

#include <cmath>
#include <cstdio>

#include "baselines/ground_truth.h"
#include "bench/bench_util.h"
#include "data/datasets.h"
#include "howto/engine.h"
#include "sql/parser.h"
#include "whatif/engine.h"

int main(int argc, char** argv) {
  using namespace hyper;
  const bench::BenchFlags flags = bench::ParseFlags(argc, argv);

  auto ds = bench::Unwrap(
      data::MakeByName("german-syn-20k", flags.ScaleOr(0.5), flags.seed),
      "german-syn");
  std::printf("German-Syn rows: %zu\n", ds.db.TotalRows());
  const char* query =
      "Use German Update(Status) = 3 Output Avg(Post(Credit))";
  auto stmt = bench::Unwrap(sql::ParseSql(query), "parse");
  const double truth = bench::Unwrap(
      baselines::GroundTruthWhatIf(ds.flat, ds.scm, *stmt.whatif), "truth");

  // ------------------------------------------------ 1. estimator kind
  bench::Banner("Ablation 1: estimator kind (truth = " +
                bench::Fmt(truth, "%.4f") + ")");
  bench::TablePrinter est_table({"estimator", "value", "|err|", "time(s)"});
  est_table.PrintHeader();
  for (learn::EstimatorKind kind :
       {learn::EstimatorKind::kFrequency, learn::EstimatorKind::kForest}) {
    whatif::WhatIfOptions options;
    options.estimator = kind;
    options.forest.num_trees = 12;
    options.seed = flags.seed;
    whatif::WhatIfEngine engine(&ds.db, &ds.graph, options);
    Stopwatch timer;
    auto result = bench::Unwrap(engine.Run(*stmt.whatif), "what-if");
    est_table.PrintRow({learn::EstimatorKindName(kind),
                        bench::Fmt(result.value, "%.4f"),
                        bench::Fmt(std::abs(result.value - truth), "%.4f"),
                        bench::Fmt(timer.ElapsedSeconds(), "%.3f")});
  }
  std::printf("expected: both close to truth on discrete data; frequency "
              "faster (no tree building)\n");

  // ------------------------------------------------ 2. block decomposition
  bench::Banner("Ablation 2: block decomposition on/off");
  bench::TablePrinter block_table({"blocks", "value", "num_blocks",
                                   "time(s)"});
  block_table.PrintHeader();
  for (bool use_blocks : {true, false}) {
    whatif::WhatIfOptions options;
    options.estimator = learn::EstimatorKind::kFrequency;
    options.use_blocks = use_blocks;
    options.seed = flags.seed;
    whatif::WhatIfEngine engine(&ds.db, &ds.graph, options);
    Stopwatch timer;
    auto result = bench::Unwrap(engine.Run(*stmt.whatif), "what-if");
    block_table.PrintRow({use_blocks ? "on" : "off",
                          bench::Fmt(result.value, "%.4f"),
                          std::to_string(result.num_blocks),
                          bench::Fmt(timer.ElapsedSeconds(), "%.3f")});
  }
  std::printf("expected: identical values (decomposability, Prop. 1); "
              "per-tuple blocks here since the graph has no cross-tuple "
              "edges\n");

  // ------------------------------------------------ 3. MCK vs B&B
  bench::Banner("Ablation 3: how-to solver — MCK fast path vs B&B");
  bench::TablePrinter solver_table({"solver", "objective", "nodes",
                                    "time(s)"});
  solver_table.PrintHeader();
  const char* howto_query =
      "Use German HowToUpdate Status, Savings, Housing "
      "ToMaximize Avg(Post(Credit))";
  for (bool mck : {true, false}) {
    howto::HowToOptions options;
    options.whatif.estimator = learn::EstimatorKind::kFrequency;
    options.prefer_mck = mck;
    options.global_l1_budget = 2.0;
    howto::HowToEngine engine(&ds.db, &ds.graph, options);
    Stopwatch timer;
    auto result = bench::Unwrap(engine.RunSql(howto_query), "how-to");
    solver_table.PrintRow({mck ? "MCK" : "branch&bound",
                           bench::Fmt(result.objective_value, "%.4f"),
                           std::to_string(result.solver_nodes),
                           bench::Fmt(timer.ElapsedSeconds(), "%.3f")});
  }
  std::printf("expected: identical objectives (both exact); MCK explores "
              "fewer nodes\n");
  return 0;
}
